"""DAG scheduling of MapReduce jobs.

Hive compiles a query into a directed acyclic graph of MR jobs.  Hive 0.7 —
the paper's version — executes that DAG **serially**, one job at a time;
later versions added ``hive.exec.parallel``, which runs independent branches
concurrently (Q22's sub-queries 1 and 3 are independent, for example).

This module computes both schedules from the same DAG: the serial makespan
(the sum the paper measured) and the parallel makespan (the critical path,
resource-capped), which powers the corresponding extension ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.mapreduce.jobs import JobResult


@dataclass
class DagNode:
    """One MR job plus its dependencies (by node name)."""

    name: str
    job: JobResult
    depends_on: tuple[str, ...] = ()


@dataclass
class Schedule:
    """Start/finish times per job under one execution policy."""

    start: dict[str, float] = field(default_factory=dict)
    finish: dict[str, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return max(self.finish.values()) if self.finish else 0.0


class JobDag:
    """A DAG of MapReduce jobs with serial and parallel schedulers."""

    def __init__(self):
        self._nodes: dict[str, DagNode] = {}
        self._order: list[str] = []

    def add(self, name: str, job: JobResult, depends_on: tuple[str, ...] = ()) -> None:
        if name in self._nodes:
            raise ConfigurationError(f"duplicate job {name!r}")
        for dep in depends_on:
            if dep not in self._nodes:
                raise ConfigurationError(
                    f"job {name!r} depends on unknown job {dep!r}"
                )
        self._nodes[name] = DagNode(name, job, tuple(depends_on))
        self._order.append(name)

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> DagNode:
        if name not in self._nodes:
            raise ConfigurationError(f"no job {name!r}")
        return self._nodes[name]

    def topological_order(self) -> list[str]:
        """Insertion order is topological by construction (deps must exist)."""
        return list(self._order)

    # -- schedulers -----------------------------------------------------------------

    def schedule_serial(self) -> Schedule:
        """Hive 0.7: one job at a time, in submission order."""
        schedule = Schedule()
        clock = 0.0
        for name in self._order:
            schedule.start[name] = clock
            clock += self._nodes[name].job.total_time
            schedule.finish[name] = clock
        return schedule

    def schedule_parallel(self, max_concurrent: int = 8) -> Schedule:
        """hive.exec.parallel: independent branches overlap.

        A job starts when all its dependencies have finished and a
        concurrency slot is free (the jobtracker bounds simultaneous jobs).
        Jobs become eligible in submission order — a simple list scheduler,
        which is what Hive's driver does.
        """
        if max_concurrent < 1:
            raise ConfigurationError("need at least one concurrent job slot")
        schedule = Schedule()
        running: list[tuple[float, str]] = []  # (finish_time, name)
        pending = list(self._order)
        clock = 0.0
        while pending or running:
            # Retire finished jobs.
            running.sort()
            while running and running[0][0] <= clock:
                running.pop(0)
            if not pending and not running:
                break
            progressed = False
            for name in list(pending):
                node = self._nodes[name]
                deps_done = all(
                    dep in schedule.finish and schedule.finish[dep] <= clock
                    for dep in node.depends_on
                )
                if deps_done and len(running) < max_concurrent:
                    schedule.start[name] = clock
                    finish = clock + node.job.total_time
                    schedule.finish[name] = finish
                    running.append((finish, name))
                    pending.remove(name)
                    progressed = True
            if not progressed:
                if not running:
                    raise ConfigurationError("DAG is stuck (cyclic dependency?)")
                clock = min(f for f, _ in running)
        return schedule

    def critical_path(self) -> float:
        """Lower bound on any schedule: the longest dependency chain."""
        finish: dict[str, float] = {}
        for name in self._order:
            node = self._nodes[name]
            earliest = max((finish[d] for d in node.depends_on), default=0.0)
            finish[name] = earliest + node.job.total_time
        return max(finish.values()) if finish else 0.0


def dag_from_hive_result(result, dependencies: dict[str, tuple[str, ...]] | None = None,
                         ) -> JobDag:
    """Build a DAG from a HiveQueryResult.

    Without explicit ``dependencies`` every job depends on its predecessor
    (the serial chain Hive 0.7 runs).  Pass a mapping of job name to
    dependency names to expose real independence (e.g. Q22's sub-queries).
    """
    dag = JobDag()
    added: set[str] = set()
    previous: str | None = None
    for job in result.jobs:
        if dependencies is not None:
            raw = dependencies.get(job.name, ())
            deps = []
            for dep in raw:
                # A failed map join renames its job with a ".backup" suffix.
                if dep in added:
                    deps.append(dep)
                elif f"{dep}.backup" in added:
                    deps.append(f"{dep}.backup")
            deps = tuple(deps)
        else:
            deps = (previous,) if previous else ()
        dag.add(job.name, job, deps)
        added.add(job.name)
        previous = job.name
    return dag


# The true dependency structure of Q22's Hive script: sub-query 1 (customer
# scan + fs job) and sub-query 3 (orders aggregation) are independent;
# sub-query 2 needs sub-query 1; sub-query 4 needs 2 and 3.
Q22_DEPENDENCIES: dict[str, tuple[str, ...]] = {
    "mat.q22.candidates": (),
    "fs.0": ("mat.q22.candidates",),
    "agg.q22.avg": ("fs.0",),
    "agg.q22.orders_agg": (),
    "join.q22.anti": ("agg.q22.avg", "agg.q22.orders_agg"),
    "join.q22.anti.backup": ("agg.q22.avg", "agg.q22.orders_agg"),
    "agg.q22.anti": ("join.q22.anti",),
    "sort": ("agg.q22.anti",),
    "extra.0": ("sort",),
    "extra.1": ("extra.0",),
}

"""MapReduce scheduling and cost model."""

from repro.mapreduce.dag import JobDag, Schedule, dag_from_hive_result
from repro.mapreduce.jobs import (
    HadoopParams,
    JobResult,
    JobTracker,
    MapPhase,
    schedule_tasks,
    schedule_tasks_detailed,
    task_waves,
)

__all__ = [
    "JobDag",
    "Schedule",
    "dag_from_hive_result",
    "HadoopParams",
    "JobResult",
    "JobTracker",
    "MapPhase",
    "schedule_tasks",
    "schedule_tasks_detailed",
    "task_waves",
]

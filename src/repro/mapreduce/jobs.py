"""MapReduce job scheduling and cost model (Hadoop 0.20-era semantics).

The model captures the mechanisms the paper's Section 3.3.4 analysis keeps
returning to:

* **slot-based scheduling** — 8 map + 8 reduce slots per node (128 + 128
  cluster-wide); tasks are handed to slots greedily in input-file order, so
  waves mixing empty and non-empty bucket files reproduce Q1's "at least one
  slot processes two non-empty files" effect;
* **per-task startup cost** — an empty-file task still costs ~6 s, which
  dominates jobs over many small buckets (Q22 sub-query 1);
* **shuffle** — map output crosses the 1 GbE network; common joins move both
  inputs, which is why Hive's Q5/Q19 plans are so expensive;
* **map-side join failure** — a hash table that does not fit in the task
  heap fails after a fixed delay and a backup common-join job runs (Q22
  sub-query 4 fails after ~400 s at every scale factor).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.units import GB, MB
from repro.simcluster.profile import HardwareProfile


@dataclass(frozen=True)
class HadoopParams:
    """Tunable constants of the Hadoop/Hive installation (Section 3.2.1)."""

    map_slots_per_node: int = 8
    reduce_slots_per_node: int = 8
    task_heap_bytes: float = 2.0 * GB  # -Xmx2g per task
    hashtable_memory_fraction: float = 0.35  # usable heap for a map-join table
    map_task_startup: float = 6.0  # JVM fork + init (paper: empty file = 6 s)
    reduce_task_startup: float = 5.0
    job_overhead: float = 28.0  # submission, setup, and commit latency
    map_scan_rate: float = 8.75 * MB  # compressed bytes/s per map task (70/8 per node)
    reduce_rate: float = 12.0 * MB  # join/agg throughput per reduce task
    shuffle_efficiency: float = 0.55  # fraction of NIC bandwidth shuffles achieve
    mapjoin_failure_delay: float = 400.0  # observed heap-error time before backup
    fs_job_time: float = 50.0  # the filesystem consolidation job in Q22

    def map_slots(self, profile: HardwareProfile) -> int:
        return self.map_slots_per_node * profile.nodes

    def reduce_slots(self, profile: HardwareProfile) -> int:
        return self.reduce_slots_per_node * profile.nodes

    def shuffle_bandwidth(self, profile: HardwareProfile) -> float:
        """Aggregate effective shuffle rate across the cluster."""
        return self.shuffle_efficiency * profile.nodes * profile.network_bandwidth


def schedule_tasks(durations: list[float], slots: int) -> float:
    """Greedy dynamic assignment of tasks to slots, in list order.

    Returns the makespan.  This mirrors Hadoop's behaviour of handing the
    next pending task to whichever slot frees first — and therefore also its
    pathology: a slot that got a short (empty-file) task early will pick up a
    long task later, stretching the wave.
    """
    if slots < 1:
        raise ConfigurationError("need at least one slot")
    if not durations:
        return 0.0
    free_at = [0.0] * min(slots, len(durations))
    heapq.heapify(free_at)
    for duration in durations:
        start = heapq.heappop(free_at)
        heapq.heappush(free_at, start + duration)
    return max(free_at)


def schedule_tasks_detailed(
    durations: list[float], slots: int
) -> tuple[float, list[tuple[int, float, float]]]:
    """Like :func:`schedule_tasks`, but also returns per-task attempt spans.

    Each span is ``(slot, start, end)`` relative to the phase start.  Ties
    in slot availability are broken by slot id, which matches the plain
    scheduler's makespan exactly (the multiset of free times is identical)
    while making the assignment deterministic.  Only used when tracing —
    the fitting hot path keeps the allocation-free variant.
    """
    if slots < 1:
        raise ConfigurationError("need at least one slot")
    if not durations:
        return 0.0, []
    free_at = [(0.0, slot) for slot in range(min(slots, len(durations)))]
    spans: list[tuple[int, float, float]] = []
    for duration in durations:
        start, slot = heapq.heappop(free_at)
        heapq.heappush(free_at, (start + duration, slot))
        spans.append((slot, start, start + duration))
    return max(t for t, _ in free_at), spans


@dataclass
class FaultedSchedule:
    """Outcome of a map wave scheduled under a node fault.

    ``spans`` extends the healthy ``(slot, start, end)`` triples with an
    attempt kind: ``"map"`` (ordinary attempt), ``"killed"`` (in-flight on
    the crashed node, died at the crash), ``"lost"`` (completed on the
    crashed node but its map output died with it), ``"reexec"`` (the
    re-execution of a killed/lost task on a surviving node) or
    ``"speculative"`` (a backup copy of a straggling attempt that won).
    ``wasted_time`` is slot-seconds burned on attempts whose output was
    never used — the re-execution cost the degraded-mode report charges.
    """

    makespan: float
    healthy_makespan: float
    spans: list = field(default_factory=list)  # (slot, start, end, kind)
    killed_attempts: int = 0
    reexecuted_tasks: int = 0
    speculative_copies: int = 0
    wasted_time: float = 0.0

    @property
    def delay(self) -> float:
        return self.makespan - self.healthy_makespan


def schedule_tasks_recovering(
    durations: list[float],
    slots: int,
    slots_per_node: int,
    crash_node: int | None = None,
    crash_time: float = 0.0,
    straggler_node: int | None = None,
    slow_factor: float = 1.0,
    speculative: bool = True,
) -> FaultedSchedule:
    """Greedy slot scheduling with Hadoop's task-level fault recovery.

    Two fault shapes, mirroring the mechanisms of the paper's Section 2
    fault-tolerance argument:

    * **node crash** (``crash_node`` at ``crash_time``): the node's slots
      die at the crash.  In-flight attempts are killed; attempts that had
      *completed* on the node are re-executed too, because their map output
      lived on its local disks (Hadoop re-runs completed maps of a lost
      node).  Recovery runs on surviving slots once the failure is noticed,
      i.e. not before ``crash_time``.
    * **straggler** (``straggler_node`` running ``slow_factor`` x slow):
      attempts on the slow node stretch; with ``speculative`` on, tail
      attempts get backup copies on the earliest-free healthy slots and the
      task completes when either copy does.

    Deterministic: ties break by slot id exactly as in
    :func:`schedule_tasks_detailed`, and recovery processes tasks in their
    original submission order.
    """
    if slots < 1:
        raise ConfigurationError("need at least one slot")
    if slots_per_node < 1:
        raise ConfigurationError("need at least one slot per node")
    if crash_node is not None and straggler_node is not None:
        raise ConfigurationError("one node fault per wave")
    if slow_factor < 1.0:
        raise ConfigurationError("slow_factor must be >= 1")

    healthy = schedule_tasks(durations, slots) if durations else 0.0
    out = FaultedSchedule(makespan=healthy, healthy_makespan=healthy)
    if not durations:
        return out

    def node_of(slot: int) -> int:
        return slot // slots_per_node

    if crash_node is not None:
        free_at = [(0.0, slot) for slot in range(min(slots, len(durations)))]
        heapq.heapify(free_at)
        reexec: list[float] = []  # durations needing a fresh attempt
        for duration in durations:
            while True:
                if not free_at:
                    raise ConfigurationError(
                        "crash killed every slot in the wave"
                    )
                start, slot = heapq.heappop(free_at)
                if node_of(slot) == crash_node and start >= crash_time:
                    continue  # slot is dead; never push it back
                break
            end = start + duration
            if node_of(slot) == crash_node:
                if end > crash_time:
                    # Killed mid-flight at the crash.
                    out.spans.append((slot, start, crash_time, "killed"))
                    out.killed_attempts += 1
                    out.wasted_time += crash_time - start
                    reexec.append(duration)
                    continue  # the slot died with the attempt
                # Completed, but its map output is gone with the node.
                out.spans.append((slot, start, end, "lost"))
                out.wasted_time += duration
                reexec.append(duration)
            else:
                out.spans.append((slot, start, end, "map"))
            heapq.heappush(free_at, (end, slot))
        # Surviving slots re-run the lost tasks, at the earliest once the
        # failure is detected (the crash time).
        survivors = [
            (free, slot) for free, slot in free_at if node_of(slot) != crash_node
        ]
        if not survivors:
            raise ConfigurationError("crash killed every slot in the wave")
        heapq.heapify(survivors)
        for duration in reexec:
            free, slot = heapq.heappop(survivors)
            start = max(free, crash_time)
            end = start + duration
            out.spans.append((slot, start, end, "reexec"))
            out.reexecuted_tasks += 1
            heapq.heappush(survivors, (end, slot))
        out.makespan = max(t for t, _ in survivors)
        return out

    if straggler_node is not None and slow_factor > 1.0:
        free_at = [(0.0, slot) for slot in range(min(slots, len(durations)))]
        heapq.heapify(free_at)
        # attempts: [slot, start, end, original duration]
        attempts: list[list[float]] = []
        for duration in durations:
            start, slot = heapq.heappop(free_at)
            actual = (
                duration * slow_factor if node_of(slot) == straggler_node
                else duration
            )
            attempts.append([slot, start, start + actual, duration])
            heapq.heappush(free_at, (start + actual, slot))
        slow_attempts = [a for a in attempts if node_of(int(a[0])) == straggler_node]
        fast_free = [
            (free, slot) for free, slot in free_at
            if node_of(slot) != straggler_node
        ]
        if speculative and slow_attempts and fast_free:
            heapq.heapify(fast_free)
            # Back up the worst stragglers first (largest projected finish).
            for attempt in sorted(slow_attempts, key=lambda a: -a[2]):
                spec_start, fslot = heapq.heappop(fast_free)
                spec_end = spec_start + attempt[3]
                if spec_end < attempt[2]:
                    out.spans.append((fslot, spec_start, spec_end, "speculative"))
                    out.speculative_copies += 1
                    # The original attempt is killed when the backup wins.
                    out.wasted_time += spec_end - attempt[1]
                    attempt[2] = spec_end
                    heapq.heappush(fast_free, (spec_end, fslot))
                else:
                    heapq.heappush(fast_free, (spec_start, fslot))
                    break  # later copies start even later; none can win
        for slot, start, end, _dur in attempts:
            kind = "map" if node_of(int(slot)) != straggler_node else "straggler"
            out.spans.append((int(slot), start, end, kind))
        out.makespan = max(a[2] for a in attempts)
        if fast_free:
            out.makespan = max(out.makespan, max(t for t, _ in fast_free))
        return out

    # No effective fault: fall back to the healthy detailed schedule.
    makespan, spans = schedule_tasks_detailed(durations, slots)
    out.makespan = makespan
    out.spans = [(slot, start, end, "map") for slot, start, end in spans]
    return out


def feed_task_occupancy(
    sampler,
    node: str,
    resource: str,
    task_spans: list[tuple[int, float, float]],
    capacity: float,
    offset: float = 0.0,
    level: float = 1.0,
) -> None:
    """Accumulate per-attempt task spans into a slot-occupancy busy series.

    Each ``(slot, start, end)`` span from :func:`schedule_tasks_detailed`
    contributes ``level`` over ``[offset + start, offset + end)`` against
    ``capacity`` total slots, so the series value is the fraction of slots
    (or, with ``level`` set to a per-task rate, of aggregate bandwidth)
    occupied in each bucket.  Spans feed the sampler's batched
    :meth:`~repro.obs.UtilizationSampler.accumulate_many` path — one
    series lookup per phase, not per task attempt.
    """
    sampler.accumulate_many(
        node, resource,
        [(offset + start, offset + end) for _slot, start, end in task_spans],
        level=level, capacity=capacity,
    )


def task_waves(task_count: int, slots: int) -> int:
    """Number of scheduling waves needed (ceil division)."""
    return math.ceil(task_count / slots) if task_count else 0


@dataclass
class MapPhase:
    """Input description for the map phase: one entry per input file/split.

    ``file_bytes`` holds the *compressed on-disk* size of every split; empty
    bucket files contribute explicit zeros.
    """

    file_bytes: list[float]
    params: HadoopParams

    def split_for_blocks(self, block_size: float) -> "MapPhase":
        """Split files larger than an HDFS block into per-block tasks."""
        split: list[float] = []
        for size in self.file_bytes:
            if size <= block_size:
                split.append(size)
            else:
                blocks = math.ceil(size / block_size)
                split.extend([size / blocks] * blocks)
        return MapPhase(split, self.params)

    @property
    def task_count(self) -> int:
        return len(self.file_bytes)

    @property
    def total_bytes(self) -> float:
        return sum(self.file_bytes)

    def task_durations(self) -> list[float]:
        p = self.params
        return [p.map_task_startup + size / p.map_scan_rate for size in self.file_bytes]


@dataclass
class JobResult:
    """Timing breakdown of one simulated MapReduce job."""

    name: str
    map_time: float
    shuffle_time: float
    reduce_time: float
    overhead: float
    map_tasks: int = 0
    reduce_tasks: int = 0
    map_waves: int = 0
    failed_mapjoin: bool = False
    shuffle_bytes: float = 0.0
    notes: list[str] = field(default_factory=list)
    # Per-attempt (slot, start, end) spans relative to each phase's start;
    # populated only when the tracker runs with ``trace_tasks=True``.
    map_task_spans: list = field(default_factory=list)
    reduce_task_spans: list = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return self.map_time + self.shuffle_time + self.reduce_time + self.overhead


class JobTracker:
    """Simulates MapReduce jobs against a hardware profile."""

    def __init__(
        self,
        profile: HardwareProfile,
        params: HadoopParams | None = None,
        trace_tasks: bool = False,
    ):
        self.profile = profile
        self.params = params or HadoopParams()
        self.trace_tasks = trace_tasks

    def _schedule_maps(self, durations: list[float], slots: int):
        if self.trace_tasks:
            return schedule_tasks_detailed(durations, slots)
        return schedule_tasks(durations, slots), []

    def run_map_only(self, name: str, map_phase: MapPhase) -> JobResult:
        """A map-only job (selection/projection with no reduce phase)."""
        durations = map_phase.task_durations()
        slots = self.params.map_slots(self.profile)
        map_time, task_spans = self._schedule_maps(durations, slots)
        return JobResult(
            name=name,
            map_time=map_time,
            shuffle_time=0.0,
            reduce_time=0.0,
            overhead=self.params.job_overhead,
            map_tasks=map_phase.task_count,
            map_waves=task_waves(map_phase.task_count, slots),
            map_task_spans=task_spans,
        )

    def run_map_reduce(
        self,
        name: str,
        map_phase: MapPhase,
        shuffle_bytes: float,
        reduce_input_bytes: float,
        reducers: int | None = None,
    ) -> JobResult:
        """A full MR job: map scan, shuffle over the network, reduce work.

        ``shuffle_bytes`` is the map-output volume that crosses the network
        (LZO-compressed in the paper's configuration); ``reduce_input_bytes``
        is what the reduce phase must process (usually the same).
        """
        params = self.params
        map_slots = params.map_slots(self.profile)
        reduce_slots = params.reduce_slots(self.profile)
        if reducers is None:
            reducers = reduce_slots  # the paper sets reducers = total slots
        reducers = max(1, reducers)

        map_time, map_task_spans = self._schedule_maps(
            map_phase.task_durations(), map_slots
        )
        shuffle_time = shuffle_bytes / params.shuffle_bandwidth(self.profile)

        per_reducer = reduce_input_bytes / reducers
        reduce_task_time = params.reduce_task_startup + per_reducer / params.reduce_rate
        reduce_waves = task_waves(reducers, reduce_slots)
        reduce_time = reduce_task_time * reduce_waves

        reduce_task_spans: list[tuple[int, float, float]] = []
        if self.trace_tasks:
            # Equal-sized reduce tasks run in whole waves: task i occupies
            # slot i % slots during wave i // slots.
            for i in range(reducers):
                start = (i // reduce_slots) * reduce_task_time
                reduce_task_spans.append(
                    (i % reduce_slots, start, start + reduce_task_time)
                )

        return JobResult(
            name=name,
            map_time=map_time,
            shuffle_time=shuffle_time,
            reduce_time=reduce_time,
            overhead=params.job_overhead,
            map_tasks=map_phase.task_count,
            reduce_tasks=reducers,
            map_waves=task_waves(map_phase.task_count, map_slots),
            shuffle_bytes=shuffle_bytes,
            map_task_spans=map_task_spans,
            reduce_task_spans=reduce_task_spans,
        )

    def run_map_join(
        self,
        name: str,
        big_phase: MapPhase,
        hashtable_bytes: float,
        backup_shuffle_bytes: float | None = None,
        backup_reduce_bytes: float | None = None,
    ) -> JobResult:
        """A map-side join: succeeds only if the hash table fits in task heap.

        On failure (the Q22 case) the job burns ``mapjoin_failure_delay``
        seconds, then a backup common-join job runs with the supplied shuffle
        and reduce volumes.
        """
        params = self.params
        budget = params.task_heap_bytes * params.hashtable_memory_fraction
        if hashtable_bytes <= budget:
            result = self.run_map_only(name, big_phase)
            # Each map task additionally loads the hash table from local disk.
            load = hashtable_bytes / self.profile.aggregate_disk_bandwidth
            result.map_time += load
            result.notes.append("map-side join succeeded")
            return result

        if backup_shuffle_bytes is None:
            backup_shuffle_bytes = big_phase.total_bytes + hashtable_bytes
        if backup_reduce_bytes is None:
            backup_reduce_bytes = backup_shuffle_bytes
        backup = self.run_map_reduce(
            f"{name}.backup", big_phase, backup_shuffle_bytes, backup_reduce_bytes
        )
        backup.map_time += params.mapjoin_failure_delay
        backup.failed_mapjoin = True
        backup.notes.append(
            f"map-side join hash table ({hashtable_bytes / GB:.2f} GB) exceeded "
            f"task budget ({budget / GB:.2f} GB); backup common join executed"
        )
        return backup

"""Exception hierarchy shared by every subsystem in the reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or invalid parameters."""


class PlanError(ReproError):
    """A query plan is malformed or references unknown tables/columns."""


class StorageError(ReproError):
    """A storage engine operation failed (page, B-tree, WAL, HDFS block)."""


class TransactionAborted(ReproError):
    """A transaction was rolled back (deadlock victim or explicit abort)."""


class LockWait(ReproError):
    """A lock request must wait for another transaction (no deadlock)."""


class ShardingError(ReproError):
    """A request could not be routed to a shard."""


class FaultPlanError(ConfigurationError):
    """A fault-injection plan is malformed (bad spec string or schedule)."""


class StaleConfigError(ShardingError):
    """A router's cached chunk map is stale and a refresh did not fix it.

    Mirrors mongos' ``StaleConfig`` wire error: the shard rejects a request
    carrying an outdated shardVersion, the router refreshes from the config
    server and retries once.  If the refreshed map *still* cannot route the
    key (the chunk is mid-handoff or its shard is being drained), this typed
    error surfaces instead of the request silently hitting the wrong shard.
    """


class ChunkMoving(ShardingError):
    """The key's chunk is inside a migration commit's critical section.

    During the short commit window of a chunk migration, neither the source
    (ownership is being released) nor the destination (ownership is not yet
    committed) may accept operations for the moving key range.  Clients
    retry through their :class:`RetryPolicy`; one backoff step comfortably
    outlasts the window.
    """

    def __init__(self, message: str, shard: int = -1):
        super().__init__(message)
        self.shard = shard


class Overloaded(ReproError):
    """An operation was shed by admission control instead of queueing.

    Overload protection (PR 10) turns unbounded queueing into a typed,
    immediately-visible failure: a bounded station queue rejects the op, a
    deadline check drops it, a retry budget refuses another attempt, or an
    open circuit breaker fails it fast.  ``reason`` carries which mechanism
    shed the op so histograms and reports can break shed traffic down.
    """

    def __init__(self, message: str, reason: str = "queue-full",
                 station: str = ""):
        super().__init__(message)
        self.reason = reason
        self.station = station


class DeadlineExceeded(Overloaded):
    """An op's end-to-end deadline expired before it could be served.

    Raised (or accounted) at queue hops: a request whose deadline has
    already passed is dropped rather than given service that no client is
    still waiting for.
    """

    def __init__(self, message: str, station: str = ""):
        super().__init__(message, reason="deadline", station=station)


class BreakerOpen(Overloaded):
    """A per-shard circuit breaker is open; the op fails fast, unsent."""

    def __init__(self, message: str, shard: int = -1):
        super().__init__(message, reason="breaker")
        self.shard = shard


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class WorkloadError(ReproError):
    """A benchmark workload definition or run request is invalid."""


class SloUnreachableError(ConfigurationError):
    """A frontier latency SLO cannot be met at any probed arrival rate.

    Raised by the knee search when even the lowest rate of the bracket
    violates the p99 objective.  Subclasses :class:`ConfigurationError`
    because the requested objective, not the system, is at fault — the CLI
    reports it as a one-line usage error (exit 2).
    """


class OutOfDiskSpace(StorageError):
    """A node ran out of simulated disk space (Hive Q9 at 16 TB)."""


class ServerCrashed(ReproError):
    """A simulated server process crashed mid-benchmark (Mongo-AS, workload D)."""


class ReplicaSetUnavailable(ServerCrashed):
    """A replica set cannot serve or acknowledge an operation right now.

    Raised when no primary is elected (a failover is in progress, or there
    is no quorum), or when a write concern requires more reachable members
    than currently exist.  Subclasses :class:`ServerCrashed` so the YCSB
    client's retry loop treats it like any other connection failure — the
    retries are what carry the client across a failover window.
    """


class ShardUnavailable(ShardingError, ServerCrashed):
    """An operation was routed to a shard whose server process is down.

    The paper's MongoDB deployment ran *without* replica sets (§3.4.1), so a
    dead mongod means lost availability for its key range, not failover.
    Subclasses both :class:`ShardingError` (it is a routing-level failure)
    and :class:`ServerCrashed` (callers treating any dead process uniformly
    keep working).
    """

    def __init__(self, message: str, shard: int = -1):
        super().__init__(message)
        self.shard = shard

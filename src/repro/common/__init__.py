"""Cross-cutting utilities: errors, units, deterministic RNG, statistics."""

from repro.common.errors import (
    ConfigurationError,
    OutOfDiskSpace,
    PlanError,
    ReproError,
    ServerCrashed,
    ShardingError,
    SimulationError,
    StorageError,
    TransactionAborted,
    WorkloadError,
)
from repro.common.rng import SeedStream, TpchRandom, TpchRandom64, to_int32, to_int64
from repro.common.stats import (
    arithmetic_mean,
    geometric_mean,
    harmonic_number,
    percentile,
    scaling_factors,
    std_deviation,
    std_error,
)
from repro.common.units import GB, KB, MB, TB, fmt_bytes, fmt_seconds, gbit_to_bytes_per_sec

__all__ = [
    "ConfigurationError",
    "OutOfDiskSpace",
    "PlanError",
    "ReproError",
    "ServerCrashed",
    "ShardingError",
    "SimulationError",
    "StorageError",
    "TransactionAborted",
    "WorkloadError",
    "SeedStream",
    "TpchRandom",
    "TpchRandom64",
    "to_int32",
    "to_int64",
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_number",
    "percentile",
    "scaling_factors",
    "std_deviation",
    "std_error",
    "GB",
    "KB",
    "MB",
    "TB",
    "fmt_bytes",
    "fmt_seconds",
    "gbit_to_bytes_per_sec",
]

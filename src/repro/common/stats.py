"""Statistics helpers used by the benchmark harness and report tables.

The paper's Table 3 reports arithmetic and geometric means of query times
(including the AM-9/GM-9 variants that exclude Q9), and the YCSB figures
report averages with standard errors over sixty 10-second windows.  These
helpers implement exactly those aggregations.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average; raises ``ValueError`` on an empty input."""
    items = list(values)
    if not items:
        raise ValueError("arithmetic_mean of empty sequence")
    return sum(items) / len(items)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean via log-space accumulation (stable for large ratios)."""
    items = list(values)
    if not items:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("geometric_mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def std_deviation(values: Iterable[float]) -> float:
    """Sample standard deviation (n - 1 denominator)."""
    items = list(values)
    if len(items) < 2:
        return 0.0
    mean = arithmetic_mean(items)
    variance = sum((v - mean) ** 2 for v in items) / (len(items) - 1)
    return math.sqrt(variance)


def std_error(values: Iterable[float]) -> float:
    """Standard error of the mean, as plotted in the paper's YCSB figures."""
    items = list(values)
    if len(items) < 2:
        return 0.0
    return std_deviation(items) / math.sqrt(len(items))


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile, ``p`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile {p} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return ordered[lower]
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def scaling_factors(times_by_sf: Sequence[float]) -> list[float]:
    """Growth factor between consecutive scale factors (Table 3, right side).

    Given times at SFs that each grow 4x, returns ``t[i+1] / t[i]``; the paper
    calls a query "scaling well" when these stay at or below 4.
    """
    if len(times_by_sf) < 2:
        return []
    factors = []
    for earlier, later in zip(times_by_sf, times_by_sf[1:]):
        if earlier <= 0:
            raise ValueError("scaling factor requires positive times")
        factors.append(later / earlier)
    return factors


def harmonic_number(n: int, s: float = 1.0) -> float:
    """Generalized harmonic number H_{n,s} = sum_{i=1..n} 1/i^s.

    Used by the zipfian request generator and the analytic cache-hit model.
    For large ``n`` with ``s != 1`` an Euler-Maclaurin approximation is used
    so YCSB-scale populations (hundreds of millions of keys) stay cheap.
    """
    if n <= 0:
        raise ValueError("harmonic_number requires n >= 1")
    if n <= 10_000:
        return sum(1.0 / i**s for i in range(1, n + 1))
    head = sum(1.0 / i**s for i in range(1, 10_001))
    # Integral approximation of the tail plus second-order correction.
    if abs(s - 1.0) < 1e-12:
        tail = math.log(n) - math.log(10_000)
    else:
        tail = (n ** (1.0 - s) - 10_000 ** (1.0 - s)) / (1.0 - s)
    correction = 0.5 * (1.0 / n**s - 1.0 / 10_000**s)
    return head + tail + correction

"""An in-memory B+-tree used by both storage engines.

Both SQL Server's clustered index and MongoDB's ``_id`` index are B-trees;
this implementation backs the functional layer of each engine: ordered keys,
point lookup, insert/update/delete, and ordered range scans (the YCSB SCAN
operation and Mongo-AS chunk splits both need them).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional

from repro.common.errors import StorageError

DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: list = []
        self.children: list[_Node] = []  # internal nodes only
        self.values: list = []  # leaves only
        self.next_leaf: Optional[_Node] = None


class BTree:
    """A B+-tree: values live in linked leaves, internal nodes route keys."""

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 4:
            raise StorageError("B-tree order must be >= 4")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._count = 0
        # Instrumentation for the performance layer and tests.
        self.reads = 0
        self.writes = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key) -> bool:
        return self.get(key, default=_MISSING) is not _MISSING

    @property
    def height(self) -> int:
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    # -- lookup -------------------------------------------------------------------

    def _find_leaf(self, key) -> _Node:
        node = self._root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def get(self, key, default=None) -> Any:
        """Point lookup; returns ``default`` when the key is absent."""
        self.reads += 1
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def range_scan(self, start_key, count: int) -> list[tuple]:
        """Up to ``count`` (key, value) pairs with key >= start_key, in order."""
        if count <= 0:
            return []
        self.reads += 1
        leaf = self._find_leaf(start_key)
        index = bisect.bisect_left(leaf.keys, start_key)
        out: list[tuple] = []
        while leaf is not None and len(out) < count:
            while index < len(leaf.keys) and len(out) < count:
                out.append((leaf.keys[index], leaf.values[index]))
                index += 1
            leaf = leaf.next_leaf
            index = 0
        return out

    def items(self) -> Iterator[tuple]:
        """All (key, value) pairs in key order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    def min_key(self):
        if self._count == 0:
            raise StorageError("min_key of empty tree")
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    def max_key(self):
        if self._count == 0:
            raise StorageError("max_key of empty tree")
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1]

    # -- mutation -----------------------------------------------------------------

    def insert(self, key, value) -> bool:
        """Insert or overwrite; returns True if the key was new."""
        self.writes += 1
        self._was_update = False
        result = self._insert(self._root, key, value)
        if result is not None:
            sep, right = result
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        return not self._was_update

    def _insert(self, node: _Node, key, value):
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                self._was_update = True
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._count += 1
            self._was_update = False
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        result = self._insert(node.children[index], key, value)
        if result is None:
            return None
        sep, right = result
        node.keys.insert(index, sep)
        node.children.insert(index + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    def delete(self, key) -> bool:
        """Remove a key; returns False when absent.

        Uses lazy deletion (no rebalancing): leaves may underflow, which is
        fine for the engines' workloads (YCSB never deletes; chunk migration
        drains whole ranges and the emptied leaves are garbage-collected on
        the next split cycle).
        """
        self.writes += 1
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        leaf.keys.pop(index)
        leaf.values.pop(index)
        self._count -= 1
        return True


class _Missing:
    def __repr__(self):
        return "<missing>"


_MISSING = _Missing()

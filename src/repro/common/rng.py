"""Deterministic random number generation for the whole reproduction.

Two generator families matter for the paper:

* :class:`TpchRandom` — a port of dbgen's Lehmer (minimal standard) generator
  with **32-bit C integer semantics** in its ``random_int`` helper.  Section
  3.3.1 of the paper reports that at the 16 TB scale factor the ``RANDOM``
  macro overflows and produces *negative* partkey/custkey values inside
  ``mk_order``; emulating 32-bit wraparound lets us reproduce (and test) that
  exact failure.
* :class:`TpchRandom64` — the authors' fix: the same interface over 64-bit
  arithmetic (a splitmix64 core), which stays correct at every scale factor.

Everything else (YCSB key choice, simulator jitter) derives seeds from
:class:`SeedStream` so runs are reproducible end to end.
"""

from __future__ import annotations

import hashlib

_INT32_MASK = 0xFFFFFFFF
_INT64_MASK = 0xFFFFFFFFFFFFFFFF

_LEHMER_MULTIPLIER = 16807
_LEHMER_MODULUS = 2**31 - 1


def to_int32(value: int) -> int:
    """Reinterpret an arbitrary integer as a C ``int32_t`` (two's complement)."""
    value &= _INT32_MASK
    if value >= 2**31:
        value -= 2**32
    return value


def to_int64(value: int) -> int:
    """Reinterpret an arbitrary integer as a C ``int64_t`` (two's complement)."""
    value &= _INT64_MASK
    if value >= 2**63:
        value -= 2**64
    return value


class TpchRandom:
    """dbgen-style Lehmer generator with 32-bit ``RANDOM(low, high)`` semantics.

    ``random_int`` follows the C expression
    ``low + (int32_t)(rand() % (int32_t)(high - low + 1))``: when the span
    exceeds ``INT32_MAX`` (which happens for partkey at SF >= 16000, where
    ``high = SF * 200000 = 3.2e9``) the cast wraps and the result can be
    negative — the bug the paper hit and fixed with RANDOM64.
    """

    def __init__(self, seed: int = 19620718):
        if seed <= 0:
            seed = 1
        self._state = seed % _LEHMER_MODULUS or 1

    def next_raw(self) -> int:
        """Advance the Lehmer state and return it (uniform on [1, 2^31 - 2])."""
        self._state = (self._state * _LEHMER_MULTIPLIER) % _LEHMER_MODULUS
        return self._state

    def random_int(self, low: int, high: int) -> int:
        """32-bit RANDOM(low, high): overflows for spans > INT32_MAX.

        The span ``high - low + 1`` is first truncated to ``int32`` the way
        dbgen's ``long`` arithmetic truncates it on an LP32/Windows build; a
        span above ``INT32_MAX`` therefore wraps negative and the modulo
        yields negative offsets — exactly the negative partkey/custkey
        symptom the paper reports for ``mk_order`` at SF 16000.
        """
        span = to_int32(high - low + 1)
        raw = self.next_raw()
        if span == 0:
            return to_int32(low)
        remainder = raw % span  # floor mod: takes the sign of the span
        return to_int32(low + remainder)

    def skip(self, count: int) -> None:
        """Discard ``count`` values (dbgen's per-row stream advancement)."""
        for _ in range(count):
            self.next_raw()


class TpchRandom64:
    """The RANDOM64 fix: 64-bit generator that never overflows at 16 TB.

    Uses a splitmix64 core, which is deterministic, fast, and has no shared
    state with Python's global ``random`` module.
    """

    def __init__(self, seed: int = 19620718):
        self._state = seed & _INT64_MASK

    def next_raw(self) -> int:
        """Advance splitmix64 and return a uniform value on [0, 2^64)."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & _INT64_MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _INT64_MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _INT64_MASK
        return z ^ (z >> 31)

    def random_int(self, low: int, high: int) -> int:
        """Uniform integer on [low, high]; exact for any 64-bit span."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_raw() % span

    def random_float(self) -> float:
        """Uniform float on [0, 1)."""
        return self.next_raw() / 2.0**64

    def uniform(self, low: float, high: float) -> float:
        """Uniform float on [low, high)."""
        return low + (high - low) * self.random_float()

    def choice(self, items):
        """Pick one element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.random_int(0, len(items) - 1)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.random_int(0, i)
            items[i], items[j] = items[j], items[i]

    def skip(self, count: int) -> None:
        """Discard ``count`` values."""
        for _ in range(count):
            self.next_raw()


class SeedStream:
    """Derives independent, named 64-bit seeds from one master seed.

    ``SeedStream(42).seed_for("ycsb", "workload-a", 3)`` is stable across
    processes and Python versions (it hashes the textual path with SHA-256),
    so every component of a study can get its own reproducible generator.
    """

    def __init__(self, master_seed: int):
        self.master_seed = master_seed

    def seed_for(self, *path) -> int:
        """Return the 64-bit seed associated with a component path."""
        text = f"{self.master_seed}:" + "/".join(str(part) for part in path)
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def rng_for(self, *path) -> TpchRandom64:
        """Return a fresh :class:`TpchRandom64` for a component path."""
        return TpchRandom64(self.seed_for(*path))

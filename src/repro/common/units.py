"""Byte, time, and rate units used throughout the cost models.

All sizes are plain ``int``/``float`` byte counts and all times are float
seconds; these constants exist so call sites read like the paper's text
("256 MB HDFS block", "1 Gbit switch") instead of raw powers of two.
"""

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

# Decimal variants: disk vendors and network links quote powers of ten.
KB10 = 1_000
MB10 = 1_000_000
GB10 = 1_000_000_000
TB10 = 1_000_000_000_000

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0

MS = 1e-3
US = 1e-6


def gbit_to_bytes_per_sec(gbits: float) -> float:
    """Convert a link speed in gigabits/s to bytes/s (decimal, as vendors do)."""
    return gbits * 1e9 / 8.0


def fmt_bytes(n: float) -> str:
    """Render a byte count with a human-readable binary suffix."""
    value = float(n)
    for suffix in ("B", "KB", "MB", "GB", "TB", "PB"):
        if abs(value) < 1024.0 or suffix == "PB":
            return f"{value:.1f} {suffix}" if suffix != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_seconds(seconds: float) -> str:
    """Render a duration the way the paper's tables do (whole seconds)."""
    if seconds < 1.0:
        return f"{seconds * 1000:.1f} ms"
    if seconds < 600.0:
        return f"{seconds:.0f} sec"
    return f"{seconds / 60.0:.0f} min"

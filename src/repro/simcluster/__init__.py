"""Discrete-event cluster simulator calibrated to the paper's testbed."""

from repro.simcluster.events import Environment, Event, Process, Resource, Timeout
from repro.simcluster.node import Cluster, Node
from repro.simcluster.profile import HardwareProfile, oltp_testbed, paper_testbed
from repro.simcluster.resources import Cpu, Disk, DiskArray, NetworkLink

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Resource",
    "Timeout",
    "Cluster",
    "Node",
    "HardwareProfile",
    "oltp_testbed",
    "paper_testbed",
    "Cpu",
    "Disk",
    "DiskArray",
    "NetworkLink",
]

"""Calibration constants describing the paper's testbed (Section 3.1).

Every performance model in the reproduction pulls its rates from a
:class:`HardwareProfile` so that (a) all engines are costed against identical
hardware, exactly as the paper insists ("we used exactly the same hardware
for both systems"), and (b) ablations can perturb one knob at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError
from repro.common.units import GB, MB, gbit_to_bytes_per_sec


@dataclass(frozen=True)
class HardwareProfile:
    """Per-node hardware rates plus cluster topology counts."""

    # Topology (Section 3.1).
    nodes: int = 16
    cores_per_node: int = 16  # dual quad-core Xeon L5630, hyper-threaded
    memory_per_node: float = 32.0 * GB
    data_disks_per_node: int = 8
    disk_capacity: float = 300.0 * GB  # per 10K SAS drive

    # Device rates.
    disk_seq_bandwidth: float = 100.0 * MB  # per spindle, sequential
    disk_seek_time: float = 0.008  # 10K RPM: ~8 ms per random access
    network_bandwidth: float = gbit_to_bytes_per_sec(1.0)  # per-node NIC
    network_latency: float = 0.0001

    # Measured software-level rates the paper reports for its Hadoop setup.
    hdfs_seq_read_bandwidth: float = 400.0 * MB  # per node, testdfsio (§3.3.4.1)
    rcfile_scan_bandwidth: float = 70.0 * MB  # per node, CPU-bound (§3.3.4.1)

    def __post_init__(self):
        if self.nodes < 1 or self.cores_per_node < 1 or self.data_disks_per_node < 1:
            raise ConfigurationError("profile counts must be positive")
        if min(self.disk_seq_bandwidth, self.network_bandwidth) <= 0:
            raise ConfigurationError("profile rates must be positive")

    @property
    def aggregate_disk_bandwidth(self) -> float:
        """Per-node sequential read rate with all data disks streaming."""
        return self.data_disks_per_node * self.disk_seq_bandwidth

    @property
    def cluster_disk_bandwidth(self) -> float:
        return self.nodes * self.aggregate_disk_bandwidth

    @property
    def cluster_memory(self) -> float:
        return self.nodes * self.memory_per_node

    @property
    def cluster_disk_capacity(self) -> float:
        return self.nodes * self.data_disks_per_node * self.disk_capacity

    def with_(self, **overrides) -> "HardwareProfile":
        """Return a copy with some knobs replaced (used by ablations)."""
        return replace(self, **overrides)


def paper_testbed() -> HardwareProfile:
    """The 16-node cluster from Section 3.1 of the paper."""
    return HardwareProfile()


def oltp_testbed() -> HardwareProfile:
    """The YCSB configuration: 8 of the 16 nodes serve data (Section 3.1)."""
    return HardwareProfile(nodes=8)

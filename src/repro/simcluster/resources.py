"""Hardware resource models: disks, disk arrays, CPUs, and network links.

Rates default to the paper's testbed (Section 3.1): 10K RPM SAS disks that
deliver ~100 MB/s sequential each (8 data disks ≈ 800 MB/s aggregate), dual
quad-core 2.13 GHz Xeons (16 hardware threads), and a 1 Gbit Ethernet switch.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.common.errors import SimulationError
from repro.common.units import MB, gbit_to_bytes_per_sec
from repro.simcluster.events import Environment, Resource


class Disk:
    """One spindle: a capacity-1 queue with seek + transfer service times."""

    def __init__(
        self,
        env: Environment,
        seq_bandwidth: float = 100.0 * MB,
        seek_time: float = 0.008,
        name: str = "disk",
    ):
        self.env = env
        self.seq_bandwidth = seq_bandwidth
        self.seek_time = seek_time
        self.name = name
        self._queue = Resource(env, capacity=1, name=name)
        self.bytes_read = 0
        self.bytes_written = 0

    def service_time(self, nbytes: int, sequential: bool) -> float:
        """Time the spindle is busy for one I/O of ``nbytes``."""
        transfer = nbytes / self.seq_bandwidth
        return transfer if sequential else self.seek_time + transfer

    def read(self, nbytes: int, sequential: bool = False) -> Generator:
        """Process body: perform one read I/O."""
        self.bytes_read += nbytes
        yield from self._queue.use(self.service_time(nbytes, sequential))

    def write(self, nbytes: int, sequential: bool = True) -> Generator:
        """Process body: perform one write I/O (log writes are sequential)."""
        self.bytes_written += nbytes
        yield from self._queue.use(self.service_time(nbytes, sequential))

    @property
    def queue_length(self) -> int:
        return self._queue.queue_length

    @property
    def load(self) -> int:
        """Requests in service plus requests waiting (dispatch metric)."""
        return self._queue.in_use + self._queue.queue_length


class DiskArray:
    """A set of spindles treated as one volume (RAID 0 or separate volumes).

    Requests are dispatched to the least-loaded spindle, which models both
    the RAID 0 striping used for Hive/MongoDB and the per-volume layout used
    for PDW/SQL Server closely enough for queueing behaviour.
    """

    def __init__(
        self,
        env: Environment,
        spindles: int = 8,
        per_disk_bandwidth: float = 100.0 * MB,
        seek_time: float = 0.008,
        name: str = "array",
    ):
        if spindles < 1:
            raise SimulationError("disk array needs at least one spindle")
        self.env = env
        self.disks = [
            Disk(env, per_disk_bandwidth, seek_time, name=f"{name}[{i}]")
            for i in range(spindles)
        ]

    def _pick(self) -> Disk:
        return min(self.disks, key=lambda d: d.load)

    def read(self, nbytes: int, sequential: bool = False) -> Generator:
        yield from self._pick().read(nbytes, sequential)

    def write(self, nbytes: int, sequential: bool = True) -> Generator:
        yield from self._pick().write(nbytes, sequential)

    @property
    def aggregate_bandwidth(self) -> float:
        """Peak sequential read rate with all spindles streaming."""
        return sum(d.seq_bandwidth for d in self.disks)

    @property
    def bytes_read(self) -> int:
        return sum(d.bytes_read for d in self.disks)

    @property
    def bytes_written(self) -> int:
        return sum(d.bytes_written for d in self.disks)


class Cpu:
    """A pool of hardware threads; work occupies one thread for its duration."""

    def __init__(self, env: Environment, cores: int = 16, name: str = "cpu"):
        self.env = env
        self.cores = cores
        self.name = name
        self._pool = Resource(env, capacity=cores, name=name)
        self.busy_seconds = 0.0

    def consume(self, seconds: float) -> Generator:
        """Process body: burn ``seconds`` of CPU on one core."""
        if seconds < 0:
            raise SimulationError(f"negative CPU time {seconds}")
        self.busy_seconds += seconds
        yield from self._pool.use(seconds)


class NetworkLink:
    """A point-to-point or NIC-level link with a fixed bandwidth."""

    def __init__(
        self,
        env: Environment,
        bandwidth: float = gbit_to_bytes_per_sec(1.0),
        latency: float = 0.0001,
        name: str = "link",
    ):
        self.env = env
        self.bandwidth = bandwidth
        self.latency = latency
        self.name = name
        self._queue = Resource(env, capacity=1, name=name)
        self.bytes_sent = 0

    def transfer(self, nbytes: int) -> Generator:
        """Process body: move ``nbytes`` across the link."""
        self.bytes_sent += nbytes
        yield from self._queue.use(self.latency + nbytes / self.bandwidth)

    def transfer_time(self, nbytes: int) -> float:
        """Analytic (uncontended) time to move ``nbytes``."""
        return self.latency + nbytes / self.bandwidth

"""A small deterministic discrete-event simulation kernel.

This is the substrate under every performance number in the reproduction:
simulated processes are plain Python generators that ``yield`` events
(timeouts, resource grants), and the single-threaded event loop advances a
virtual clock.  The design mirrors SimPy's process-interaction style but is
self-contained (no external dependency) and fully deterministic: ties in the
event heap are broken by insertion order.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, Callable, Optional

from repro.common.errors import SimulationError


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; :meth:`succeed` schedules it to fire, at which
    point every waiting process is resumed with :attr:`value`.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.triggered = False
        self.value: Any = None
        self._callbacks: list[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Schedule this event to fire now; idempotence is an error."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        self.env._schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires (immediately if fired)."""
        if self.triggered and self._fired:
            callback(self)
        else:
            self._callbacks.append(callback)

    # Internal: set once the event loop has dispatched the event.
    _fired = False


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(env)
        self.triggered = True
        self.value = None
        env._schedule(self, delay)


class Process(Event):
    """Wraps a generator; the process itself is an event that fires on return.

    The generator yields :class:`Event` objects.  When a yielded event fires,
    the generator is resumed with the event's value.  When the generator
    returns, the process event fires with the return value, so processes can
    wait on each other (fork/join).
    """

    def __init__(self, env: "Environment", generator: Generator):
        super().__init__(env)
        self._generator = generator
        # Bootstrap: resume once at the current time.
        bootstrap = Event(env)
        bootstrap.succeed()
        bootstrap.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Event objects"
            )
        target.add_callback(self._resume)


class Environment:
    """The event loop: a clock plus a priority queue of pending events.

    ``tracer``, ``metrics`` and ``sampler`` (see :mod:`repro.obs`) are
    optional hooks: when attached, named :class:`Resource` instances emit
    wait/hold spans, queueing counters, and busy/queue-depth utilization
    series.  ``prof`` (a :class:`repro.obs.prof.ProfiledRun`) charges the
    dispatch loop's wall time to the ``eventsim.loop`` subsystem counter.
    When left ``None`` — the default — the loop and the resources run
    exactly the uninstrumented code path.
    """

    def __init__(self, tracer=None, metrics=None, sampler=None, prof=None):
        self.now = 0.0
        self.tracer = tracer
        self.metrics = metrics
        self.sampler = sampler
        self.prof = prof
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, self._sequence, event))

    def timeout(self, delay: float) -> Timeout:
        """Return an event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay)

    def event(self) -> Event:
        """Return a fresh untriggered event (for manual signalling)."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator and return its join event."""
        return Process(self, generator)

    def run(self, until: Optional[float] = None) -> None:
        """Dispatch events until the queue drains or the clock passes ``until``."""
        if self.prof is not None:
            return self._run_profiled(until)
        while self._queue:
            when, _seq, event = self._queue[0]
            if until is not None and when > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            self.now = when
            event._fired = True
            callbacks, event._callbacks = event._callbacks, []
            for callback in callbacks:
                callback(event)
        if until is not None:
            self.now = until

    def _run_profiled(self, until: Optional[float] = None) -> None:
        """The same dispatch loop, bracketed by the ``eventsim.loop`` counter.

        Kept as a separate duplicate so the unprofiled :meth:`run` stays
        byte-for-byte the pre-instrumentation hot path (zero-cost-off).
        The callbacks dispatched here include every instrumented producer
        (digest updates, span construction), whose own counters nest inside
        this one — self-vs-total accounting separates them back out.
        """
        prof = self.prof
        events = 0
        prof.enter("eventsim.loop")
        try:
            while self._queue:
                when, _seq, event = self._queue[0]
                if until is not None and when > until:
                    self.now = until
                    return
                heapq.heappop(self._queue)
                self.now = when
                event._fired = True
                callbacks, event._callbacks = event._callbacks, []
                for callback in callbacks:
                    callback(event)
                events += 1
            if until is not None:
                self.now = until
        finally:
            prof.exit()
            prof.count_events(events)
            prof.note_virtual_time(self.now)

    def all_of(self, events: list[Event]) -> Event:
        """Return an event that fires once every event in ``events`` has fired."""
        gate = Event(self)
        remaining = len(events)
        if remaining == 0:
            gate.succeed([])
            return gate
        results: list[Any] = [None] * remaining
        state = {"left": remaining}

        def make_callback(index: int):
            def on_fire(event: Event) -> None:
                results[index] = event.value
                state["left"] -= 1
                if state["left"] == 0:
                    gate.succeed(results)

            return on_fire

        for index, event in enumerate(events):
            event.add_callback(make_callback(index))
        return gate


class Resource:
    """A FIFO resource with integer capacity (cores, spindles, a lock).

    Usage inside a process generator::

        grant = resource.request()
        yield grant
        try:
            yield env.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, capacity: int = 1, name: Optional[str] = None):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiting: list[Event] = []
        # Aggregate counters for utilization reporting.
        self.total_waits = 0
        self.total_grants = 0
        self.total_wait_time = 0.0
        # Tracing is active only for *named* resources on an instrumented
        # environment; an untraced resource takes none of these branches.
        self._trace = (
            getattr(env, "tracer", None) is not None and name is not None
        )
        if self._trace:
            self._wait_since: dict[int, float] = {}  # id(event) -> enqueue time
            self._hold_since: list[float] = []  # FIFO grant times
        self._sample = (
            getattr(env, "sampler", None) is not None and name is not None
        )

    def _sample_levels(self) -> None:
        """Report the current occupancy/queue-depth transition to the sampler."""
        sampler = self.env.sampler
        now = self.env.now
        sampler.set_level(self.name, "servers", now, self.in_use,
                          capacity=self.capacity)
        sampler.set_level(self.name, "servers", now, len(self._waiting),
                          metric="queue")

    def request(self) -> Event:
        """Return an event that fires when a unit of capacity is granted."""
        grant = Event(self.env)
        if self.in_use < self.capacity:
            self.in_use += 1
            self.total_grants += 1
            if self._trace:
                self._hold_since.append(self.env.now)
            grant.succeed()
        else:
            self.total_waits += 1
            if self._trace:
                self._wait_since[id(grant)] = self.env.now
            self._waiting.append(grant)
        if self._sample:
            self._sample_levels()
        return grant

    def release(self) -> None:
        """Return one unit of capacity, waking the longest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release without matching request")
        if self._trace:
            self._record_release()
        # Hand the slot to a waiter only while within capacity; after a
        # mid-run shrink (set_capacity), in_use drains down instead.
        if self._waiting and self.in_use <= self.capacity:
            self.total_grants += 1
            self._waiting.pop(0).succeed()
        else:
            self.in_use -= 1
        if self._sample:
            self._sample_levels()

    def set_capacity(self, capacity: int) -> None:
        """Change capacity mid-run (fault injection: a crash takes servers
        offline, a restart brings them back).

        Growing wakes queued waiters immediately.  Shrinking never preempts:
        holders in flight finish their service and ``in_use`` drains down to
        the new capacity as they release.
        """
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        while self._waiting and self.in_use < self.capacity:
            waiter = self._waiting.pop(0)
            self.in_use += 1
            self.total_grants += 1
            if self._trace:
                now = self.env.now
                wait_start = self._wait_since.pop(id(waiter), now)
                self.total_wait_time += now - wait_start
                self.env.tracer.add(
                    f"{self.name}.wait", wait_start, now,
                    cat="resource-wait", node=self.name, lane="wait",
                )
                self._hold_since.append(now)
            waiter.succeed()
        if self._sample:
            self._sample_levels()

    def _record_release(self) -> None:
        """Emit hold/wait spans around a release (tracing enabled only).

        Holds are paired FIFO with grants — exact for capacity 1 (the
        mutual-exclusion case the invariant tests check), an
        order-approximation for larger capacities, where total hold time is
        still conserved.
        """
        now = self.env.now
        tracer = self.env.tracer
        hold_start = self._hold_since.pop(0) if self._hold_since else now
        hold_span = tracer.add(
            f"{self.name}.hold", hold_start, now,
            cat="resource", node=self.name, lane="hold",
        )
        # On a capacity-1 resource holds are strictly serial: each one is
        # handed the slot by its predecessor — the lock-handoff chain the
        # critical-path layer walks.  (Larger capacities interleave, so no
        # single chain exists.)
        if self.capacity == 1:
            prev = getattr(self, "_last_hold_span", None)
            if prev is not None and prev.end <= hold_span.start + 1e-9:
                tracer.link(prev, hold_span, "lock-handoff")
            self._last_hold_span = hold_span
        metrics = self.env.metrics
        if metrics is not None:
            metrics.counter(f"resource.{self.name}.holds").inc()
            metrics.histogram(f"resource.{self.name}.hold_time").observe(
                now - hold_start
            )
        if self._waiting and self.in_use <= self.capacity:
            waiter = self._waiting[0]
            wait_start = self._wait_since.pop(id(waiter), now)
            self.total_wait_time += now - wait_start
            tracer.add(
                f"{self.name}.wait", wait_start, now,
                cat="resource-wait", node=self.name, lane="wait",
            )
            if metrics is not None:
                metrics.counter(f"resource.{self.name}.waits").inc()
                metrics.histogram(f"resource.{self.name}.wait_time").observe(
                    now - wait_start
                )
            # The woken waiter starts holding now.
            self._hold_since.append(now)

    @property
    def queue_length(self) -> int:
        """Number of requests currently waiting for capacity."""
        return len(self._waiting)

    def use(self, hold_time: float) -> Generator:
        """Convenience process body: acquire, hold for ``hold_time``, release."""
        grant = self.request()
        yield grant
        try:
            yield self.env.timeout(hold_time)
        finally:
            self.release()

"""A simulated cluster node: CPU pool, data-disk array, and a NIC."""

from __future__ import annotations

from repro.simcluster.events import Environment
from repro.simcluster.profile import HardwareProfile
from repro.simcluster.resources import Cpu, DiskArray, NetworkLink


class Node:
    """One server assembled from the profile's per-node resources."""

    def __init__(self, env: Environment, profile: HardwareProfile, name: str):
        self.env = env
        self.profile = profile
        self.name = name
        self.cpu = Cpu(env, cores=profile.cores_per_node, name=f"{name}.cpu")
        self.disks = DiskArray(
            env,
            spindles=profile.data_disks_per_node,
            per_disk_bandwidth=profile.disk_seq_bandwidth,
            seek_time=profile.disk_seek_time,
            name=f"{name}.disks",
        )
        self.nic = NetworkLink(
            env,
            bandwidth=profile.network_bandwidth,
            latency=profile.network_latency,
            name=f"{name}.nic",
        )
        self.memory = profile.memory_per_node

    def __repr__(self) -> str:
        return f"Node({self.name!r})"


class Cluster:
    """A set of nodes behind one non-blocking switch (HP Procurve in §3.1).

    The switch is modelled as non-blocking — each node's NIC is the limiting
    network resource — which matches a 48-port 1 GbE switch serving 16 nodes.
    """

    def __init__(self, env: Environment, profile: HardwareProfile, name: str = "cluster"):
        self.env = env
        self.profile = profile
        self.name = name
        self.nodes = [Node(env, profile, name=f"{name}.n{i}") for i in range(profile.nodes)]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __getitem__(self, index: int) -> Node:
        return self.nodes[index]

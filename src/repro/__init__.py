"""Reproduction of "Can the Elephants Handle the NoSQL Onslaught?" (VLDB 2012).

The package rebuilds both halves of the paper's evaluation in Python:

* **DSS**: TPC-H on a Hive-on-Hadoop model vs a SQL Server PDW model, backed
  by a real dbgen port and a shared relational execution kernel
  (:class:`repro.core.DssStudy` -- Tables 2-5, Figure 1);
* **OLTP**: YCSB on MongoDB (auto- and client-sharded) vs client-sharded SQL
  Server, backed by real storage engines and a closed-loop queueing model
  (:class:`repro.core.OltpStudy` -- Figures 2-6, load times).

Quick start::

    from repro.core import DssStudy, OltpStudy, render_table3

    dss = DssStudy()
    print(render_table3(dss.table3()))

    oltp = OltpStudy()
    print(oltp.peak_throughput("sql-cs", "C"))
"""

from repro.core import DssStudy, OltpStudy

__version__ = "1.0.0"

__all__ = ["DssStudy", "OltpStudy", "__version__"]

"""The ``mongod`` storage process: collections, B-tree index, global lock.

The functional layer stores real BSON-encoded documents indexed by ``_id``.
The concurrency behaviour the paper blames for workload A — MongoDB 1.8's
**per-process global write lock** ("a write operation can block all other
operations") — is modelled by :class:`GlobalLock`, whose acquisition counters
feed both the tests and the performance layer (the paper measured 25-45% of
time spent in this lock under workload A via mongostat).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.btree import BTree
from repro.common.errors import ServerCrashed, StorageError
from repro.docstore import bson


@dataclass
class GlobalLock:
    """MongoDB 1.8 semantics: many readers OR one writer, process-wide."""

    readers: int = 0
    writer_held: bool = False
    read_acquisitions: int = 0
    write_acquisitions: int = 0
    write_blocked_reads: int = 0

    def acquire_read(self) -> None:
        if self.writer_held:
            # In the real server the reader would block; the functional layer
            # is single-threaded so this only happens on re-entrant misuse.
            self.write_blocked_reads += 1
            raise StorageError("global lock held by a writer")
        self.readers += 1
        self.read_acquisitions += 1

    def release_read(self) -> None:
        if self.readers <= 0:
            raise StorageError("release_read without acquire")
        self.readers -= 1

    def acquire_write(self) -> None:
        if self.writer_held or self.readers:
            raise StorageError("global lock busy")
        self.writer_held = True
        self.write_acquisitions += 1

    def release_write(self) -> None:
        if not self.writer_held:
            raise StorageError("release_write without acquire")
        self.writer_held = False


class Collection:
    """Documents in insertion-independent ``_id`` order with a B-tree index."""

    def __init__(self, name: str):
        self.name = name
        self._index = BTree()
        self.bytes_stored = 0

    def __len__(self) -> int:
        return len(self._index)

    def insert(self, document: dict) -> None:
        if "_id" not in document:
            raise StorageError("document needs an _id")
        data = bson.encode(document)
        if not self._index.insert(document["_id"], data):
            raise StorageError(f"duplicate _id {document['_id']!r}")
        self.bytes_stored += len(data)

    def find_one(self, key):
        data = self._index.get(key)
        return bson.decode(data) if data is not None else None

    def update_field(self, key, fieldname: str, value) -> bool:
        data = self._index.get(key)
        if data is None:
            return False
        document = bson.decode(data)
        self.bytes_stored -= len(data)
        document[fieldname] = value
        new_data = bson.encode(document)
        self._index.insert(key, new_data)
        self.bytes_stored += len(new_data)
        return True

    def scan(self, start_key, count: int) -> list[dict]:
        return [bson.decode(d) for _, d in self._index.range_scan(start_key, count)]

    def remove(self, key) -> bool:
        data = self._index.get(key)
        if data is None:
            return False
        self._index.delete(key)
        self.bytes_stored -= len(data)
        return True

    def key_range(self):
        if len(self._index) == 0:
            return None
        return self._index.min_key(), self._index.max_key()

    def keys_in_range(self, low, high) -> list:
        """All keys in [low, high) — used when migrating a chunk off a shard."""
        out = []
        for key, _ in self._index.items():
            if key >= high:
                break
            if key >= low:
                out.append(key)
        return out


class Mongod:
    """One mongod process: named collections guarded by one global lock.

    ``tracer``/``metrics`` (see :mod:`repro.obs`) record every global-lock
    hold as a span on a **logical clock** (the per-process op counter): op
    ``n`` holds the lock over ``[n, n+1)``.  A ``sampler`` additionally
    accumulates the *write*-hold fraction on the same clock — the
    per-process series mongostat's lock%% column summarizes.  All default
    to off.
    """

    def __init__(self, name: str, tracer=None, metrics=None, sampler=None):
        self.name = name
        self.lock = GlobalLock()
        self._collections: dict[str, Collection] = {}
        self.ops = 0
        self.alive = True
        self.tracer = tracer
        self.metrics = metrics
        self.sampler = sampler
        self._last_hold_span = None

    def _record_hold(self, mode: str) -> None:
        """One global-lock hold just completed as op ``self.ops - 1``."""
        if self.tracer:
            span = self.tracer.add(
                f"lock.{mode}.hold", float(self.ops - 1), float(self.ops),
                cat="lock", node=self.name, lane="global-lock", mode=mode,
            )
            # The global lock serializes every op: each hold is handed the
            # lock by the previous one — the causal chain the critical-path
            # layer walks.
            if self._last_hold_span is not None:
                self.tracer.link(self._last_hold_span, span, "lock-handoff")
            self._last_hold_span = span
        if self.metrics:
            self.metrics.counter(f"docstore.lock.{mode}_holds").inc()
        if self.sampler and mode == "write":
            self.sampler.accumulate(
                self.name, "global-lock", float(self.ops - 1), float(self.ops)
            )

    def kill(self) -> None:
        """Fault injection: the process stops answering (socket exceptions)."""
        self.alive = False

    def restart(self) -> None:
        self.alive = True

    def _check_alive(self) -> None:
        if not self.alive:
            raise ServerCrashed(f"{self.name} is down")

    def collection(self, name: str) -> Collection:
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    # Each operation takes the global lock in the required mode — reads share,
    # writes exclude everything (the 1.8 behaviour).

    def insert(self, collection: str, document: dict) -> None:
        self._check_alive()
        self.lock.acquire_write()
        try:
            self.ops += 1
            self._record_hold("write")
            self.collection(collection).insert(document)
        finally:
            self.lock.release_write()

    def find_one(self, collection: str, key):
        self._check_alive()
        self.lock.acquire_read()
        try:
            self.ops += 1
            self._record_hold("read")
            return self.collection(collection).find_one(key)
        finally:
            self.lock.release_read()

    def update(self, collection: str, key, fieldname: str, value) -> bool:
        self._check_alive()
        self.lock.acquire_write()
        try:
            self.ops += 1
            self._record_hold("write")
            return self.collection(collection).update_field(key, fieldname, value)
        finally:
            self.lock.release_write()

    def scan(self, collection: str, start_key, count: int) -> list[dict]:
        self._check_alive()
        self.lock.acquire_read()
        try:
            self.ops += 1
            self._record_hold("read")
            return self.collection(collection).scan(start_key, count)
        finally:
            self.lock.release_read()

    def remove(self, collection: str, key) -> bool:
        self._check_alive()
        self.lock.acquire_write()
        try:
            self.ops += 1
            self._record_hold("write")
            return self.collection(collection).remove(key)
        finally:
            self.lock.release_write()

    @property
    def bytes_stored(self) -> int:
        return sum(c.bytes_stored for c in self._collections.values())

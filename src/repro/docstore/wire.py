"""The MongoDB wire protocol (the 1.8-era subset): binary message framing.

mongos and mongod speak a simple length-prefixed binary protocol; the
paper's clients (the YCSB MongoDB driver) produced OP_INSERT, OP_QUERY,
OP_UPDATE messages and consumed OP_REPLY.  This module implements real
encoding/decoding of those frames over the BSON codec, plus a
:class:`WireServer` that dispatches decoded messages to a mongod — so the
functional stack is exercised end-to-end at the protocol level.

Message layout (little-endian int32s)::

    header:  messageLength, requestID, responseTo, opCode
    OP_INSERT (2002):  flags, cstring collection, BSON document
    OP_QUERY  (2004):  flags, cstring collection, skip, nToReturn, BSON query
    OP_UPDATE (2001):  0, cstring collection, flags, BSON selector, BSON update
    OP_REPLY  (1):     flags, cursorId(int64), startingFrom, numberReturned,
                       BSON documents
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.common.errors import StorageError
from repro.docstore import bson

OP_REPLY = 1
OP_UPDATE = 2001
OP_INSERT = 2002
OP_QUERY = 2004

_HEADER = struct.Struct("<iiii")


@dataclass(frozen=True)
class MessageHeader:
    length: int
    request_id: int
    response_to: int
    op_code: int


def _cstring(text: str) -> bytes:
    return text.encode("utf-8") + b"\x00"


def _read_cstring(data: bytes, pos: int) -> tuple[str, int]:
    end = data.index(b"\x00", pos)
    return data[pos:end].decode("utf-8"), end + 1


def _frame(request_id: int, response_to: int, op_code: int, body: bytes) -> bytes:
    return _HEADER.pack(16 + len(body), request_id, response_to, op_code) + body


def parse_header(data: bytes) -> MessageHeader:
    if len(data) < 16:
        raise StorageError("wire message shorter than its header")
    length, request_id, response_to, op_code = _HEADER.unpack_from(data, 0)
    if length != len(data):
        raise StorageError(f"frame length {length} != buffer {len(data)}")
    return MessageHeader(length, request_id, response_to, op_code)


# -- encoders -------------------------------------------------------------------------


def encode_insert(request_id: int, collection: str, document: dict) -> bytes:
    body = struct.pack("<i", 0) + _cstring(collection) + bson.encode(document)
    return _frame(request_id, 0, OP_INSERT, body)


def encode_query(request_id: int, collection: str, query: dict,
                 n_to_return: int = 1, skip: int = 0) -> bytes:
    body = (
        struct.pack("<i", 0)
        + _cstring(collection)
        + struct.pack("<ii", skip, n_to_return)
        + bson.encode(query)
    )
    return _frame(request_id, 0, OP_QUERY, body)


def encode_update(request_id: int, collection: str, selector: dict,
                  update: dict) -> bytes:
    body = (
        struct.pack("<i", 0)
        + _cstring(collection)
        + struct.pack("<i", 0)
        + bson.encode(selector)
        + bson.encode(update)
    )
    return _frame(request_id, 0, OP_UPDATE, body)


def encode_reply(response_to: int, documents: list[dict],
                 request_id: int = 0) -> bytes:
    body = struct.pack("<iqii", 0, 0, 0, len(documents))
    for doc in documents:
        body += bson.encode(doc)
    return _frame(request_id, response_to, OP_REPLY, body)


# -- decoders -------------------------------------------------------------------------


def _read_bson(data: bytes, pos: int) -> tuple[dict, int]:
    (doc_len,) = struct.unpack_from("<i", data, pos)
    return bson.decode(data[pos : pos + doc_len]), pos + doc_len


def decode_message(data: bytes) -> tuple[MessageHeader, dict]:
    """Parse any supported frame; returns (header, payload dict)."""
    header = parse_header(data)
    pos = 16
    if header.op_code == OP_INSERT:
        pos += 4  # flags
        collection, pos = _read_cstring(data, pos)
        document, pos = _read_bson(data, pos)
        return header, {"collection": collection, "document": document}
    if header.op_code == OP_QUERY:
        pos += 4
        collection, pos = _read_cstring(data, pos)
        skip, n_to_return = struct.unpack_from("<ii", data, pos)
        pos += 8
        query, pos = _read_bson(data, pos)
        return header, {
            "collection": collection, "query": query,
            "skip": skip, "n_to_return": n_to_return,
        }
    if header.op_code == OP_UPDATE:
        pos += 4
        collection, pos = _read_cstring(data, pos)
        pos += 4  # flags
        selector, pos = _read_bson(data, pos)
        update, pos = _read_bson(data, pos)
        return header, {
            "collection": collection, "selector": selector, "update": update,
        }
    if header.op_code == OP_REPLY:
        flags, cursor, starting, count = struct.unpack_from("<iqii", data, pos)
        pos += 20
        documents = []
        for _ in range(count):
            doc, pos = _read_bson(data, pos)
            documents.append(doc)
        return header, {"documents": documents}
    raise StorageError(f"unsupported opCode {header.op_code}")


class WireServer:
    """Dispatches decoded wire messages to a mongod process."""

    def __init__(self, mongod):
        self.mongod = mongod
        self._next_reply_id = 1
        self.messages_handled = 0

    def handle(self, frame: bytes) -> bytes | None:
        """Process one frame; queries return an OP_REPLY frame."""
        header, payload = decode_message(frame)
        self.messages_handled += 1
        if header.op_code == OP_INSERT:
            self.mongod.insert(payload["collection"], payload["document"])
            return None  # fire-and-forget (safe mode issues getLastError)
        if header.op_code == OP_UPDATE:
            selector = payload["selector"]
            update = payload["update"]
            if "$set" not in update or "_id" not in selector:
                raise StorageError("only {$set: {field: v}} by _id is supported")
            ((fieldname, value),) = update["$set"].items()
            self.mongod.update(payload["collection"], selector["_id"],
                               fieldname, value)
            return None
        if header.op_code == OP_QUERY:
            reply_id = self._next_reply_id
            self._next_reply_id += 1
            if payload["collection"].endswith("$cmd"):
                return self._handle_command(header, payload, reply_id)
            key = payload["query"].get("_id")
            document = self.mongod.find_one(payload["collection"], key)
            documents = [document] if document is not None else []
            return encode_reply(header.request_id, documents, request_id=reply_id)
        raise StorageError(f"server cannot handle opCode {header.op_code}")

    def _handle_command(self, header, payload, reply_id: int) -> bytes:
        """Database commands.  The paper's "safe mode" means every write is
        followed by a getLastError query; the reply is the acknowledgement
        (which does NOT imply the data reached disk — see §3.4.1)."""
        command = payload["query"]
        if "getlasterror" in command or "getLastError" in command:
            status = {"ok": 1, "err": None, "n": 0}
            return encode_reply(header.request_id, [status], request_id=reply_id)
        raise StorageError(f"unsupported command {sorted(command)}")

"""Consistent-hash ring for elastic Mongo-CS / SQL-CS sharding.

The paper's client-sharded deployments route with ``crc32(key) % N``
(:func:`repro.docstore.cluster.hash_shard`), which reshuffles nearly every
key when ``N`` changes — the worst possible substrate for live resharding.
This module supplies the standard fix: each shard owns ``vnodes`` points on
a 2^32 ring, a key belongs to the first point at or after its hash, and
adding or removing one shard only moves the keys on the arcs that changed
hands (expected ``1/N`` of the data).

Rings are immutable; :meth:`HashRing.with_nodes` derives the resized ring so
a migration planner can diff old vs new ownership key by key
(:func:`moved_keys`).  Everything is pure ``crc32`` arithmetic — same ring
for the same node set on every platform, which the byte-deterministic
reshard reports rely on.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.common.errors import ShardingError

RING_SPACE = 1 << 32

#: Virtual nodes per shard.  64 keeps ownership shares within a few percent
#: of uniform while the ring stays small enough to rebuild on every resize.
DEFAULT_VNODES = 64


def vnode_point(node: int, replica: int) -> int:
    """Ring position of one virtual node (pure crc32, platform-stable)."""
    return zlib.crc32(f"vnode-{node}-{replica}".encode("utf-8")) % RING_SPACE


class HashRing:
    """Immutable consistent-hash ring mapping keys to shard indices."""

    def __init__(self, nodes: Iterable[int], vnodes: int = DEFAULT_VNODES):
        self.nodes: Tuple[int, ...] = tuple(sorted(set(nodes)))
        if not self.nodes:
            raise ShardingError("a hash ring needs at least one node")
        if vnodes < 1:
            raise ShardingError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for node in self.nodes:
            for replica in range(vnodes):
                points.append((vnode_point(node, replica), node))
        # Ties on a ring point are broken by node index, deterministically.
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [n for _, n in points]

    def node_for(self, key: str) -> int:
        """The shard index owning ``key``."""
        return self.owner_of_hash(zlib.crc32(key.encode("utf-8")) % RING_SPACE)

    def owner_of_hash(self, h: int) -> int:
        """The shard index owning a raw ring position.

        Exposed (beyond :meth:`node_for`) for migration planning: feeding a
        *new* node's vnode points through the *old* ring yields exactly the
        set of shards that must hand arcs to that node, with no key
        inventory — the geometric basis of storage-free handoff planning.
        """
        idx = bisect.bisect_left(self._hashes, h % RING_SPACE)
        if idx == len(self._hashes):
            idx = 0  # wrap past the highest point to the first
        return self._owners[idx]

    def with_nodes(self, nodes: Iterable[int]) -> "HashRing":
        """A new ring over ``nodes`` with the same vnode count."""
        return HashRing(nodes, vnodes=self.vnodes)

    def shares(self) -> Dict[int, float]:
        """Fraction of the ring each node owns (sums to 1.0)."""
        arcs: Dict[int, int] = {n: 0 for n in self.nodes}
        count = len(self._hashes)
        for i, h in enumerate(self._hashes):
            prev = self._hashes[i - 1] if i else self._hashes[-1] - RING_SPACE
            arcs[self._owners[i]] += h - prev
        if count == 0:
            return {}
        return {n: arc / RING_SPACE for n, arc in arcs.items()}

    def __contains__(self, node: int) -> bool:
        return node in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)


def moved_keys(keys: Sequence[str], old: HashRing,
               new: HashRing) -> Dict[Tuple[int, int], List[str]]:
    """Keys whose owner changes between rings, grouped ``(source, dest)``.

    The grouping is the unit of migration: each ``(source, dest)`` pair
    becomes one throttled key-range handoff.  Keys are kept in input order
    so callers iterating a sorted keyspace get deterministic batches.
    """
    groups: Dict[Tuple[int, int], List[str]] = {}
    for key in keys:
        src = old.node_for(key)
        dst = new.node_for(key)
        if src != dst:
            groups.setdefault((src, dst), []).append(key)
    return groups

"""MongoDB's write-ahead journal, with its 100 ms durability window.

Section 3.4.1: "The version of MongoDB that we used supports durability via
write-ahead journaling.  The journal is flushed to disk every 100 ms.  This
100 ms delay means that the redo log by itself does not fully support
durability, unless a commit acknowledgement is provided.  For our
experiments, we elected to run MongoDB without logging."

This module implements that journal functionally so the difference from SQL
Server's force-at-commit WAL is *demonstrable*: a write acknowledged in safe
mode (without a journal ack) can be lost if the process dies inside the
flush interval, while SQL Server's committed writes never are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import StorageError

FLUSH_INTERVAL = 0.1  # seconds (the 100 ms the paper quotes)


class JournalOp(Enum):
    INSERT = "insert"
    UPDATE = "update"
    REMOVE = "remove"


@dataclass(frozen=True)
class JournalEntry:
    sequence: int
    timestamp: float  # virtual time the write happened
    op: JournalOp
    collection: str
    key: str
    document: bytes | None = None  # BSON after-image (None for removes)


@dataclass
class Journal:
    """An append-only journal flushed on a 100 ms group cycle.

    ``now`` is a virtual clock the caller advances; ``append`` buffers an
    entry, ``maybe_flush``/``flush`` make buffered entries durable.  After a
    simulated crash, only entries with ``sequence <= durable_sequence``
    survive.
    """

    flush_interval: float = FLUSH_INTERVAL
    entries: list[JournalEntry] = field(default_factory=list)
    durable_sequence: int = 0
    flushes: int = 0
    _next_sequence: int = 1
    _last_flush_time: float = 0.0

    def append(self, now: float, op: JournalOp, collection: str, key: str,
               document: bytes | None = None) -> JournalEntry:
        if now < self._last_flush_time:
            raise StorageError("journal clock went backwards")
        entry = JournalEntry(self._next_sequence, now, op, collection, key, document)
        self._next_sequence += 1
        self.entries.append(entry)
        return entry

    def maybe_flush(self, now: float) -> bool:
        """Flush if the 100 ms interval elapsed; returns True if it did."""
        if now - self._last_flush_time >= self.flush_interval:
            self.flush(now)
            return True
        return False

    def flush(self, now: float) -> None:
        self._last_flush_time = now
        if self.entries:
            self.durable_sequence = self.entries[-1].sequence
        self.flushes += 1

    @property
    def next_flush_time(self) -> float:
        """When the next group flush is due on the journal's own cycle."""
        return self._last_flush_time + self.flush_interval

    # -- crash behaviour ---------------------------------------------------------

    def crash(self) -> None:
        """The process dies: acknowledged-but-unflushed entries are gone.

        What remains is exactly the durable prefix — the on-disk journal a
        restart recovers from.  Sequence numbering continues after the
        discarded tail so replayed histories stay monotonic.
        """
        self.entries = self.surviving_entries()

    def surviving_entries(self) -> list[JournalEntry]:
        """What a restart can recover: entries flushed before the crash."""
        return [e for e in self.entries if e.sequence <= self.durable_sequence]

    def lost_entries(self) -> list[JournalEntry]:
        """Acknowledged-but-unflushed writes — the paper's durability gap."""
        return [e for e in self.entries if e.sequence > self.durable_sequence]

    @property
    def max_loss_window(self) -> float:
        """Worst-case seconds of acknowledged writes a crash can lose."""
        return self.flush_interval

    def replay(self) -> dict[tuple[str, str], bytes | None]:
        """Redo the surviving entries: final after-image per (collection, key)."""
        images: dict[tuple[str, str], bytes | None] = {}
        for entry in self.surviving_entries():
            if entry.op is JournalOp.REMOVE:
                images[(entry.collection, entry.key)] = None
            else:
                images[(entry.collection, entry.key)] = entry.document
        return images


class JournaledMongod:
    """A mongod wrapper that journals every write against a virtual clock.

    Reads pass through; writes append to the journal before applying (write
    ahead), and the journal flushes on its own 100 ms cycle — acknowledging
    the client *before* the flush, exactly the safe-mode-without-journal-ack
    behaviour the paper benchmarked.
    """

    def __init__(self, mongod, journal: Journal | None = None):
        self.mongod = mongod
        self.journal = journal or Journal()
        self.clock = 0.0

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise StorageError("cannot rewind the clock")
        self.clock += seconds
        self.journal.maybe_flush(self.clock)

    def insert(self, collection: str, document: dict) -> None:
        from repro.docstore import bson

        self.journal.append(
            self.clock, JournalOp.INSERT, collection, document["_id"],
            bson.encode(document),
        )
        self.mongod.insert(collection, document)

    def update(self, collection: str, key, fieldname: str, value) -> bool:
        from repro.docstore import bson

        # Write-ahead: the intended after-image goes to the journal *before*
        # mongod mutates the document, so a crash between the two steps can
        # only ever lose the un-journaled application (which redo replays),
        # never an applied-but-unjournaled write.
        before = self.mongod.find_one(collection, key)
        if before is None:
            return False
        after = dict(before)
        after[fieldname] = value
        self.journal.append(
            self.clock, JournalOp.UPDATE, collection, key, bson.encode(after)
        )
        ok = self.mongod.update(collection, key, fieldname, value)
        if not ok:
            raise StorageError(
                f"{collection}/{key!r} vanished between journal append and apply"
            )
        return ok

    def remove(self, collection: str, key) -> bool:
        """Journal a tombstone (write-ahead), then remove from mongod."""
        if self.mongod.find_one(collection, key) is None:
            return False
        self.journal.append(self.clock, JournalOp.REMOVE, collection, key)
        ok = self.mongod.remove(collection, key)
        if not ok:
            raise StorageError(
                f"{collection}/{key!r} vanished between journal append and apply"
            )
        return ok

    def find_one(self, collection: str, key):
        return self.mongod.find_one(collection, key)

    def crash_and_recover(self):
        """Kill the process; rebuild a fresh mongod from the journal alone."""
        from repro.docstore import bson
        from repro.docstore.mongod import Mongod

        recovered = Mongod(f"{self.mongod.name}.recovered")
        for (collection, key), image in self.journal.replay().items():
            if image is not None:
                recovered.insert(collection, bson.decode(image))
        return recovered

"""A real BSON codec (the subset MongoDB 1.8 uses for YCSB documents).

Implements the binary element types the reproduction stores: double (0x01),
UTF-8 string (0x02), embedded document (0x03), boolean (0x08), null (0x0A),
int32 (0x10), and int64 (0x12).  Round-trip fidelity is tested against the
YCSB record shape (a 24-byte key plus ten 100-byte string fields).
"""

from __future__ import annotations

import struct

from repro.common.errors import StorageError

_INT32_MIN, _INT32_MAX = -(2**31), 2**31 - 1


def _encode_element(name: str, value) -> bytes:
    cname = name.encode("utf-8") + b"\x00"
    if value is None:
        return b"\x0a" + cname
    if isinstance(value, bool):
        return b"\x08" + cname + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        if _INT32_MIN <= value <= _INT32_MAX:
            return b"\x10" + cname + struct.pack("<i", value)
        return b"\x12" + cname + struct.pack("<q", value)
    if isinstance(value, float):
        return b"\x01" + cname + struct.pack("<d", value)
    if isinstance(value, str):
        raw = value.encode("utf-8") + b"\x00"
        return b"\x02" + cname + struct.pack("<i", len(raw)) + raw
    if isinstance(value, dict):
        return b"\x03" + cname + encode(value)
    raise StorageError(f"cannot BSON-encode {type(value).__name__}")


def encode(document: dict) -> bytes:
    """Serialize a document to BSON bytes."""
    body = b"".join(_encode_element(str(k), v) for k, v in document.items())
    # Total length (4 bytes) + body + trailing NUL.
    return struct.pack("<i", len(body) + 5) + body + b"\x00"


def _read_cstring(data: bytes, pos: int) -> tuple[str, int]:
    end = data.index(b"\x00", pos)
    return data[pos:end].decode("utf-8"), end + 1


def decode(data: bytes) -> dict:
    """Parse BSON bytes back into a document."""
    if len(data) < 5:
        raise StorageError("BSON document too short")
    (length,) = struct.unpack_from("<i", data, 0)
    if length != len(data):
        raise StorageError(f"BSON length {length} != buffer {len(data)}")
    if data[-1] != 0:
        raise StorageError("BSON document missing trailing NUL")

    document: dict = {}
    pos = 4
    while pos < length - 1:
        kind = data[pos]
        pos += 1
        name, pos = _read_cstring(data, pos)
        if kind == 0x0A:
            document[name] = None
        elif kind == 0x08:
            document[name] = data[pos] == 1
            pos += 1
        elif kind == 0x10:
            (document[name],) = struct.unpack_from("<i", data, pos)
            pos += 4
        elif kind == 0x12:
            (document[name],) = struct.unpack_from("<q", data, pos)
            pos += 8
        elif kind == 0x01:
            (document[name],) = struct.unpack_from("<d", data, pos)
            pos += 8
        elif kind == 0x02:
            (slen,) = struct.unpack_from("<i", data, pos)
            pos += 4
            document[name] = data[pos : pos + slen - 1].decode("utf-8")
            pos += slen
        elif kind == 0x03:
            (dlen,) = struct.unpack_from("<i", data, pos)
            document[name] = decode(data[pos : pos + dlen])
            pos += dlen
        else:
            raise StorageError(f"unsupported BSON element type 0x{kind:02x}")
    return document


def encoded_size(document: dict) -> int:
    """Size of the document's BSON form (the stored record footprint)."""
    return len(encode(document))

"""The two MongoDB deployments the paper benchmarks.

* :class:`MongoAsCluster` — the stock deployment: 128 mongod shards behind
  mongos routers, a config server holding range-partitioned chunks, auto
  split, and a balancer.  Range partitioning is what wins workload E (a
  short scan touches one chunk) and what melts down on appends (every new
  key lands in the last chunk — one hot shard).
* :class:`MongoCsCluster` — the authors' client-side variant: the same
  mongod processes, but the client hash-routes keys itself; no mongos, no
  config server, no balancer, and scans must broadcast to every shard.

Both clusters optionally support **live elastic resharding** (PR 8): attach
a :class:`~repro.docstore.reshard.MigrationEngine` and call
``scale_to``/``drain_shard`` mid-run.  Mongo-AS hands off range chunks;
Mongo-CS (constructed with ``elastic=True``) hands off consistent-hash-ring
arcs — the range-vs-hash elasticity comparison the reshard report measures.
Without an engine attached nothing changes: routing, placement, and every
counter behave exactly as before.
"""

from __future__ import annotations

import zlib

from repro.common.errors import (
    ChunkMoving,
    ConfigurationError,
    ServerCrashed,
    ShardUnavailable,
    ShardingError,
    StaleConfigError,
)
from repro.docstore.chunks import (
    Balancer,
    Chunk,
    ConfigServer,
    MongosRouter,
    migrate_chunk,
)
from repro.docstore.mongod import Mongod
from repro.docstore.reshard import Migration, MigrationEngine
from repro.docstore.ring import HashRing, vnode_point

DEFAULT_COLLECTION = "usertable"

_KEY_MAX = "￿"  # sorts after every YCSB key


def hash_shard(key: str, shard_count: int) -> int:
    """Deterministic client-side hash routing (crc32, stable across runs)."""
    return zlib.crc32(key.encode("utf-8")) % shard_count


class _ElasticMixin:
    """Shared live-resharding plumbing: engine hooks, IO accounting, retired
    shards, and deferred stray cleanup.  Inert until an engine is attached."""

    def _init_elastic(self, seed: int = 0) -> None:
        self._seed = seed
        self._engine: MigrationEngine | None = None
        self._retired: set[int] = set()
        self._pending_cleanup: list = []
        self._pending_io = 0.0
        self._now = 0.0

    @property
    def reshard_engine(self) -> MigrationEngine | None:
        return self._engine

    @property
    def retired_shards(self) -> set[int]:
        return set(self._retired)

    def _require_engine(self) -> MigrationEngine:
        if self._engine is None:
            raise ConfigurationError(
                "live resharding requires a migration engine "
                "(run with --reshard, or call attach_reshard())"
            )
        return self._engine

    def _guard_moving(self, key: str) -> None:
        if self._engine is None:
            return
        frozen = self._engine.frozen_shard(key, self._now)
        if frozen is not None:
            raise ChunkMoving(
                f"key {key!r} is inside a migration commit window",
                shard=frozen,
            )

    def _charge_io(self, shard: int) -> None:
        if self._engine is not None:
            self._pending_io += self._engine.op_cost(shard, self._now)

    def _note_write(self, key: str) -> None:
        if self._engine is not None:
            self._engine.note_write(key)

    def consume_io_wait(self) -> float:
        """Disk-queueing + utilization latency owed by the ops since the
        last call (zero unless a migration engine is attached)."""
        owed, self._pending_io = self._pending_io, 0.0
        return owed

    def _advance_elastic(self, now: float) -> None:
        self._now = max(self._now, now)
        if self._engine is not None:
            self._engine.advance(self._now)
            self._retry_cleanup()

    def _retry_cleanup(self) -> None:
        """Delete migrated-away strays once their shard is reachable again.

        Source-side deletes always run *after* the ownership flip, so a
        crash can only ever leave extra copies that routing no longer sees —
        never lose the authoritative one."""
        if not self._pending_cleanup:
            return
        remaining = []
        for shard_index, collection, keys in self._pending_cleanup:
            try:
                for key in keys:
                    self.shards[shard_index].remove(collection, key)
            except ServerCrashed:
                remaining.append((shard_index, collection, keys))
        self._pending_cleanup = remaining

    def _drain_backfill_noise(self, *shard_indices: int) -> None:
        """Migration traffic must not leak into client-facing replication
        bookkeeping: absorb ack delays and last-write records the engine's
        copies produced on replica-set shards."""
        if getattr(self, "replication", None) is None:
            return
        for index in shard_indices:
            shard = self.shards[index]
            shard.consume_ack_delay()
            while shard.take_last_write() is not None:
                pass


class MongoAsCluster(_ElasticMixin):
    """Auto-sharded MongoDB: chunks + mongos routing + balancer."""

    def __init__(
        self,
        shard_count: int = 128,
        max_chunk_docs: int = 2000,
        balancer_threshold: int = 8,
        collection: str = DEFAULT_COLLECTION,
        mongos_count: int = 8,
        tracer=None,
        metrics=None,
        sampler=None,
        replication=None,
        seed: int = 0,
    ):
        if shard_count < 1:
            raise ShardingError("need at least one shard")
        if mongos_count < 1:
            raise ShardingError("need at least one mongos")
        self.tracer = tracer
        self.metrics = metrics
        self.sampler = sampler
        self.replication = replication
        if replication is None:
            # Paper-faithful (§3.4.1): bare mongods, no failover.
            self.shards = [
                Mongod(f"mongod-{i}", tracer=tracer, metrics=metrics,
                       sampler=sampler)
                for i in range(shard_count)
            ]
        else:
            self.shards = [
                replication.build_shard(f"rs-{i}", seed=seed, tracer=tracer)
                for i in range(shard_count)
            ]
        self.config = ConfigServer()
        self.config.bootstrap(shard=0)
        self.balancer = Balancer(threshold=balancer_threshold)
        self.max_chunk_docs = max_chunk_docs
        self.collection = collection
        self.routed_ops = 0  # mongos request counter
        # One mongos per client node (the paper ran 8, §3.2.3); clients
        # round-robin across them and each keeps its own chunk-table cache.
        self.routers = [
            MongosRouter(self.config, f"mongos-{i}") for i in range(mongos_count)
        ]
        self._next_router = 0
        self._init_elastic(seed=seed)

    def _router(self) -> MongosRouter:
        router = self.routers[self._next_router]
        self._next_router = (self._next_router + 1) % len(self.routers)
        return router

    @property
    def stale_routes(self) -> int:
        """Metadata refreshes forced by splits/migrations, across all mongos."""
        return sum(r.stale_routes for r in self.routers)

    # -- live resharding ---------------------------------------------------------

    def attach_reshard(self, throttle: float = 1.0,
                       offered_load: float = 0.7) -> MigrationEngine:
        """Create and wire the engine that executes chunk handoffs live."""
        self._engine = MigrationEngine(
            self._shard_share, len(self.shards), throttle=throttle,
            offered_load=offered_load, tracer=self.tracer,
            metrics=self.metrics,
        )
        return self._engine

    def _shard_share(self, shard: int) -> float:
        """This shard's fraction of the data — range sharding follows the
        *document* distribution, so a hot chunk means a hot shard."""
        total = 0
        mine = 0
        for chunk in self.config.chunks:
            total += chunk.doc_count
            if chunk.shard == shard:
                mine += chunk.doc_count
        if total <= 0:
            active = len(self.shards) - len(self._retired)
            return 1.0 / max(1, active)
        return mine / total

    def scale_to(self, count: int, now: float = 0.0) -> int:
        """Grow to ``count`` total shards; chunks migrate to even the spread.

        Returns the number of chunk migrations queued.  The new shards start
        empty and cold — data only arrives through the throttled engine, so
        the capacity gain phases in as commits land.
        """
        self._require_engine()
        if count <= len(self.shards):
            raise ShardingError(
                f"scale target {count} does not grow the {len(self.shards)}-"
                f"shard cluster; use drain_shard to scale down"
            )
        for i in range(len(self.shards), count):
            if self.replication is None:
                self.shards.append(
                    Mongod(f"mongod-{i}", tracer=self.tracer,
                           metrics=self.metrics, sampler=self.sampler))
            else:
                self.shards.append(self.replication.build_shard(
                    f"rs-{i}", seed=self._seed, tracer=self.tracer))
        return self._plan_even_spread(now)

    def drain_shard(self, index: int, now: float = 0.0) -> int:
        """Evacuate and retire one shard; returns the migrations queued."""
        self._require_engine()
        if not 0 <= index < len(self.shards):
            raise ShardingError(f"no shard {index} to drain")
        if index in self._retired:
            raise ShardingError(f"shard {index} is already drained")
        if len(self.shards) - len(self._retired) < 2:
            raise ShardingError("cannot drain the last active shard")
        self._retired.add(index)
        survivors = [i for i in range(len(self.shards))
                     if i not in self._retired]
        counts = {i: 0 for i in survivors}
        for chunk in self.config.chunks:
            if chunk.shard in counts:
                counts[chunk.shard] += 1
        queued = 0
        for chunk in [c for c in self.config.chunks if c.shard == index]:
            target = min(counts, key=lambda i: (counts[i], i))
            counts[target] += 1
            self._submit_chunk_migration(chunk, target, now)
            queued += 1
        return queued

    def _plan_even_spread(self, now: float) -> int:
        active = [i for i in range(len(self.shards))
                  if i not in self._retired]
        counts = {i: 0 for i in active}
        by_shard: dict[int, list[Chunk]] = {i: [] for i in active}
        for chunk in self.config.chunks:
            counts.setdefault(chunk.shard, 0)
            counts[chunk.shard] += 1
            by_shard.setdefault(chunk.shard, []).append(chunk)
        queued = 0
        while True:
            source = max(active, key=lambda i: (counts[i], -i))
            target = min(active, key=lambda i: (counts[i], i))
            if counts[source] - counts[target] <= 1 or not by_shard[source]:
                break
            chunk = by_shard[source].pop(0)
            counts[source] -= 1
            counts[target] += 1
            self._submit_chunk_migration(chunk, target, now)
            queued += 1
        return queued

    def _submit_chunk_migration(self, chunk: Chunk, target: int,
                                now: float) -> None:
        label = f"chunk[{chunk.low or ''}..{chunk.high or '+inf'})@{chunk.shard}->{target}"
        self._engine.submit(Migration(
            source=chunk.shard, target=target, label=label,
            covers=chunk.contains,
            count_docs=lambda c=chunk: c.doc_count,
            commit=lambda c=chunk, t=target: self._commit_chunk(c, t),
        ), now)

    def _commit_chunk(self, chunk: Chunk, target: int) -> int:
        source = chunk.shard
        try:
            return migrate_chunk(
                self.config, chunk, self.shards, target, self.collection,
                tracer=None, metrics=None,  # the engine records spans/counters
                cleanup=self._pending_cleanup,
            )
        finally:
            self._drain_backfill_noise(source, target)

    # -- chunk maintenance -------------------------------------------------------

    def pre_split(self, boundaries: list[str]) -> None:
        """Pre-create empty chunks (the paper's load strategy, §3.4.2)."""
        self.config = ConfigServer()
        self.config.pre_split(boundaries, len(self.shards))
        self.routers = [
            MongosRouter(self.config, r.name) for r in self.routers
        ]

    def _maybe_split(self, chunk: Chunk) -> None:
        if chunk.doc_count <= self.max_chunk_docs:
            return
        if chunk.shard in self._retired:
            return  # the whole chunk is queued to leave; splitting races it
        if self._engine is not None and not self._engine.idle:
            probe = chunk.low if chunk.low is not None else ""
            if self._engine.is_migrating(probe):
                return  # a migrating chunk cannot split (mongos refuses too)
        shard = self.shards[chunk.shard]
        low = chunk.low if chunk.low is not None else ""
        keys = shard.collection(self.collection).keys_in_range(
            low, chunk.high if chunk.high is not None else _KEY_MAX
        )
        if len(keys) < 2:
            return
        median = keys[len(keys) // 2]
        if median == chunk.low or (chunk.low is None and median == ""):
            return
        self.config.split_chunk(chunk, median)

    def run_balancer(self) -> int:
        return self.balancer.rebalance(
            self.config, self.shards, self.collection,
            tracer=self.tracer, metrics=self.metrics,
            exclude=self._retired or None,
        )

    # -- mongos operations ----------------------------------------------------------

    def _on_shard(self, index: int, operation):
        """Run one mongod call; a dead process surfaces as the typed routing
        failure mongos reports (the shard is *unavailable*, not failing over —
        the paper's deployment had no replica sets)."""
        try:
            return operation()
        except ServerCrashed as exc:
            raise ShardUnavailable(
                f"shard {index} ({self.shards[index].name}) is unavailable: {exc}",
                shard=index,
            ) from exc

    def _route(self, key: str) -> Chunk:
        """Route through a mongos cache, then verify at the shard.

        The verification models the setShardVersion handshake: when the
        cached route and the config server disagree on the owner (the cache
        snapshot predates a migration commit), the shard bounces the request,
        the mongos refreshes once and retries; a second disagreement
        surfaces the typed :class:`StaleConfigError`.  Returns the
        *authoritative* chunk so callers' bookkeeping (doc counts, splits)
        lands on the config server's copy, not a cache snapshot.
        """
        router = self._router()
        cached = router.route(key)
        self._guard_moving(key)
        chunk = self.config.chunk_for(key)
        if cached.shard != chunk.shard:
            router.stale_routes += 1
            router.refresh()
            cached = router.route(key)
            if cached.shard != chunk.shard:
                raise StaleConfigError(
                    f"router {router.name} cannot converge on an owner "
                    f"for key {key!r}"
                )
        self._charge_io(chunk.shard)
        return chunk

    def insert(self, key: str, record: dict) -> None:
        self.routed_ops += 1
        chunk = self._route(key)
        self._on_shard(
            chunk.shard,
            lambda: self.shards[chunk.shard].insert(
                self.collection, {"_id": key, **record}
            ),
        )
        chunk.doc_count += 1
        self._note_write(key)
        self._maybe_split(chunk)

    def read(self, key: str) -> dict | None:
        self.routed_ops += 1
        chunk = self._route(key)
        document = self._on_shard(
            chunk.shard,
            lambda: self.shards[chunk.shard].find_one(self.collection, key),
        )
        if document is not None:
            document = {k: v for k, v in document.items() if k != "_id"}
        return document

    def update(self, key: str, fieldname: str, value: str) -> bool:
        self.routed_ops += 1
        chunk = self._route(key)
        changed = self._on_shard(
            chunk.shard,
            lambda: self.shards[chunk.shard].update(
                self.collection, key, fieldname, value
            ),
        )
        if changed:
            self._note_write(key)
        return changed

    def scan(self, start_key: str, count: int) -> list[dict]:
        """Range scan: visits chunks in key order, usually just one."""
        self.routed_ops += 1
        out: list[dict] = []
        for chunk in self.config.chunks_from(start_key):
            if len(out) >= count:
                break
            shard = self.shards[chunk.shard]
            low = start_key if chunk.contains(start_key) else (chunk.low or "")
            documents = self._on_shard(
                chunk.shard,
                lambda s=shard, lo=low: s.scan(
                    self.collection, lo, count - len(out)
                ),
            )
            for document in documents:
                if chunk.high is not None and document["_id"] >= chunk.high:
                    break
                out.append(document)
        return out[:count]

    def shards_touched_by_scan(self, start_key: str, count: int) -> int:
        """How many shards a scan fans out to (the workload E differentiator)."""
        touched = set()
        remaining = count
        for chunk in self.config.chunks_from(start_key):
            if remaining <= 0:
                break
            touched.add(chunk.shard)
            remaining -= max(1, chunk.doc_count)
        return max(1, len(touched))

    def kill_shard(self, index: int) -> None:
        """Fault injection: one mongod stops responding (no failover was
        configured in the paper's deployment — no replica sets).  With
        ``replication`` enabled the shard is a replica set and this kills
        its current *primary*, which is what triggers a failover."""
        self.shards[index].kill()

    def restart_shard(self, index: int) -> None:
        """The operator brings the dead mongod back (data intact on disk)."""
        self.shards[index].restart()

    @property
    def doc_count(self) -> int:
        return sum(
            len(s.collection(self.collection)) for s in self.shards
        )

    # -- replication surface (no-ops without --replication) ---------------------

    def tick(self, now: float) -> None:
        """Advance the virtual clock: migrations, then replica-set oplogs."""
        self._advance_elastic(now)
        if self.replication is not None:
            for shard in self.shards:
                shard.tick(now)

    def consume_ack_delay(self) -> float:
        """Write-concern latency owed by the most recent write, if any."""
        if self.replication is None:
            return 0.0
        return sum(s.consume_ack_delay() for s in self.shards)

    def take_last_write(self):
        """The acknowledged-write record of the most recent write, if any."""
        if self.replication is None:
            return None
        for shard in self.shards:
            write = shard.take_last_write()
            if write is not None:
                return write
        return None


class MongoCsCluster(_ElasticMixin):
    """Client-side hash-sharded MongoDB (the paper's Mongo-CS).

    ``elastic=True`` swaps the paper's mod-N routing for a consistent-hash
    ring with the *same* crc32 key hash, which is what makes live scaling
    possible: resizing mod-N reshuffles nearly every key, while the ring
    only hands off the arcs the new topology claims.  Placement differs
    from mod-N, so elastic mode is opt-in (reshard scenarios) and the
    default stays byte-identical to the paper's deployment.
    """

    def __init__(self, shard_count: int = 128, collection: str = DEFAULT_COLLECTION,
                 tracer=None, metrics=None, sampler=None,
                 replication=None, seed: int = 0, elastic: bool = False):
        if shard_count < 1:
            raise ShardingError("need at least one shard")
        self.tracer = tracer
        self.metrics = metrics
        self.sampler = sampler
        self.replication = replication
        if replication is None:
            self.shards = [
                Mongod(f"mongod-{i}", tracer=tracer, metrics=metrics,
                       sampler=sampler)
                for i in range(shard_count)
            ]
        else:
            # Client-side failover: the driver hash-routes to the replica
            # set and retries until the new primary is elected.
            self.shards = [
                replication.build_shard(f"rs-{i}", seed=seed, tracer=tracer)
                for i in range(shard_count)
            ]
        self.collection = collection
        self.ring: HashRing | None = (
            HashRing(range(shard_count)) if elastic else None
        )
        self._init_elastic(seed=seed)

    # -- live resharding ---------------------------------------------------------

    def attach_reshard(self, throttle: float = 1.0,
                       offered_load: float = 0.7) -> MigrationEngine:
        if self.ring is None:
            raise ConfigurationError(
                "live resharding needs the consistent-hash ring; construct "
                "the cluster with elastic=True"
            )
        self._engine = MigrationEngine(
            self._shard_share, len(self.shards), throttle=throttle,
            offered_load=offered_load, tracer=self.tracer,
            metrics=self.metrics,
        )
        return self._engine

    def _shard_share(self, shard: int) -> float:
        """Hash routing spreads by ring arc, not data: the share is the
        fraction of the ring the shard owns (uniform-ish by construction)."""
        if self.ring is None:
            return 1.0 / len(self.shards)
        return self.ring.shares().get(shard, 0.0)

    def scale_to(self, count: int, now: float = 0.0) -> int:
        """Grow to ``count`` shards; ring arcs hand off to the new nodes."""
        self._require_engine()
        if count <= len(self.shards):
            raise ShardingError(
                f"scale target {count} does not grow the {len(self.shards)}-"
                f"shard cluster; use drain_shard to scale down"
            )
        added = list(range(len(self.shards), count))
        for i in added:
            if self.replication is None:
                self.shards.append(
                    Mongod(f"mongod-{i}", tracer=self.tracer,
                           metrics=self.metrics, sampler=self.sampler))
            else:
                self.shards.append(self.replication.build_shard(
                    f"rs-{i}", seed=self._seed, tracer=self.tracer))
        old_ring = self.ring
        self.ring = old_ring.with_nodes(
            [i for i in range(count) if i not in self._retired])
        return self._submit_arc_handoffs(old_ring, self.ring, added,
                                         adding=True, now=now)

    def drain_shard(self, index: int, now: float = 0.0) -> int:
        """Retire one shard; its ring arcs hand off to the survivors."""
        self._require_engine()
        if not 0 <= index < len(self.shards):
            raise ShardingError(f"no shard {index} to drain")
        if index in self._retired:
            raise ShardingError(f"shard {index} is already drained")
        if len(self.shards) - len(self._retired) < 2:
            raise ShardingError("cannot drain the last active shard")
        self._retired.add(index)
        old_ring = self.ring
        self.ring = old_ring.with_nodes(
            [i for i in range(len(self.shards)) if i not in self._retired])
        return self._submit_arc_handoffs(old_ring, self.ring, [index],
                                         adding=False, now=now)

    def _submit_arc_handoffs(self, old_ring: HashRing, new_ring: HashRing,
                             changed: list[int], adding: bool,
                             now: float) -> int:
        """One migration per (source, dest) pair whose arcs change hands.

        Because both rings hash the same vnode points, every arc a changed
        node gains or loses has exactly one owner on the other ring, so the
        pair set is computable from ring geometry alone — no key inventory
        needed.  Membership is the pure predicate "old ring says source AND
        new ring says dest", which automatically covers keys inserted while
        the handoff is still queued.
        """
        pairs: set[tuple[int, int]] = set()
        for node in changed:
            for replica in range(old_ring.vnodes):
                point = vnode_point(node, replica)
                if adding:
                    pairs.add((old_ring.owner_of_hash(point), node))
                else:
                    pairs.add((node, new_ring.owner_of_hash(point)))
        queued = 0
        for source, dest in sorted(p for p in pairs if p[0] != p[1]):
            def covers(key: str, s=source, d=dest) -> bool:
                return (old_ring.node_for(key) == s
                        and new_ring.node_for(key) == d)
            self._engine.submit(Migration(
                source=source, target=dest,
                label=f"arc@{source}->{dest}",
                covers=covers,
                count_docs=lambda s=source, c=covers: len(
                    self._keys_on(s, c)),
                commit=lambda s=source, d=dest, c=covers:
                    self._commit_arc(s, d, c),
            ), now)
            queued += 1
        return queued

    def _keys_on(self, shard: int, covers) -> list[str]:
        try:
            collection = self.shards[shard].collection(self.collection)
        except ServerCrashed:
            return []  # sizing only; the commit path retries until reachable
        return [k for k in collection.keys_in_range("", _KEY_MAX)
                if covers(k)]

    def _commit_arc(self, source: int, dest: int, covers) -> int:
        """Atomically copy an arc's documents to their new owner.

        Source-side deletes are *deferred* to the post-flip cleanup queue:
        ownership flips the moment this returns, so deleting first could
        strand a read between a partial delete and the flip.  Until cleanup
        runs, the strays are invisible — routing prefers the new owner and
        elastic scans filter every document through current ownership.

        A dead source must raise here (not return an empty snapshot): a
        vacuous commit would flip ownership away from rows that still only
        exist on the crashed shard — exactly the acknowledged-write loss
        the abort path exists to prevent.
        """
        try:
            collection = self.shards[source].collection(self.collection)
            keys = [k for k in collection.keys_in_range("", _KEY_MAX)
                    if covers(k)]
        except ServerCrashed as exc:
            raise ShardUnavailable(
                f"arc handoff aborted: source shard {source} is "
                f"unavailable: {exc}", shard=source,
            ) from exc
        copied: list[str] = []
        try:
            for key in keys:
                document = self.shards[source].find_one(self.collection, key)
                if document is None:
                    continue
                self.shards[dest].remove(self.collection, key)
                self.shards[dest].insert(self.collection, document)
                copied.append(key)
        except ServerCrashed as exc:
            try:
                for key in copied:
                    self.shards[dest].remove(self.collection, key)
            except ServerCrashed:
                pass  # dest died holding strays; the next attempt clears them
            dead = dest if not self._alive(dest) else source
            raise ShardUnavailable(
                f"arc handoff aborted: shard {dead} is unavailable: {exc}",
                shard=dead,
            ) from exc
        finally:
            self._drain_backfill_noise(source, dest)
        if copied:
            self._pending_cleanup.append(
                (source, self.collection, copied))
        return len(copied)

    def _alive(self, index: int) -> bool:
        shard = self.shards[index]
        alive = getattr(shard, "alive", True)
        return alive() if callable(alive) else bool(alive)

    # -- routing ----------------------------------------------------------------

    def _shard_index(self, key: str) -> int:
        if self.ring is None:
            return hash_shard(key, len(self.shards))
        if self._engine is not None and not self._engine.idle:
            override = self._engine.route_override(key)
            if override is not None:
                return override  # mid-handoff keys stay with the old owner
        return self.ring.node_for(key)

    def _shard(self, key: str) -> Mongod:
        return self.shards[self._shard_index(key)]

    def _on_shard(self, index: int, operation):
        try:
            return operation()
        except ServerCrashed as exc:
            raise ShardUnavailable(
                f"shard {index} ({self.shards[index].name}) is unavailable: {exc}",
                shard=index,
            ) from exc

    def insert(self, key: str, record: dict) -> None:
        self._guard_moving(key)
        index = self._shard_index(key)
        self._charge_io(index)
        self._on_shard(
            index,
            lambda: self.shards[index].insert(
                self.collection, {"_id": key, **record}
            ),
        )
        self._note_write(key)

    def read(self, key: str) -> dict | None:
        self._guard_moving(key)
        index = self._shard_index(key)
        self._charge_io(index)
        document = self._on_shard(
            index, lambda: self.shards[index].find_one(self.collection, key)
        )
        if document is not None:
            document = {k: v for k, v in document.items() if k != "_id"}
        return document

    def update(self, key: str, fieldname: str, value: str) -> bool:
        self._guard_moving(key)
        index = self._shard_index(key)
        self._charge_io(index)
        changed = self._on_shard(
            index,
            lambda: self.shards[index].update(self.collection, key, fieldname, value),
        )
        if changed:
            self._note_write(key)
        return changed

    def scan(self, start_key: str, count: int) -> list[dict]:
        """Hash sharding scatters ranges: every shard must be queried."""
        partials: list[dict] = []
        for index, shard in enumerate(self.shards):
            if index in self._retired and self.ring is not None:
                continue  # a drained shard holds at most already-moved strays
            documents = self._on_shard(
                index,
                lambda s=shard: s.scan(self.collection, start_key, count),
            )
            if self.ring is not None:
                # Elastic mode can leave short-lived strays (post-flip,
                # pre-cleanup); ownership filtering keeps scans exact.
                documents = [d for d in documents
                             if self._shard_index(d["_id"]) == index]
            partials.extend(documents)
        partials.sort(key=lambda d: d["_id"])
        return partials[:count]

    def shards_touched_by_scan(self, start_key: str, count: int) -> int:
        return len(self.shards) - len(self._retired)

    def kill_shard(self, index: int) -> None:
        self.shards[index].kill()

    def restart_shard(self, index: int) -> None:
        self.shards[index].restart()

    @property
    def doc_count(self) -> int:
        return sum(len(s.collection(self.collection)) for s in self.shards)

    # -- replication surface (no-ops without --replication) ---------------------

    def tick(self, now: float) -> None:
        self._advance_elastic(now)
        if self.replication is not None:
            for shard in self.shards:
                shard.tick(now)

    def consume_ack_delay(self) -> float:
        if self.replication is None:
            return 0.0
        return sum(s.consume_ack_delay() for s in self.shards)

    def take_last_write(self):
        if self.replication is None:
            return None
        for shard in self.shards:
            write = shard.take_last_write()
            if write is not None:
                return write
        return None

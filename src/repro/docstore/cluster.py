"""The two MongoDB deployments the paper benchmarks.

* :class:`MongoAsCluster` — the stock deployment: 128 mongod shards behind
  mongos routers, a config server holding range-partitioned chunks, auto
  split, and a balancer.  Range partitioning is what wins workload E (a
  short scan touches one chunk) and what melts down on appends (every new
  key lands in the last chunk — one hot shard).
* :class:`MongoCsCluster` — the authors' client-side variant: the same
  mongod processes, but the client hash-routes keys itself; no mongos, no
  config server, no balancer, and scans must broadcast to every shard.
"""

from __future__ import annotations

import zlib

from repro.common.errors import ServerCrashed, ShardUnavailable, ShardingError
from repro.docstore.chunks import Balancer, Chunk, ConfigServer, MongosRouter
from repro.docstore.mongod import Mongod

DEFAULT_COLLECTION = "usertable"


def hash_shard(key: str, shard_count: int) -> int:
    """Deterministic client-side hash routing (crc32, stable across runs)."""
    return zlib.crc32(key.encode("utf-8")) % shard_count


class MongoAsCluster:
    """Auto-sharded MongoDB: chunks + mongos routing + balancer."""

    def __init__(
        self,
        shard_count: int = 128,
        max_chunk_docs: int = 2000,
        balancer_threshold: int = 8,
        collection: str = DEFAULT_COLLECTION,
        mongos_count: int = 8,
        tracer=None,
        metrics=None,
        sampler=None,
        replication=None,
        seed: int = 0,
    ):
        if shard_count < 1:
            raise ShardingError("need at least one shard")
        if mongos_count < 1:
            raise ShardingError("need at least one mongos")
        self.tracer = tracer
        self.metrics = metrics
        self.sampler = sampler
        self.replication = replication
        if replication is None:
            # Paper-faithful (§3.4.1): bare mongods, no failover.
            self.shards = [
                Mongod(f"mongod-{i}", tracer=tracer, metrics=metrics,
                       sampler=sampler)
                for i in range(shard_count)
            ]
        else:
            self.shards = [
                replication.build_shard(f"rs-{i}", seed=seed, tracer=tracer)
                for i in range(shard_count)
            ]
        self.config = ConfigServer()
        self.config.bootstrap(shard=0)
        self.balancer = Balancer(threshold=balancer_threshold)
        self.max_chunk_docs = max_chunk_docs
        self.collection = collection
        self.routed_ops = 0  # mongos request counter
        # One mongos per client node (the paper ran 8, §3.2.3); clients
        # round-robin across them and each keeps its own chunk-table cache.
        self.routers = [
            MongosRouter(self.config, f"mongos-{i}") for i in range(mongos_count)
        ]
        self._next_router = 0

    def _router(self) -> MongosRouter:
        router = self.routers[self._next_router]
        self._next_router = (self._next_router + 1) % len(self.routers)
        return router

    @property
    def stale_routes(self) -> int:
        """Metadata refreshes forced by splits/migrations, across all mongos."""
        return sum(r.stale_routes for r in self.routers)

    # -- chunk maintenance -------------------------------------------------------

    def pre_split(self, boundaries: list[str]) -> None:
        """Pre-create empty chunks (the paper's load strategy, §3.4.2)."""
        self.config = ConfigServer()
        self.config.pre_split(boundaries, len(self.shards))
        self.routers = [
            MongosRouter(self.config, r.name) for r in self.routers
        ]

    def _maybe_split(self, chunk: Chunk) -> None:
        if chunk.doc_count <= self.max_chunk_docs:
            return
        shard = self.shards[chunk.shard]
        low = chunk.low if chunk.low is not None else ""
        keys = shard.collection(self.collection).keys_in_range(
            low, chunk.high if chunk.high is not None else "￿"
        )
        if len(keys) < 2:
            return
        median = keys[len(keys) // 2]
        if median == chunk.low:
            return
        self.config.split_chunk(chunk, median)

    def run_balancer(self) -> int:
        return self.balancer.rebalance(
            self.config, self.shards, self.collection,
            tracer=self.tracer, metrics=self.metrics,
        )

    # -- mongos operations ----------------------------------------------------------

    def _on_shard(self, index: int, operation):
        """Run one mongod call; a dead process surfaces as the typed routing
        failure mongos reports (the shard is *unavailable*, not failing over —
        the paper's deployment had no replica sets)."""
        try:
            return operation()
        except ServerCrashed as exc:
            raise ShardUnavailable(
                f"shard {index} ({self.shards[index].name}) is unavailable: {exc}",
                shard=index,
            ) from exc

    def insert(self, key: str, record: dict) -> None:
        self.routed_ops += 1
        chunk = self._router().route(key)
        self._on_shard(
            chunk.shard,
            lambda: self.shards[chunk.shard].insert(
                self.collection, {"_id": key, **record}
            ),
        )
        chunk.doc_count += 1
        self._maybe_split(chunk)

    def read(self, key: str) -> dict | None:
        self.routed_ops += 1
        chunk = self._router().route(key)
        document = self._on_shard(
            chunk.shard,
            lambda: self.shards[chunk.shard].find_one(self.collection, key),
        )
        if document is not None:
            document = {k: v for k, v in document.items() if k != "_id"}
        return document

    def update(self, key: str, fieldname: str, value: str) -> bool:
        self.routed_ops += 1
        chunk = self._router().route(key)
        return self._on_shard(
            chunk.shard,
            lambda: self.shards[chunk.shard].update(
                self.collection, key, fieldname, value
            ),
        )

    def scan(self, start_key: str, count: int) -> list[dict]:
        """Range scan: visits chunks in key order, usually just one."""
        self.routed_ops += 1
        out: list[dict] = []
        for chunk in self.config.chunks_from(start_key):
            if len(out) >= count:
                break
            shard = self.shards[chunk.shard]
            low = start_key if chunk.contains(start_key) else (chunk.low or "")
            documents = self._on_shard(
                chunk.shard,
                lambda s=shard, lo=low: s.scan(
                    self.collection, lo, count - len(out)
                ),
            )
            for document in documents:
                if chunk.high is not None and document["_id"] >= chunk.high:
                    break
                out.append(document)
        return out[:count]

    def shards_touched_by_scan(self, start_key: str, count: int) -> int:
        """How many shards a scan fans out to (the workload E differentiator)."""
        touched = set()
        remaining = count
        for chunk in self.config.chunks_from(start_key):
            if remaining <= 0:
                break
            touched.add(chunk.shard)
            remaining -= max(1, chunk.doc_count)
        return max(1, len(touched))

    def kill_shard(self, index: int) -> None:
        """Fault injection: one mongod stops responding (no failover was
        configured in the paper's deployment — no replica sets).  With
        ``replication`` enabled the shard is a replica set and this kills
        its current *primary*, which is what triggers a failover."""
        self.shards[index].kill()

    def restart_shard(self, index: int) -> None:
        """The operator brings the dead mongod back (data intact on disk)."""
        self.shards[index].restart()

    @property
    def doc_count(self) -> int:
        return sum(
            len(s.collection(self.collection)) for s in self.shards
        )

    # -- replication surface (no-ops without --replication) ---------------------

    def tick(self, now: float) -> None:
        """Advance every replica set's clock (oplog, flushes, elections)."""
        if self.replication is not None:
            for shard in self.shards:
                shard.tick(now)

    def consume_ack_delay(self) -> float:
        """Write-concern latency owed by the most recent write, if any."""
        if self.replication is None:
            return 0.0
        return sum(s.consume_ack_delay() for s in self.shards)

    def take_last_write(self):
        """The acknowledged-write record of the most recent write, if any."""
        if self.replication is None:
            return None
        for shard in self.shards:
            write = shard.take_last_write()
            if write is not None:
                return write
        return None


class MongoCsCluster:
    """Client-side hash-sharded MongoDB (the paper's Mongo-CS)."""

    def __init__(self, shard_count: int = 128, collection: str = DEFAULT_COLLECTION,
                 tracer=None, metrics=None, sampler=None,
                 replication=None, seed: int = 0):
        if shard_count < 1:
            raise ShardingError("need at least one shard")
        self.replication = replication
        if replication is None:
            self.shards = [
                Mongod(f"mongod-{i}", tracer=tracer, metrics=metrics,
                       sampler=sampler)
                for i in range(shard_count)
            ]
        else:
            # Client-side failover: the driver hash-routes to the replica
            # set and retries until the new primary is elected.
            self.shards = [
                replication.build_shard(f"rs-{i}", seed=seed, tracer=tracer)
                for i in range(shard_count)
            ]
        self.collection = collection

    def _shard_index(self, key: str) -> int:
        return hash_shard(key, len(self.shards))

    def _shard(self, key: str) -> Mongod:
        return self.shards[self._shard_index(key)]

    def _on_shard(self, index: int, operation):
        try:
            return operation()
        except ServerCrashed as exc:
            raise ShardUnavailable(
                f"shard {index} ({self.shards[index].name}) is unavailable: {exc}",
                shard=index,
            ) from exc

    def insert(self, key: str, record: dict) -> None:
        index = self._shard_index(key)
        self._on_shard(
            index,
            lambda: self.shards[index].insert(
                self.collection, {"_id": key, **record}
            ),
        )

    def read(self, key: str) -> dict | None:
        index = self._shard_index(key)
        document = self._on_shard(
            index, lambda: self.shards[index].find_one(self.collection, key)
        )
        if document is not None:
            document = {k: v for k, v in document.items() if k != "_id"}
        return document

    def update(self, key: str, fieldname: str, value: str) -> bool:
        index = self._shard_index(key)
        return self._on_shard(
            index,
            lambda: self.shards[index].update(self.collection, key, fieldname, value),
        )

    def scan(self, start_key: str, count: int) -> list[dict]:
        """Hash sharding scatters ranges: every shard must be queried."""
        partials: list[dict] = []
        for index, shard in enumerate(self.shards):
            partials.extend(self._on_shard(
                index,
                lambda s=shard: s.scan(self.collection, start_key, count),
            ))
        partials.sort(key=lambda d: d["_id"])
        return partials[:count]

    def shards_touched_by_scan(self, start_key: str, count: int) -> int:
        return len(self.shards)

    def kill_shard(self, index: int) -> None:
        self.shards[index].kill()

    def restart_shard(self, index: int) -> None:
        self.shards[index].restart()

    @property
    def doc_count(self) -> int:
        return sum(len(s.collection(self.collection)) for s in self.shards)

    # -- replication surface (no-ops without --replication) ---------------------

    def tick(self, now: float) -> None:
        if self.replication is not None:
            for shard in self.shards:
                shard.tick(now)

    def consume_ack_delay(self) -> float:
        if self.replication is None:
            return 0.0
        return sum(s.consume_ack_delay() for s in self.shards)

    def take_last_write(self):
        if self.replication is None:
            return None
        for shard in self.shards:
            write = shard.take_last_write()
            if write is not None:
                return write
        return None

"""Mongo-AS sharding metadata: chunks, the config server, and the balancer.

Data is range-partitioned into chunks ([low, high) key intervals), each owned
by one shard.  The config server holds the chunk table; the balancer moves
chunks from overloaded shards to underloaded ones, exactly the machinery the
paper describes (including the pre-split optimization used for loading —
Section 3.4.2 — which avoids paying chunk-migration costs mid-load).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import (
    ServerCrashed,
    ShardUnavailable,
    ShardingError,
    StaleConfigError,
)


@dataclass
class Chunk:
    """One key interval [low, high) assigned to a shard.

    ``low=None`` means -inf and ``high=None`` means +inf.
    """

    low: Optional[str]
    high: Optional[str]
    shard: int
    doc_count: int = 0

    def contains(self, key: str) -> bool:
        if self.low is not None and key < self.low:
            return False
        if self.high is not None and key >= self.high:
            return False
        return True


@dataclass
class ConfigServer:
    """The cluster's chunk table plus change counters.

    ``version`` is the chunk-metadata epoch: every split or migration bumps
    it, and a mongos holding an older epoch must refresh before routing
    (the real protocol's staleConfig/setShardVersion dance).
    """

    chunks: list[Chunk] = field(default_factory=list)
    splits: int = 0
    migrations: int = 0
    migrated_docs: int = 0
    version: int = 1

    def bootstrap(self, shard: int = 0) -> None:
        """Start with one chunk covering the whole key space."""
        if self.chunks:
            raise ShardingError("config server already bootstrapped")
        self.chunks = [Chunk(low=None, high=None, shard=shard)]

    def pre_split(self, boundaries: list[str], shard_count: int) -> None:
        """Create empty chunks at known key boundaries, round-robin on shards.

        This is the documented load-time technique the paper used: with the
        key distribution known in advance, chunks are created empty and
        spread evenly, so loading never migrates data.
        """
        if self.chunks:
            raise ShardingError("pre_split requires an empty config server")
        if sorted(boundaries) != list(boundaries) or len(set(boundaries)) != len(boundaries):
            raise ShardingError("boundaries must be strictly increasing")
        edges: list[Optional[str]] = [None] + list(boundaries) + [None]
        for i, (low, high) in enumerate(zip(edges, edges[1:])):
            self.chunks.append(Chunk(low=low, high=high, shard=i % shard_count))

    def chunk_for(self, key: str) -> Chunk:
        for chunk in self.chunks:
            if chunk.contains(key):
                return chunk
        raise ShardingError(f"no chunk covers key {key!r}")

    def chunks_from(self, key: str) -> list[Chunk]:
        """Chunks covering [key, +inf), in key order (for range scans)."""
        out = [c for c in self.chunks if c.high is None or c.high > key]
        return sorted(out, key=lambda c: (c.low is not None, c.low))

    def split_chunk(self, chunk: Chunk, at_key: str) -> tuple[Chunk, Chunk]:
        """Split one chunk at a key; both halves stay on the same shard.

        A split key equal to either boundary is rejected: it would create an
        empty chunk that the balancer then migrates forever (every rebalance
        round picks it up at zero cost and the spread never closes).
        ``low=None`` means -inf, so the degenerate left half also appears
        when splitting the unbounded first chunk at the empty string.
        """
        if not chunk.contains(at_key):
            raise ShardingError(f"split key {at_key!r} outside chunk")
        if chunk.low == at_key or (chunk.low is None and at_key == ""):
            raise ShardingError("split key equals chunk lower bound")
        index = self.chunks.index(chunk)
        left = Chunk(low=chunk.low, high=at_key, shard=chunk.shard,
                     doc_count=chunk.doc_count // 2)
        right = Chunk(low=at_key, high=chunk.high, shard=chunk.shard,
                      doc_count=chunk.doc_count - chunk.doc_count // 2)
        self.chunks[index : index + 1] = [left, right]
        self.splits += 1
        self.version += 1
        return left, right

    def shard_chunk_counts(self, shard_count: int) -> list[int]:
        counts = [0] * shard_count
        for chunk in self.chunks:
            counts[chunk.shard] += 1
        return counts


def migrate_chunk(config: ConfigServer, chunk: Chunk, shards: list,
                  target: int, collection: str, tracer=None, metrics=None,
                  cleanup: list | None = None) -> int:
    """Move one chunk's documents abort-safely; returns the docs moved.

    The copy→commit order is what makes a crash mid-migration lose nothing:

    1. read the whole snapshot from the source (a dead source aborts here —
       ownership and data untouched);
    2. write every document to the destination, clearing any stray copy a
       previously aborted attempt left behind (a dead destination aborts
       here, rolling back what landed — ownership stays at the source);
    3. only then flip ownership and bump the metadata version, and finally
       delete from the source.  A source crash during the deletes leaves
       strays that routing can no longer see; they are queued on ``cleanup``
       for retry rather than ever deleting before the flip.

    Both abort paths surface as the typed :class:`ShardUnavailable` naming
    the dead shard, so a balancer round racing a ``kill_shard`` fails
    cleanly and succeeds after ``restart_shard``.
    """
    source = chunk.shard
    low = chunk.low if chunk.low is not None else ""
    high = chunk.high if chunk.high is not None else "￿"
    try:
        keys = shards[source].collection(collection).keys_in_range(low, high)
        documents = [shards[source].find_one(collection, key) for key in keys]
    except ServerCrashed as exc:
        raise ShardUnavailable(
            f"chunk migration aborted: source shard {source} is "
            f"unavailable: {exc}", shard=source,
        ) from exc
    copied: list = []
    try:
        for key, document in zip(keys, documents):
            if document is None:
                continue
            shards[target].remove(collection, key)
            shards[target].insert(collection, document)
            copied.append(key)
    except ServerCrashed as exc:
        try:
            for key in copied:
                shards[target].remove(collection, key)
        except ServerCrashed:
            pass  # destination died holding strays; next attempt clears them
        raise ShardUnavailable(
            f"chunk migration aborted: destination shard {target} is "
            f"unavailable: {exc}", shard=target,
        ) from exc
    chunk.shard = target
    index = config.migrations
    config.migrations += 1
    config.migrated_docs += len(copied)
    config.version += 1
    try:
        for key in copied:
            shards[source].remove(collection, key)
    except ServerCrashed:
        if cleanup is not None:
            cleanup.append((source, collection, list(copied)))
    if tracer:
        tracer.add(
            "chunk.migrate", float(index), float(index + 1),
            cat="migration", node="balancer", lane="migrations",
            source=source, target=target, docs=len(copied),
        )
    if metrics:
        metrics.counter("docstore.migrations").inc()
        metrics.counter("docstore.migrated_docs").inc(len(copied))
    return len(copied)


class Balancer:
    """Moves chunks from the most- to the least-loaded shard until balanced.

    MongoDB's balancer triggers when the chunk-count spread exceeds a
    threshold (8 in 1.8); each migration physically copies the documents and
    deletes them from the source — the expensive part the pre-split avoids.
    """

    def __init__(self, threshold: int = 8):
        if threshold < 2:
            raise ShardingError("balancer threshold must be >= 2")
        self.threshold = threshold

    def _counts(self, config: ConfigServer, shard_count: int,
                exclude: set | None) -> dict:
        """Chunk counts per *eligible* shard (drained shards are excluded
        so the balancer never refills a shard being retired)."""
        counts = config.shard_chunk_counts(shard_count)
        return {i: c for i, c in enumerate(counts)
                if not exclude or i not in exclude}

    def needs_balancing(self, config: ConfigServer, shard_count: int,
                        exclude: set | None = None) -> bool:
        counts = self._counts(config, shard_count, exclude)
        if len(counts) < 2:
            return False
        return max(counts.values()) - min(counts.values()) >= self.threshold

    def rebalance(self, config: ConfigServer, shards: list, collection: str,
                  tracer=None, metrics=None, exclude: set | None = None) -> int:
        """Run migrations until balanced; returns number of chunks moved.

        With a ``tracer`` attached each migration becomes a span on the
        balancer's logical clock (migration index), recording the source and
        target shards and the document count moved.
        """
        moved = 0
        while self.needs_balancing(config, len(shards), exclude):
            counts = self._counts(config, len(shards), exclude)
            source = max(counts, key=lambda i: (counts[i], -i))
            target = min(counts, key=lambda i: (counts[i], i))
            chunk = next(c for c in config.chunks if c.shard == source)
            self._migrate(config, chunk, shards, target, collection,
                          tracer=tracer, metrics=metrics)
            moved += 1
        return moved

    def _migrate(self, config: ConfigServer, chunk: Chunk, shards: list,
                 target: int, collection: str, tracer=None, metrics=None) -> None:
        migrate_chunk(config, chunk, shards, target, collection,
                      tracer=tracer, metrics=metrics)


class MongosRouter:
    """A mongos routing cache with the stale-config refresh protocol.

    Each mongos caches the chunk table at some metadata epoch; when a split
    or migration bumps the config server's version, the next routed request
    detects the stale cache, refreshes, and retries — counting the extra
    metadata round trips the real system pays.
    """

    def __init__(self, config: ConfigServer, name: str = "mongos"):
        self.name = name
        self._config = config
        self._cached_chunks: list[Chunk] = []
        self._cached_version = 0
        self.refreshes = 0
        self.stale_routes = 0
        self.refresh()

    def refresh(self) -> None:
        # A *snapshot*, not shared Chunk objects: a later migration flipping
        # ``chunk.shard`` on the config server must not magically update a
        # cache that never refreshed — that coherence is exactly what the
        # stale-config protocol pays for.
        self._cached_chunks = [
            Chunk(low=c.low, high=c.high, shard=c.shard,
                  doc_count=c.doc_count)
            for c in self._config.chunks
        ]
        self._cached_version = self._config.version
        self.refreshes += 1

    @property
    def is_stale(self) -> bool:
        return self._cached_version != self._config.version

    def _lookup(self, key: str) -> Optional[Chunk]:
        for chunk in self._cached_chunks:
            if chunk.contains(key):
                return chunk
        return None

    def route(self, key: str) -> Chunk:
        """Resolve the chunk for a key, refreshing a stale cache first.

        A cache whose epoch lags the config server refreshes before routing
        (the staleConfig/setShardVersion bounce, counted in
        ``stale_routes``).  If the snapshot still cannot cover the key —
        its chunk map predates a split/merge the epoch check missed — the
        router retries exactly once after another ``refresh()`` and then
        surfaces the typed :class:`StaleConfigError` instead of silently
        routing to the wrong shard.
        """
        if self.is_stale:
            self.stale_routes += 1
            self.refresh()
        chunk = self._lookup(key)
        if chunk is None:
            self.stale_routes += 1
            self.refresh()
            chunk = self._lookup(key)
        if chunk is None:
            raise StaleConfigError(
                f"no chunk covers key {key!r} at metadata version "
                f"{self._cached_version} (after refresh)"
            )
        return chunk

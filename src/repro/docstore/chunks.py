"""Mongo-AS sharding metadata: chunks, the config server, and the balancer.

Data is range-partitioned into chunks ([low, high) key intervals), each owned
by one shard.  The config server holds the chunk table; the balancer moves
chunks from overloaded shards to underloaded ones, exactly the machinery the
paper describes (including the pre-split optimization used for loading —
Section 3.4.2 — which avoids paying chunk-migration costs mid-load).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ShardingError


@dataclass
class Chunk:
    """One key interval [low, high) assigned to a shard.

    ``low=None`` means -inf and ``high=None`` means +inf.
    """

    low: Optional[str]
    high: Optional[str]
    shard: int
    doc_count: int = 0

    def contains(self, key: str) -> bool:
        if self.low is not None and key < self.low:
            return False
        if self.high is not None and key >= self.high:
            return False
        return True


@dataclass
class ConfigServer:
    """The cluster's chunk table plus change counters.

    ``version`` is the chunk-metadata epoch: every split or migration bumps
    it, and a mongos holding an older epoch must refresh before routing
    (the real protocol's staleConfig/setShardVersion dance).
    """

    chunks: list[Chunk] = field(default_factory=list)
    splits: int = 0
    migrations: int = 0
    migrated_docs: int = 0
    version: int = 1

    def bootstrap(self, shard: int = 0) -> None:
        """Start with one chunk covering the whole key space."""
        if self.chunks:
            raise ShardingError("config server already bootstrapped")
        self.chunks = [Chunk(low=None, high=None, shard=shard)]

    def pre_split(self, boundaries: list[str], shard_count: int) -> None:
        """Create empty chunks at known key boundaries, round-robin on shards.

        This is the documented load-time technique the paper used: with the
        key distribution known in advance, chunks are created empty and
        spread evenly, so loading never migrates data.
        """
        if self.chunks:
            raise ShardingError("pre_split requires an empty config server")
        if sorted(boundaries) != list(boundaries) or len(set(boundaries)) != len(boundaries):
            raise ShardingError("boundaries must be strictly increasing")
        edges: list[Optional[str]] = [None] + list(boundaries) + [None]
        for i, (low, high) in enumerate(zip(edges, edges[1:])):
            self.chunks.append(Chunk(low=low, high=high, shard=i % shard_count))

    def chunk_for(self, key: str) -> Chunk:
        for chunk in self.chunks:
            if chunk.contains(key):
                return chunk
        raise ShardingError(f"no chunk covers key {key!r}")

    def chunks_from(self, key: str) -> list[Chunk]:
        """Chunks covering [key, +inf), in key order (for range scans)."""
        out = [c for c in self.chunks if c.high is None or c.high > key]
        return sorted(out, key=lambda c: (c.low is not None, c.low))

    def split_chunk(self, chunk: Chunk, at_key: str) -> tuple[Chunk, Chunk]:
        """Split one chunk at a key; both halves stay on the same shard."""
        if not chunk.contains(at_key):
            raise ShardingError(f"split key {at_key!r} outside chunk")
        if chunk.low == at_key:
            raise ShardingError("split key equals chunk lower bound")
        index = self.chunks.index(chunk)
        left = Chunk(low=chunk.low, high=at_key, shard=chunk.shard,
                     doc_count=chunk.doc_count // 2)
        right = Chunk(low=at_key, high=chunk.high, shard=chunk.shard,
                      doc_count=chunk.doc_count - chunk.doc_count // 2)
        self.chunks[index : index + 1] = [left, right]
        self.splits += 1
        self.version += 1
        return left, right

    def shard_chunk_counts(self, shard_count: int) -> list[int]:
        counts = [0] * shard_count
        for chunk in self.chunks:
            counts[chunk.shard] += 1
        return counts


class Balancer:
    """Moves chunks from the most- to the least-loaded shard until balanced.

    MongoDB's balancer triggers when the chunk-count spread exceeds a
    threshold (8 in 1.8); each migration physically copies the documents and
    deletes them from the source — the expensive part the pre-split avoids.
    """

    def __init__(self, threshold: int = 8):
        if threshold < 2:
            raise ShardingError("balancer threshold must be >= 2")
        self.threshold = threshold

    def needs_balancing(self, config: ConfigServer, shard_count: int) -> bool:
        counts = config.shard_chunk_counts(shard_count)
        return max(counts) - min(counts) >= self.threshold

    def rebalance(self, config: ConfigServer, shards: list, collection: str,
                  tracer=None, metrics=None) -> int:
        """Run migrations until balanced; returns number of chunks moved.

        With a ``tracer`` attached each migration becomes a span on the
        balancer's logical clock (migration index), recording the source and
        target shards and the document count moved.
        """
        moved = 0
        while self.needs_balancing(config, len(shards)):
            counts = config.shard_chunk_counts(len(shards))
            source = counts.index(max(counts))
            target = counts.index(min(counts))
            chunk = next(c for c in config.chunks if c.shard == source)
            self._migrate(config, chunk, shards, target, collection,
                          tracer=tracer, metrics=metrics)
            moved += 1
        return moved

    def _migrate(self, config: ConfigServer, chunk: Chunk, shards: list,
                 target: int, collection: str, tracer=None, metrics=None) -> None:
        source_shard = shards[chunk.shard]
        source = chunk.shard
        low = chunk.low if chunk.low is not None else ""
        high = chunk.high if chunk.high is not None else "￿"
        keys = source_shard.collection(collection).keys_in_range(low, high)
        for key in keys:
            document = source_shard.find_one(collection, key)
            shards[target].insert(collection, document)
            source_shard.remove(collection, key)
        chunk.shard = target
        index = config.migrations
        config.migrations += 1
        config.migrated_docs += len(keys)
        config.version += 1
        if tracer:
            tracer.add(
                "chunk.migrate", float(index), float(index + 1),
                cat="migration", node="balancer", lane="migrations",
                source=source, target=target, docs=len(keys),
            )
        if metrics:
            metrics.counter("docstore.migrations").inc()
            metrics.counter("docstore.migrated_docs").inc(len(keys))


class MongosRouter:
    """A mongos routing cache with the stale-config refresh protocol.

    Each mongos caches the chunk table at some metadata epoch; when a split
    or migration bumps the config server's version, the next routed request
    detects the stale cache, refreshes, and retries — counting the extra
    metadata round trips the real system pays.
    """

    def __init__(self, config: ConfigServer, name: str = "mongos"):
        self.name = name
        self._config = config
        self._cached_chunks: list[Chunk] = []
        self._cached_version = 0
        self.refreshes = 0
        self.stale_routes = 0
        self.refresh()

    def refresh(self) -> None:
        self._cached_chunks = list(self._config.chunks)
        self._cached_version = self._config.version
        self.refreshes += 1

    @property
    def is_stale(self) -> bool:
        return self._cached_version != self._config.version

    def route(self, key: str) -> Chunk:
        """Resolve the chunk for a key, refreshing a stale cache first."""
        if self.is_stale:
            self.stale_routes += 1
            self.refresh()
        for chunk in self._cached_chunks:
            if chunk.contains(key):
                return chunk
        raise ShardingError(f"no chunk covers key {key!r}")

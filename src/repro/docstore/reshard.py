"""Throttled live migration of chunks / key ranges on the virtual clock.

The balancer's instant ``_migrate`` answers "where should data live?"; this
module answers "what does *moving* it cost while the workload is running?".
A :class:`MigrationEngine` executes a queue of :class:`Migration`\\ s with
the real protocol's three phases:

* **copy** — the snapshot streams from source to destination in throttled
  batches.  Each batch occupies both shards' disk+NIC FIFO
  (:class:`ShardIo`), so foreground ops routed to either shard queue behind
  the copy traffic — the visible throughput dip and p99 spike.
* **catch-up** — writes that landed on the moving range during the copy
  (tracked via :meth:`MigrationEngine.note_write`) are replayed, again on
  the FIFO, again throttled.
* **commit** — a short critical section (:data:`COMMIT_CRITICAL_S`) during
  which ops on the moving keys bounce with the typed
  :class:`~repro.common.errors.ChunkMoving` (clients retry through their
  ``RetryPolicy``; one backoff outlasts the window).  At the end of the
  window the cluster's commit callback atomically transfers the documents
  and flips ownership.  If a shard involved is dead, the commit *aborts* —
  ownership stays at the source, nothing acknowledged is lost — and is
  re-attempted :data:`MIGRATION_RETRY_S` later.

Steady-state capacity is modelled MVA-style: each foreground op pays
``service / (1 - rho)`` for its shard, where ``rho`` is the shard's offered
utilization — proportional to its share of the data (range sharding) or of
the hash ring.  Scaling from N to M shards drops each share toward ``1/M``,
which is exactly the post-rebalance latency gain the reshard report
measures.

Everything runs on the caller's logical clock (``advance(now)`` from the
cluster tick); no wall time, byte-deterministic per seed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.errors import ServerCrashed, ShardingError, SimulationError

#: Seconds of source+destination disk/NIC occupancy per document copied.
PER_DOC_COPY_S = 0.0008
#: Seconds to replay one write that landed mid-copy (catch-up phase).
CATCHUP_PER_MOD_S = 0.0004
#: The commit critical section: ops on the moving range bounce within it.
COMMIT_CRITICAL_S = 0.02
#: Documents per copy batch (one FIFO occupancy per batch).
COPY_BATCH_DOCS = 32
#: An aborted commit (dead shard) is re-attempted after this long.
MIGRATION_RETRY_S = 0.25
#: Foreground per-op disk service at a shard, before utilization inflation.
FOREGROUND_SERVICE_S = 0.0004
#: Utilization cap so the M/M/1-style inflation never divides by ~zero.
MAX_UTILIZATION = 0.95


class ShardIo:
    """One shard's disk+NIC modelled as a single FIFO on the virtual clock."""

    __slots__ = ("busy_until", "busy_seconds")

    def __init__(self):
        self.busy_until = 0.0
        self.busy_seconds = 0.0

    def wait(self, now: float) -> float:
        """How long a foreground op arriving at ``now`` queues behind copies."""
        return max(0.0, self.busy_until - now)


class Migration:
    """One key range (a chunk, or a consistent-hash arc) changing shards.

    The cluster supplies the data-plane callables so the engine stays
    storage-agnostic: ``covers(key)`` membership, ``count_docs()`` for the
    snapshot size at copy start, and ``commit()`` which atomically transfers
    the documents and flips ownership, returning the doc count moved — or
    raises a :class:`~repro.common.errors.ServerCrashed` family error to
    abort (ownership must then still be at the source).
    """

    __slots__ = (
        "source", "target", "label", "covers", "count_docs", "commit",
        "state", "queued_at", "copy_started", "copy_done", "catchup_done",
        "commit_start", "commit_end", "committed_at", "to_copy", "copied",
        "mods", "batches", "aborts", "moved_docs", "next_batch_at",
        "in_flight",
    )

    def __init__(self, source: int, target: int, label: str,
                 covers: Callable[[str], bool],
                 count_docs: Callable[[], int],
                 commit: Callable[[], int]):
        self.source = source
        self.target = target
        self.label = label
        self.covers = covers
        self.count_docs = count_docs
        self.commit = commit
        self.state = "queued"
        self.queued_at = 0.0
        self.copy_started = 0.0
        self.copy_done = 0.0
        self.catchup_done = 0.0
        self.commit_start = 0.0
        self.commit_end = 0.0
        self.committed_at = 0.0
        self.to_copy = 0
        self.copied = 0
        self.mods = 0
        self.batches = 0
        self.aborts = 0
        self.moved_docs = 0
        self.next_batch_at = 0.0
        self.in_flight: Optional[tuple] = None  # (done_at, doc_count)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "source": self.source,
            "target": self.target,
            "docs": self.moved_docs,
            "batches": self.batches,
            "mods": self.mods,
            "aborts": self.aborts,
            "copy_started": self.copy_started,
            "committed_at": self.committed_at,
        }


class MigrationEngine:
    """Executes queued migrations on the virtual clock, one at a time.

    ``throttle`` in (0, 1] is the fraction of the disk/NIC bandwidth the
    migration may use: each batch's busy window is followed by an idle gap
    sized so the duty cycle equals the throttle (MongoDB's
    ``_secondaryThrottle`` knob, reduced to its effect).
    """

    def __init__(self, share_fn: Callable[[int], float], base_shards: int,
                 throttle: float = 1.0, offered_load: float = 0.7,
                 tracer=None, metrics=None):
        if not 0.0 < throttle <= 1.0:
            raise ShardingError(
                f"migration throttle must be in (0, 1], got {throttle}")
        if not 0.0 <= offered_load < 1.0:
            raise ShardingError(
                f"offered load must be in [0, 1), got {offered_load}")
        self._share_fn = share_fn
        self.base_shards = max(1, base_shards)
        self.throttle = throttle
        self.offered_load = offered_load
        self.tracer = tracer
        self.metrics = metrics
        self._io: Dict[int, ShardIo] = {}
        self._queue: List[Migration] = []
        self._active: Optional[Migration] = None
        self.completed: List[Migration] = []
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._now = 0.0
        self._last_commit_span = None

    # -- submission ------------------------------------------------------------

    def submit(self, migration: Migration, now: float) -> None:
        migration.queued_at = now
        self._queue.append(migration)
        if self.started_at is None:
            self.started_at = now

    @property
    def idle(self) -> bool:
        return self._active is None and not self._queue

    @property
    def migrations(self) -> int:
        return len(self.completed)

    @property
    def moved_docs(self) -> int:
        return sum(m.moved_docs for m in self.completed)

    @property
    def aborted_commits(self) -> int:
        done = sum(m.aborts for m in self.completed)
        active = self._active.aborts if self._active else 0
        return done + active + sum(m.aborts for m in self._queue)

    @property
    def time_to_rebalance(self) -> Optional[float]:
        if self.started_at is None or self.completed_at is None:
            return None
        if not self.idle:
            return None
        return self.completed_at - self.started_at

    def is_migrating(self, covers_probe: str) -> bool:
        """Whether any queued or active migration covers ``covers_probe``."""
        for m in ([self._active] if self._active else []) + self._queue:
            if m.covers(covers_probe):
                return True
        return False

    def route_override(self, key: str) -> Optional[int]:
        """The *source* shard for a key still mid-handoff, else ``None``.

        Ring-based clusters route through this before the new ring: until a
        migration commits, its keys are authoritative at the old owner.
        """
        for m in ([self._active] if self._active else []) + self._queue:
            if m.covers(key):
                return m.source
        return None

    def io_for(self, shard: int) -> ShardIo:
        if shard not in self._io:
            self._io[shard] = ShardIo()
        return self._io[shard]

    # -- foreground coupling -----------------------------------------------------

    def note_write(self, key: str) -> None:
        """A foreground write landed; if it hit the moving range, it becomes
        catch-up work."""
        m = self._active
        if m and m.state in ("copying", "catchup") and m.covers(key):
            m.mods += 1

    def frozen_shard(self, key: str, now: float) -> Optional[int]:
        """The source shard index if ``key`` is inside a commit critical
        section at ``now``, else ``None``."""
        m = self._active
        if (m and m.state == "committing"
                and m.commit_start <= now < m.commit_end
                and m.covers(key)):
            return m.source
        return None

    def op_cost(self, shard: int, now: float) -> float:
        """Queueing (behind copy traffic) + utilization-inflated disk service
        one foreground op pays at ``shard``."""
        io = self._io.get(shard)
        wait = io.wait(now) if io else 0.0
        rho = min(MAX_UTILIZATION,
                  self.offered_load * self.base_shards * self._share_fn(shard))
        return wait + FOREGROUND_SERVICE_S / (1.0 - rho)

    # -- the clock -------------------------------------------------------------

    def advance(self, now: float) -> None:
        """Make all migration progress due by ``now``."""
        self._now = max(self._now, now)
        while True:
            if self._active is None:
                if not self._queue:
                    return
                self._active = self._queue.pop(0)
                self._begin(self._active, now)
            if not self._step(self._active, now):
                return

    def _begin(self, m: Migration, now: float) -> None:
        m.state = "copying"
        m.copy_started = max(now, m.queued_at)
        m.next_batch_at = m.copy_started
        m.to_copy = m.count_docs()

    def _occupy_pair(self, source: int, target: int, start: float,
                     seconds: float) -> tuple[float, float]:
        """Occupy both shards' FIFOs for one transfer; returns (begin, end)."""
        src, dst = self.io_for(source), self.io_for(target)
        begin = max(start, src.busy_until, dst.busy_until)
        end = begin + seconds
        src.busy_until = dst.busy_until = end
        src.busy_seconds += seconds
        dst.busy_seconds += seconds
        return begin, end

    def _step(self, m: Migration, now: float) -> bool:
        """One state-machine step; returns False when blocked until after
        ``now``."""
        if m.state == "copying":
            if m.in_flight is not None:
                done_at, docs = m.in_flight
                if now < done_at:
                    return False
                m.copied += docs
                m.in_flight = None
                return True
            if m.copied < m.to_copy:
                if now < m.next_batch_at:
                    return False
                docs = min(COPY_BATCH_DOCS, m.to_copy - m.copied)
                begin, end = self._occupy_pair(
                    m.source, m.target, m.next_batch_at,
                    docs * PER_DOC_COPY_S)
                m.in_flight = (end, docs)
                m.batches += 1
                # Idle gap after the batch keeps the duty cycle == throttle.
                m.next_batch_at = begin + docs * PER_DOC_COPY_S / self.throttle
                return True
            m.copy_done = max(m.copy_started, now)
            m.state = "catchup"
            if m.mods:
                _, end = self._occupy_pair(
                    m.source, m.target, m.copy_done,
                    m.mods * CATCHUP_PER_MOD_S / self.throttle)
                m.catchup_done = end
            else:
                m.catchup_done = m.copy_done
            return True
        if m.state == "catchup":
            if now < m.catchup_done:
                return False
            m.state = "committing"
            m.commit_start = m.catchup_done
            m.commit_end = m.commit_start + COMMIT_CRITICAL_S
            return True
        if m.state == "committing":
            if now < m.commit_end:
                return False
            try:
                m.moved_docs = m.commit()
            except ServerCrashed:
                # Abort: ownership stays at the source; retry the commit
                # window after the back-off (nothing acknowledged is lost).
                m.aborts += 1
                m.commit_start = now + MIGRATION_RETRY_S
                m.commit_end = m.commit_start + COMMIT_CRITICAL_S
                return True
            m.state = "done"
            m.committed_at = m.commit_end
            self.completed.append(m)
            self.completed_at = m.commit_end
            self._active = None
            self._emit_spans(m)
            if self.metrics:
                self.metrics.counter("docstore.migrations").inc()
                self.metrics.counter("docstore.migrated_docs").inc(
                    m.moved_docs)
                if m.aborts:
                    self.metrics.counter(
                        "docstore.migration_aborts").inc(m.aborts)
            return True
        return False

    def _emit_spans(self, m: Migration) -> None:
        if not self.tracer:
            return
        lane = f"{m.source}->{m.target}"
        copy = self.tracer.add(
            "migration.copy", m.copy_started, m.copy_done,
            cat="migration", node="balancer", lane=lane,
            label=m.label, docs=m.to_copy, batches=m.batches,
        )
        prev = copy
        if m.catchup_done > m.copy_done:
            catchup = self.tracer.add(
                "migration.catchup", m.copy_done, m.catchup_done,
                cat="migration", node="balancer", lane=lane,
                label=m.label, mods=m.mods,
            )
            self.tracer.link(prev, catchup, "seq")
            prev = catchup
        commit = self.tracer.add(
            "migration.commit", m.commit_start, m.commit_end,
            cat="migration", node="balancer", lane=lane,
            label=m.label, docs=m.moved_docs, aborts=m.aborts,
        )
        self.tracer.link(prev, commit, "seq")
        if self._last_commit_span is not None:
            # Migrations run one at a time: each commit hands the engine to
            # the next migration's copy — the chain critpath walks.
            self.tracer.link(self._last_commit_span, copy, "handoff")
        self._last_commit_span = commit

    def _next_event_time(self, now: float) -> float:
        m = self._active
        if m is None:
            return now
        if m.state == "copying":
            if m.in_flight is not None:
                return m.in_flight[0]
            return max(now, m.next_batch_at)
        if m.state == "catchup":
            return m.catchup_done
        if m.state == "committing":
            return m.commit_end
        return now

    def run_to_completion(self, now: float) -> float:
        """Advance the virtual clock until every migration commits.

        Used after the op stream ends so time-to-rebalance is well defined
        even when the workload finishes mid-migration.  Aborted commits keep
        retrying; a shard that never comes back makes the plan unfinishable,
        which surfaces as the guard error rather than an infinite loop.
        """
        t = max(now, self._now)
        for _ in range(1_000_000):
            self.advance(t)
            if self.idle:
                return t
            nxt = self._next_event_time(t)
            t = nxt if nxt > t else t + 1e-3
        raise SimulationError(
            "migrations did not complete (is a shard permanently down?)")

    def stats(self) -> dict:
        return {
            "migrations": self.migrations,
            "moved_docs": self.moved_docs,
            "aborted_commits": self.aborted_commits,
            "batches": sum(m.batches for m in self.completed),
            "mods_replayed": sum(m.mods for m in self.completed),
            "time_to_rebalance": self.time_to_rebalance,
            "copy_busy_seconds": round(
                sum(io.busy_seconds for io in self._io.values()), 9),
        }

"""A mongostat-style monitor over the functional mongod processes.

The paper diagnosed workload A with mongostat ("the percentage of time spent
at the global lock ranges from 25%-45% at each one of the 128 mongod
instances").  This module computes the same per-process statistics from the
:class:`~repro.docstore.mongod.GlobalLock` counters, plus cluster-wide
summaries the examples and tests consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.docstore.mongod import Mongod

# The paper's workload A observation (Section 5.3): "the percentage of time
# spent at the global lock ranges from 25%-45% at each one of the 128 mongod
# instances".  This is the single authority for that band — the bottleneck
# report and the tests both import it rather than restating the numbers.
PAPER_LOCK_BAND = (25.0, 45.0)


def in_paper_lock_band(lock_percent: float) -> bool:
    """Is a global-lock occupancy percentage inside the paper's band?"""
    low, high = PAPER_LOCK_BAND
    return low <= lock_percent <= high


@dataclass(frozen=True)
class MongodStats:
    """One row of mongostat output for one mongod process."""

    name: str
    ops: int
    reads: int
    writes: int
    bytes_stored: int

    @property
    def write_fraction(self) -> float:
        return self.writes / self.ops if self.ops else 0.0

    def lock_percent(self, avg_write_hold: float, elapsed: float) -> float:
        """Estimated % of elapsed time the global write lock was held."""
        if elapsed <= 0:
            return 0.0
        return min(100.0, 100.0 * self.writes * avg_write_hold / elapsed)

    def lock_in_paper_band(self, avg_write_hold: float, elapsed: float) -> bool:
        """Does the estimated lock occupancy fall in the paper's 25-45% band?"""
        return in_paper_lock_band(self.lock_percent(avg_write_hold, elapsed))


def snapshot(mongod: Mongod) -> MongodStats:
    """Read one process's counters (non-destructive)."""
    return MongodStats(
        name=mongod.name,
        ops=mongod.ops,
        reads=mongod.lock.read_acquisitions,
        writes=mongod.lock.write_acquisitions,
        bytes_stored=mongod.bytes_stored,
    )


def cluster_snapshot(shards: list[Mongod]) -> list[MongodStats]:
    return [snapshot(m) for m in shards]


@dataclass(frozen=True)
class ClusterSummary:
    """Aggregate view across all mongod processes."""

    total_ops: int
    total_reads: int
    total_writes: int
    hottest_shard: str
    hottest_share: float  # fraction of all ops on the busiest process
    imbalance: float  # max ops / mean ops


def summarize(shards: list[Mongod]) -> ClusterSummary:
    stats = cluster_snapshot(shards)
    total_ops = sum(s.ops for s in stats)
    hottest = max(stats, key=lambda s: s.ops)
    mean_ops = total_ops / len(stats) if stats else 0.0
    return ClusterSummary(
        total_ops=total_ops,
        total_reads=sum(s.reads for s in stats),
        total_writes=sum(s.writes for s in stats),
        hottest_shard=hottest.name,
        hottest_share=hottest.ops / total_ops if total_ops else 0.0,
        imbalance=hottest.ops / mean_ops if mean_ops else 0.0,
    )


def format_mongostat(shards: list[Mongod], top: int = 8) -> str:
    """Render a mongostat-like table for the busiest processes."""
    stats = sorted(cluster_snapshot(shards), key=lambda s: s.ops, reverse=True)
    lines = [f"{'process':>12} {'ops':>8} {'reads':>8} {'writes':>8} {'w%':>6}"]
    for s in stats[:top]:
        lines.append(
            f"{s.name:>12} {s.ops:>8} {s.reads:>8} {s.writes:>8} "
            f"{100 * s.write_fraction:>5.1f}%"
        )
    return "\n".join(lines)

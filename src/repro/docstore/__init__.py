"""MongoDB 1.8 model: BSON, mongod, chunks/balancer, and the two clusters."""

from repro.docstore.bson import decode, encode, encoded_size
from repro.docstore.chunks import Balancer, Chunk, ConfigServer
from repro.docstore.cluster import (
    DEFAULT_COLLECTION,
    MongoAsCluster,
    MongoCsCluster,
    hash_shard,
)
from repro.docstore.journal import Journal, JournaledMongod
from repro.docstore.mongod import Collection, GlobalLock, Mongod
from repro.docstore.mongostat import format_mongostat, snapshot, summarize
from repro.docstore.reshard import MigrationEngine
from repro.docstore.ring import HashRing, moved_keys, vnode_point
from repro.docstore.wire import WireServer

__all__ = [
    "decode",
    "encode",
    "encoded_size",
    "Balancer",
    "Chunk",
    "ConfigServer",
    "DEFAULT_COLLECTION",
    "MongoAsCluster",
    "MongoCsCluster",
    "hash_shard",
    "Collection",
    "GlobalLock",
    "Mongod",
    "Journal",
    "JournaledMongod",
    "MigrationEngine",
    "HashRing",
    "moved_keys",
    "vnode_point",
    "format_mongostat",
    "snapshot",
    "summarize",
    "WireServer",
]

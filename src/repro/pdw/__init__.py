"""PDW model: catalog (Table 1 physical design) and the parallel engine."""

from repro.pdw.catalog import (
    DISTRIBUTION_COLUMNS,
    DISTRIBUTIONS_PER_NODE,
    REPLICATED,
    REPLICATED_TABLES,
    distribution_of,
    total_distributions,
)
from repro.pdw.engine import PdwEngine, PdwParams, PdwQueryResult, PdwStep

__all__ = [
    "DISTRIBUTION_COLUMNS",
    "DISTRIBUTIONS_PER_NODE",
    "REPLICATED",
    "REPLICATED_TABLES",
    "distribution_of",
    "total_distributions",
    "PdwEngine",
    "PdwParams",
    "PdwQueryResult",
    "PdwStep",
]

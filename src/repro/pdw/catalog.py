"""PDW catalog: the Table-1 physical design (distributions and replication).

Every hash-distributed table has 8 distributions per compute node (128 across
the cluster); nation and region are replicated everywhere, which is what lets
PDW run dimension joins locally.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError

DISTRIBUTIONS_PER_NODE = 8

# Hash-distribution column per table (the paper's Table 1, PDW side).
DISTRIBUTION_COLUMNS: dict[str, str] = {
    "customer": "c_custkey",
    "lineitem": "l_orderkey",
    "orders": "o_orderkey",
    "part": "p_partkey",
    "partsupp": "ps_partkey",
    "supplier": "s_suppkey",
}

REPLICATED_TABLES = frozenset({"nation", "region"})

REPLICATED = "@replicated"  # sentinel partition state


def distribution_of(table: str) -> str:
    """Partition state of a base table: a column name or ``REPLICATED``."""
    if table in REPLICATED_TABLES:
        return REPLICATED
    if table in DISTRIBUTION_COLUMNS:
        return DISTRIBUTION_COLUMNS[table]
    raise ConfigurationError(f"table {table!r} is not in the PDW catalog")


def total_distributions(nodes: int) -> int:
    return nodes * DISTRIBUTIONS_PER_NODE

"""Cost-based join-order enumeration — the optimization Hive lacked.

Section 3.3.4.1: "the PDW optimizer computes a query plan, and splits the
query into sub-queries using cost-based methods that minimize network
transfers ... Hive on the other hand does not use any cost-based model; the
order of the joins is determined by the way the user wrote the query."

This module makes that difference executable: given a query's join edges and
the calibrated base-table cardinalities, it enumerates bushy-free (left-deep)
join orders by dynamic programming over connected subsets, estimating
intermediate cardinalities with the classic independence assumption
``|A join B| = |A| x |B| / max(distinct keys)``.  The result ranks the
as-written order against the optimum — quantifying how much Hive leaves on
the table per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.common.errors import PlanError


@dataclass(frozen=True)
class Relation:
    """One join input: a name and its (filtered) cardinality."""

    name: str
    rows: float

    def __post_init__(self):
        if self.rows <= 0:
            raise PlanError(f"{self.name}: cardinality must be positive")


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join between two relations with the join key's domain size."""

    left: str
    right: str
    key_domain: float  # number of distinct join-key values

    def connects(self, a: frozenset, b: frozenset) -> bool:
        return (self.left in a and self.right in b) or (
            self.right in a and self.left in b
        )


@dataclass
class OrderResult:
    """A join order and its estimated cost."""

    order: tuple[str, ...]
    intermediate_rows: float  # sum of all intermediate cardinalities

    def __lt__(self, other: "OrderResult") -> bool:
        return self.intermediate_rows < other.intermediate_rows


class JoinGraph:
    """Relations plus join edges; enumerates and costs left-deep orders."""

    def __init__(self, relations: list[Relation], edges: list[JoinEdge]):
        if len(relations) < 2:
            raise PlanError("need at least two relations")
        self.relations = {r.name: r for r in relations}
        if len(self.relations) != len(relations):
            raise PlanError("duplicate relation names")
        for edge in edges:
            for name in (edge.left, edge.right):
                if name not in self.relations:
                    raise PlanError(f"edge references unknown relation {name!r}")
        self.edges = list(edges)

    def _edges_between(self, a: frozenset, b: frozenset) -> list[JoinEdge]:
        return [e for e in self.edges if e.connects(a, b)]

    def estimate_join_rows(self, rows_a: float, rows_b: float,
                           joining: list[JoinEdge]) -> float:
        """Independence-assumption cardinality of joining two subresults."""
        if not joining:
            return rows_a * rows_b  # cross product
        result = rows_a * rows_b
        for edge in joining:
            result /= max(1.0, edge.key_domain)
        return max(1.0, result)

    def cost_order(self, order: list[str]) -> OrderResult:
        """Cost one left-deep order: sum of intermediate cardinalities."""
        if sorted(order) != sorted(self.relations):
            raise PlanError("order must mention each relation exactly once")
        joined = frozenset([order[0]])
        rows = self.relations[order[0]].rows
        total_intermediate = 0.0
        for name in order[1:]:
            edges = self._edges_between(joined, frozenset([name]))
            rows = self.estimate_join_rows(rows, self.relations[name].rows, edges)
            joined = joined | {name}
            total_intermediate += rows
        return OrderResult(order=tuple(order), intermediate_rows=total_intermediate)

    def best_order(self) -> OrderResult:
        """DP over connected subsets: the cheapest left-deep order.

        Classic System-R style enumeration restricted to left-deep trees and
        (where possible) connected expansions, which is what PDW's optimizer
        searches for these star/chain-shaped TPC-H queries.
        """
        names = sorted(self.relations)
        # best[subset] = (cost of intermediates, rows, last order tuple)
        best: dict[frozenset, tuple[float, float, tuple[str, ...]]] = {}
        for name in names:
            best[frozenset([name])] = (0.0, self.relations[name].rows, (name,))

        for size in range(2, len(names) + 1):
            for subset in combinations(names, size):
                sset = frozenset(subset)
                candidates = []
                for name in subset:
                    rest = sset - {name}
                    if rest not in best:
                        continue
                    rest_cost, rest_rows, rest_order = best[rest]
                    edges = self._edges_between(rest, frozenset([name]))
                    if not edges and size < len(names):
                        continue  # avoid cross products until forced
                    rows = self.estimate_join_rows(
                        rest_rows, self.relations[name].rows, edges
                    )
                    candidates.append(
                        (rest_cost + rows, rows, rest_order + (name,))
                    )
                if candidates:
                    best[sset] = min(candidates)
        full = frozenset(names)
        if full not in best:
            raise PlanError("join graph is disconnected")
        cost, _rows, order = best[full]
        return OrderResult(order=order, intermediate_rows=cost)

    def penalty_of(self, as_written: list[str]) -> float:
        """How many times more intermediate rows the written order produces."""
        written = self.cost_order(as_written)
        optimal = self.best_order()
        return written.intermediate_rows / max(1.0, optimal.intermediate_rows)


def q5_join_graph(volumes, scale_factor: float) -> tuple[JoinGraph, list[str]]:
    """Q5's join graph from calibrated volumes, plus Hive's as-written order.

    Returns the graph and the order the Hive script uses (supplier side
    first) so callers can quantify the paper's Q5 analysis directly.
    """
    rows = lambda ref: volumes.rows(ref, scale_factor)
    relations = [
        Relation("region", 1.0),  # post-filter: one region (ASIA)
        Relation("nation", 25.0),
        Relation("supplier", rows("supplier")),
        Relation("customer", rows("customer")),
        Relation("orders", rows("q5.orders")),  # date-filtered
        Relation("lineitem", rows("lineitem")),
    ]
    edges = [
        JoinEdge("nation", "region", key_domain=5),
        JoinEdge("supplier", "nation", key_domain=25),
        JoinEdge("customer", "nation", key_domain=25),
        JoinEdge("orders", "customer", key_domain=rows("customer")),
        JoinEdge("lineitem", "orders", key_domain=rows("orders")),
        JoinEdge("lineitem", "supplier", key_domain=rows("supplier")),
    ]
    hive_order = ["region", "nation", "supplier", "lineitem", "orders", "customer"]
    return JoinGraph(relations, edges), hive_order

"""The PDW query engine model: cost-based data-movement planning.

For each join the optimizer considers keeping both sides local (when the
distribution columns already align with the join keys), shuffling the
misaligned side(s) through DMS, or replicating one side to every compute
node — and picks the cheapest, exactly the behaviour Section 3.3.4.1 credits
for Q5 (shuffle orders on o_custkey, keep lineitem local) and Q19 (replicate
the filtered part rows).

Costs come from three overlapping resources per step: disk I/O on compressed
pages (with a buffer-pool model that makes small scale factors memory
resident — the paper's explanation for the 34x speedup at SF 250), CPU at a
per-row rate, and the 1 GbE fabric for DMS movement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, PlanError
from repro.common.units import GB
from repro.pdw.catalog import REPLICATED, distribution_of
from repro.simcluster.profile import HardwareProfile, paper_testbed
from repro.tpch.plans import AggSpec, JoinSpec, QuerySpec, spec_for
from repro.tpch.volumes import Calibration, VolumeModel


@dataclass(frozen=True)
class PdwParams:
    """Tunables of the PDW installation and cost model."""

    storage_compression: float = 0.40  # page compression on disk
    memory_scan_bandwidth: float = 10.0 * GB  # per node, buffer-pool resident
    buffer_pool_fraction: float = 0.70  # 24 GB max server memory less DMS/plan headroom
    row_cpu_cost: float = 2.2e-6  # seconds per row per core, baseline work
    join_cpu_factor: float = 1.2  # hash build/probe vs plain predicate
    agg_cpu_factor: float = 1.5
    shuffle_width_factor: float = 0.35  # DMS moves projected columns only
    spill_memory_fraction: float = 0.5  # of cluster memory before joins spill
    allow_replicate: bool = True  # ablation: disable small-table replication
    step_overhead: float = 1.0
    plan_overhead: float = 2.0
    failover_overhead: float = 30.0  # detect failure, fail over, resubmit


@dataclass
class PdwStep:
    """One operation of a parallel plan with its resource times."""

    kind: str  # "scan" | "local_join" | "shuffle_join" | "replicate_join" | "agg" | "sort"
    name: str
    io_time: float = 0.0
    cpu_time: float = 0.0
    net_time: float = 0.0
    moved_bytes: float = 0.0
    note: str = ""

    def elapsed(self, overhead: float) -> float:
        # Disk, CPU, and DMS movement overlap within a step; the slowest
        # resource determines the step's duration.
        return max(self.io_time, self.cpu_time, self.net_time) + overhead


@dataclass
class PdwQueryResult:
    number: int
    scale_factor: float
    steps: list[PdwStep] = field(default_factory=list)
    plan_overhead: float = 0.0
    step_overhead: float = 0.0

    @property
    def total_time(self) -> float:
        return self.plan_overhead + sum(
            s.elapsed(self.step_overhead) for s in self.steps
        )

    @property
    def network_bytes(self) -> float:
        return sum(s.moved_bytes for s in self.steps)

    def step(self, name: str) -> PdwStep:
        for s in self.steps:
            if s.name == name:
                return s
        raise KeyError(f"no step {name!r} in {[s.name for s in self.steps]}")


class _CalibrationView:
    """Minimal calibration facade: lets a degraded (n-1 node) engine reuse an
    existing engine's volume model without re-running calibration."""

    def __init__(self, volumes: VolumeModel):
        self.volumes = volumes


@dataclass
class FaultedPdwResult:
    """Healthy-vs-faulted comparison of one PDW query under a node fault.

    PDW has no task-level recovery: a node failure aborts the running query
    and the whole query restarts once the appliance fails over — the cost
    amplification Section 2 contrasts with MapReduce's re-execute-one-task
    model.  Work done before the crash is pure waste.
    """

    number: int
    scale_factor: float
    healthy: PdwQueryResult
    faulted_total: float
    fault: dict = field(default_factory=dict)
    restarts: int = 0
    wasted_seconds: float = 0.0  # progress discarded by the abort

    @property
    def delay(self) -> float:
        return self.faulted_total - self.healthy.total_time


class PdwEngine:
    """Cost model for SQL Server PDW over the calibrated TPC-H volumes."""

    def __init__(
        self,
        calibration: Calibration,
        profile: HardwareProfile | None = None,
        params: PdwParams | None = None,
        cpu_weights: dict[int, float] | None = None,
    ):
        self.profile = profile or paper_testbed()
        self.params = params or PdwParams()
        self.volumes: VolumeModel = calibration.volumes
        self.cpu_weights = dict(cpu_weights or {})

    # -- resource rates ----------------------------------------------------------

    def scan_bandwidth(self, scale_factor: float) -> float:
        """Cluster-wide scan rate over compressed pages, buffer-pool aware.

        The pool behaves like a cliff, not a gradient: repeated full scans of
        a database larger than the pool thrash the LRU and hit disk for
        nearly every page.  This is the paper's SF 250 -> SF 1000 transition
        (e.g. Q6 jumps 5 s -> 41 s, an 8.2x step for 4x the data).
        """
        db_compressed = scale_factor * 1e9 * self.params.storage_compression
        pool = self.profile.cluster_memory * self.params.buffer_pool_fraction
        hot = 1.0 if db_compressed <= pool else 0.05
        per_node = (
            hot * self.params.memory_scan_bandwidth
            + (1.0 - hot) * self.profile.aggregate_disk_bandwidth
        )
        return self.profile.nodes * per_node

    @property
    def network_bandwidth(self) -> float:
        """Bisection bandwidth available to DMS."""
        return self.profile.nodes * self.profile.network_bandwidth

    @property
    def total_cores(self) -> int:
        return self.profile.nodes * self.profile.cores_per_node

    def _cpu(self, rows: float, number: int, factor: float = 1.0) -> float:
        weight = self.cpu_weights.get(number, 1.0)
        return rows * self.params.row_cpu_cost * factor * weight / self.total_cores

    # -- volume helpers ----------------------------------------------------------

    def _ref_volume(self, spec: QuerySpec, ref: str, sf: float):
        override = spec.pdw_volume_overrides.get(ref)
        return self.volumes.volume(override if override else ref, sf)

    def _moved_bytes(self, spec: QuerySpec, ref: str, sf: float) -> float:
        return self._ref_volume(spec, ref, sf).bytes * self.params.shuffle_width_factor

    # -- plan construction --------------------------------------------------------

    def _partition_of(self, spec: QuerySpec, ref: str, states: dict[str, str]) -> str:
        if ref in states:
            return states[ref]
        scan = spec.scan_for(ref)
        if scan is not None:
            return distribution_of(scan.table)
        # Aggregation outputs are produced already distributed on the key the
        # optimizer plans to join them on next.
        return "@aligned"

    def _scan_step(self, spec: QuerySpec, scan, sf: float, number: int) -> PdwStep:
        raw = self.volumes.volume(scan.table, sf)
        io = raw.bytes * self.params.storage_compression / self.scan_bandwidth(sf)
        cpu = self._cpu(raw.rows, number)
        return PdwStep(kind="scan", name=f"scan.{scan.ref}", io_time=io, cpu_time=cpu)

    def _join_step(
        self, spec: QuerySpec, join: JoinSpec, sf: float, number: int,
        states: dict[str, str],
    ) -> PdwStep:
        left_part = self._partition_of(spec, join.left, states)
        right_part = self._partition_of(spec, join.right, states)
        left_aligned = left_part in (join.left_key, REPLICATED, "@aligned")
        right_aligned = right_part in (join.right_key, REPLICATED, "@aligned")

        left_vol = self._ref_volume(spec, join.left, sf)
        right_vol = self._ref_volume(spec, join.right, sf)
        out_rows = self.volumes.rows(join.out, sf) if join.out else 1.0
        cpu = self._cpu(
            left_vol.rows + right_vol.rows + out_rows, number, self.params.join_cpu_factor
        )

        # A replicated input joins locally no matter how the other side is
        # distributed, and the output keeps the other side's distribution.
        if left_part == REPLICATED or right_part == REPLICATED:
            if join.out:
                if left_part == REPLICATED and right_part == REPLICATED:
                    states[join.out] = REPLICATED
                else:
                    states[join.out] = (
                        right_part if left_part == REPLICATED else left_part
                    )
            return PdwStep(
                kind="local_join",
                name=f"join.{join.out or join.left}",
                cpu_time=cpu,
                note="co-located join against a replicated table",
            )

        nodes = self.profile.nodes
        options: list[tuple[float, str, float]] = []  # (moved, kind, time)
        if left_aligned and right_aligned:
            options.append((0.0, "local_join", 0.0))
        else:
            moved = 0.0
            if not left_aligned:
                moved += self._moved_bytes(spec, join.left, sf)
            if not right_aligned:
                moved += self._moved_bytes(spec, join.right, sf)
            options.append((moved, "shuffle_join", moved / self.network_bandwidth))
            if self.params.allow_replicate:
                for side, vol_ref in (("left", join.left), ("right", join.right)):
                    moved = self._moved_bytes(spec, vol_ref, sf) * (nodes - 1)
                    options.append(
                        (moved, f"replicate_{side}", moved / self.network_bandwidth)
                    )

        moved, kind, net = min(options, key=lambda o: o[2])
        io = self._spill_io(
            (left_vol.bytes + right_vol.bytes) * self.params.shuffle_width_factor
        )
        if join.out:
            states[join.out] = join.left_key if kind != "replicate_left" else right_part
        note = {
            "local_join": "co-located join, no data movement",
            "shuffle_join": "DMS shuffle of misaligned side(s)",
            "replicate_left": f"replicated {join.left} to all nodes",
            "replicate_right": f"replicated {join.right} to all nodes",
        }[kind if not kind.startswith("replicate") else kind]
        return PdwStep(
            kind="local_join" if kind == "local_join" else kind,
            name=f"join.{join.out or join.left}",
            io_time=io,
            cpu_time=cpu,
            net_time=net,
            moved_bytes=moved,
            note=note,
        )

    def _spill_io(self, working_bytes: float) -> float:
        """Hash join/aggregate spill: working sets beyond memory hit disk twice."""
        budget = self.profile.cluster_memory * self.params.spill_memory_fraction
        spilled = max(0.0, working_bytes - budget)
        if spilled <= 0.0:
            return 0.0
        disk = self.profile.nodes * self.profile.aggregate_disk_bandwidth
        return 2.0 * spilled / disk

    def _agg_step(self, spec: QuerySpec, agg: AggSpec, sf: float, number: int) -> PdwStep:
        in_vol = self._ref_volume(spec, agg.input, sf)
        out_bytes = self.volumes.bytes(agg.out, sf) if agg.out else 4096.0
        cpu = self._cpu(in_vol.rows, number, self.params.agg_cpu_factor)
        net = out_bytes / self.network_bandwidth
        io = self._spill_io(out_bytes * self.params.shuffle_width_factor)
        return PdwStep(
            kind="agg",
            name=f"agg.{agg.out or agg.input}",
            io_time=io,
            cpu_time=cpu,
            net_time=net,
            moved_bytes=out_bytes,
            note="partial local aggregation + global re-aggregation",
        )

    # -- tracing ------------------------------------------------------------------

    def _emit_trace(self, result: PdwQueryResult, tracer, metrics) -> None:
        """Sequential step spans with DMS child spans, post-costing.

        PDW executes plan steps serially (DSQL step list); within a step the
        three resources overlap, so the step span is the max-resource
        elapsed time and the DMS movement appears as a child span on its own
        lane with the moved byte count.
        """
        query = tracer.add(
            f"pdw.q{result.number}", 0.0, result.total_time,
            cat="query", node="pdw", lane="query", sf=result.scale_factor,
        )
        cursor = result.plan_overhead
        prev_step_span = None
        for step in result.steps:
            elapsed = step.elapsed(result.step_overhead)
            step_span = tracer.add(
                f"step.{step.name}", cursor, cursor + elapsed,
                cat="step", node="pdw", lane="steps", parent=query.span_id,
                kind=step.kind, io_time=step.io_time, cpu_time=step.cpu_time,
                net_time=step.net_time,
                overhead=result.step_overhead,
            )
            if prev_step_span is not None:
                # DSQL steps are strictly serial: each waits on the last.
                tracer.link(prev_step_span, step_span, "step-seq")
            if step.moved_bytes > 0.0 and step.net_time > 0.0:
                dms_span = tracer.add(
                    f"dms.{step.name}", cursor, cursor + step.net_time,
                    cat="dms", node="pdw", lane="dms",
                    parent=step_span.span_id,
                    bytes=step.moved_bytes, kind=step.kind,
                )
                if prev_step_span is not None:
                    # The movement cannot start before the producing step
                    # finished — the DMS wait the what-if engine scales.
                    tracer.link(prev_step_span, dms_span, "dms-wait")
            prev_step_span = step_span
            cursor += elapsed
        if metrics:
            metrics.counter("pdw.steps").inc(len(result.steps))
            metrics.counter("pdw.dms_bytes").inc(result.network_bytes)
            for step in result.steps:
                metrics.counter(f"pdw.steps.{step.kind}").inc()

    def _emit_utilization(self, result: PdwQueryResult, sampler) -> None:
        """Feed the serial step layout into a utilization sampler.

        A step's three resource times overlap (the step elapses for the max
        of them), so each resource runs at ``time/elapsed`` mean intensity
        over the step window — the bound resource shows ~1.0 busy, the
        others proportionally less.  DMS movements also report the moved
        byte volume as a ``dms-inflight`` queue series over the network
        window, the reproduction's stand-in for DMS bytes in flight.
        """
        cursor = result.plan_overhead
        for step in result.steps:
            elapsed = step.elapsed(result.step_overhead)
            if elapsed > 0.0:
                for resource, busy_time in (
                    ("cpu", step.cpu_time),
                    ("disk", step.io_time),
                    ("network", step.net_time),
                ):
                    if busy_time > 0.0:
                        sampler.accumulate(
                            "pdw", resource, cursor, cursor + elapsed,
                            level=min(1.0, busy_time / elapsed),
                        )
                if step.moved_bytes > 0.0 and step.net_time > 0.0:
                    sampler.accumulate(
                        "pdw", "dms-inflight", cursor, cursor + step.net_time,
                        level=step.moved_bytes, metric="queue",
                    )
            cursor += elapsed
        sampler.finish(result.total_time)

    # -- public API ---------------------------------------------------------------

    def run_query(self, number: int, scale_factor: float,
                  tracer=None, metrics=None, sampler=None,
                  prof=None) -> PdwQueryResult:
        """Plan and cost one TPC-H query; returns the step breakdown.

        ``tracer``/``metrics``/``sampler`` (see :mod:`repro.obs`) record
        the data-movement breakdown; ``prof`` charges the engine's host
        time to the ``pdw.query`` subsystem counter.  All default to off.
        """
        if prof is not None:
            with prof.section("pdw.query"):
                return self._run_query_inner(
                    number, scale_factor, tracer, metrics, sampler, prof)
        return self._run_query_inner(
            number, scale_factor, tracer, metrics, sampler, None)

    def _run_query_inner(self, number, scale_factor, tracer, metrics,
                         sampler, prof) -> PdwQueryResult:
        spec = spec_for(number)
        result = PdwQueryResult(
            number=number,
            scale_factor=scale_factor,
            plan_overhead=self.params.plan_overhead,
            step_overhead=self.params.step_overhead,
        )
        states: dict[str, str] = {}
        for scan in spec.scans:
            if scan.table in ("nation", "region"):
                continue  # replicated tables: no parallel scan step needed
            result.steps.append(self._scan_step(spec, scan, scale_factor, number))
        for join in spec.joins:
            result.steps.append(
                self._join_step(spec, join, scale_factor, number, states)
            )
        for agg in spec.aggs:
            result.steps.append(self._agg_step(spec, agg, scale_factor, number))
        if spec.has_order_by:
            result.steps.append(
                PdwStep(kind="sort", name="sort", cpu_time=0.2,
                        note="control-node result ordering")
            )
        if tracer:
            if prof is not None:
                with prof.section("span.construct"):
                    self._emit_trace(result, tracer, metrics)
            else:
                self._emit_trace(result, tracer, metrics)
        if sampler:
            self._emit_utilization(result, sampler)
        return result

    # -- fault injection ----------------------------------------------------------

    def run_query_faulted(self, number: int, scale_factor: float, fault,
                          tracer=None, metrics=None,
                          sampler=None) -> FaultedPdwResult:
        """Re-cost one query under a node fault, with PDW's recovery semantics.

        ``fault`` is a :class:`repro.faults.plan.FaultSpec` (duck-typed) of
        kind ``crash`` or ``straggler``; ``fault.at`` <= 1 is a fraction of
        the healthy runtime, else absolute seconds.

        * **crash** — the query aborts; every second of progress is
          discarded.  After ``failover_overhead`` the whole query re-runs
          from scratch on the surviving ``n-1`` nodes (slower: less scan
          bandwidth, less DMS fabric).  This is the amplification the paper's
          Section 2 contrasts with MapReduce: lost work = *query* granularity,
          not task granularity.
        * **straggler** — no speculative execution: every parallel step
          overlapping the fault window runs at the slow node's pace
          (``fault.magnitude`` x).
        """
        if fault.kind not in ("crash", "straggler"):
            raise ConfigurationError(
                f"pdw fault injection handles crash/straggler, not {fault.kind!r}"
            )
        nodes = self.profile.nodes
        if not 0 <= fault.target_index() < nodes:
            raise ConfigurationError(
                f"fault targets node {fault.target_index()}, cluster has {nodes}"
            )
        if nodes < 2:
            raise ConfigurationError("need >= 2 nodes to survive a node fault")

        healthy = self.run_query(number, scale_factor)
        total = healthy.total_time
        at = fault.at * total if fault.at <= 1.0 else fault.at
        out = FaultedPdwResult(
            number=number, scale_factor=scale_factor, healthy=healthy,
            faulted_total=total,
            fault={"kind": fault.kind, "target": fault.target, "at": at},
        )

        if fault.kind == "crash":
            from dataclasses import replace as dc_replace

            degraded = PdwEngine(
                _CalibrationView(self.volumes),
                profile=dc_replace(self.profile, nodes=nodes - 1),
                params=self.params,
                cpu_weights=self.cpu_weights,
            )
            rerun = degraded.run_query(number, scale_factor).total_time
            out.restarts = 1
            out.wasted_seconds = at
            out.faulted_total = at + self.params.failover_overhead + rerun
            if tracer:
                tracer.add(
                    "pdw.aborted-attempt", 0.0, at, cat="fault", node="pdw",
                    lane="faults", wasted=at,
                )
                tracer.add(
                    f"fault.{fault.kind}", at, at, cat="fault", node="pdw",
                    lane="faults", target=fault.target,
                )
                tracer.add(
                    "pdw.query-restart", at + self.params.failover_overhead,
                    out.faulted_total, cat="fault", node="pdw", lane="faults",
                    surviving_nodes=nodes - 1,
                )
        else:  # straggler: the slow node gates every overlapping step
            window_end = at + fault.duration if fault.duration else total
            cursor = healthy.plan_overhead
            faulted = healthy.plan_overhead
            for step in healthy.steps:
                elapsed = step.elapsed(healthy.step_overhead)
                overlap = max(
                    0.0, min(cursor + elapsed, window_end) - max(cursor, at)
                )
                faulted += elapsed + overlap * (fault.magnitude - 1.0)
                cursor += elapsed
            out.faulted_total = faulted
            if tracer:
                tracer.add(
                    f"fault.{fault.kind}", at, min(window_end, total),
                    cat="fault", node="pdw", lane="faults",
                    target=fault.target, magnitude=fault.magnitude,
                )
        if sampler:
            sampler.accumulate("pdw", "fault-degraded", at, out.faulted_total,
                               level=1.0, capacity=1.0)
            sampler.finish(max(out.faulted_total, total))
        if metrics:
            metrics.counter("pdw.faults.injected").inc()
            metrics.counter("pdw.faults.query_restarts").inc(out.restarts)
        return out

    def query_time(self, number: int, scale_factor: float) -> float:
        return self.run_query(number, scale_factor).total_time

    def load_time(self, scale_factor: float) -> float:
        """Table 2's PDW load: dwloader splits text on the landing node.

        The landing node is the bottleneck (~54 MB/s effective end-to-end,
        calibrated at the 250 GB point), which is why PDW loads about twice
        as slowly as Hive at every scale factor.
        """
        nominal_bytes = scale_factor * 1e9
        return 120.0 + nominal_bytes / 54e6

    def validate_spec(self, number: int, scale_factor: float = 250.0) -> None:
        """Resolve every ref in a spec; raises PlanError on a missing volume."""
        spec = spec_for(number)
        for ref in spec.all_refs():
            override = spec.pdw_volume_overrides.get(ref, ref)
            self.volumes.volume(override, scale_factor)
        for scan in spec.scans:
            distribution_of(scan.table)
        if not spec.scans:
            raise PlanError(f"q{number}: spec has no scans")

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``dss`` — reproduce the DSS study (Tables 2-5, Figure 1);
* ``oltp`` — reproduce the YCSB study (Figures 2-6, load times);
* ``dbgen`` — generate TPC-H data and write dbgen-compatible ``.tbl`` files;
* ``query`` — execute one TPC-H query on generated data and print the answer;
* ``explain`` — show both engines' physical plans for one query;
* ``hiveql`` — execute a HiveQL statement on generated data;
* ``scorecard`` — paper-vs-model accuracy summary and claim checklist.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import ConfigurationError

#: Default burn-rate rules for --live-report: chaos runs live on a
#: compressed virtual clock (ops ~1 ms, elections ~250 ms), so the windows
#: are short by wall-clock standards.
DEFAULT_SLO_RULES = "p99<=25ms@100ms,200ms"


def _require_positive(value: float, flag: str) -> None:
    if value <= 0:
        raise ConfigurationError(f"{flag} must be > 0, got {value:g}")


def _parse_whatif_for(spec: str, family: str, context: str) -> dict:
    """Parse a --whatif spec and reject mechanisms of the wrong engine family."""
    from repro.obs import MECHANISMS, parse_whatif

    scales = parse_whatif(spec)
    wrong = sorted(n for n in scales if MECHANISMS[n][0] != family)
    if wrong:
        applicable = ", ".join(
            sorted(n for n, (fam, _) in MECHANISMS.items() if fam == family)
        )
        raise ConfigurationError(
            f"--whatif mechanism(s) {', '.join(wrong)} do not apply to "
            f"{context}; applicable: {applicable}"
        )
    return scales


def _parse_query_list(spec: str, flag: str) -> list[int]:
    """Parse a comma-separated TPC-H query list like ``1,22``."""
    from repro.tpch.queries import QUERY_NUMBERS

    numbers: list[int] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            number = int(chunk)
        except ValueError:
            raise ConfigurationError(
                f"malformed {flag} entry {chunk!r}: expected a query number"
            ) from None
        if number not in QUERY_NUMBERS:
            raise ConfigurationError(
                f"{flag} query {number} is not a TPC-H query "
                f"({min(QUERY_NUMBERS)}-{max(QUERY_NUMBERS)})"
            )
        if number not in numbers:
            numbers.append(number)
    if not numbers:
        raise ConfigurationError(f"empty {flag} list")
    return numbers


def _profiling_enabled(args) -> bool:
    """Any of the --profile family turns the self-profiler on."""
    return bool(args.profile or args.profile_report
                or args.profile_speedscope or args.profile_folded)


def _profile_outputs(args, prof, scenario: dict) -> None:
    """Shared --profile-report/--profile-speedscope/--profile-folded handling."""
    from repro.obs import (
        build_prof_report,
        render_prof_report,
        validate_prof_report,
        write_folded,
        write_prof_report,
        write_speedscope,
    )

    prof.stop()
    report = build_prof_report(prof, scenario)
    validate_prof_report(report)
    print(render_prof_report(report))
    if args.profile_report:
        write_prof_report(report, args.profile_report)
        print(f"wrote profile -> {args.profile_report}")
    if args.profile_speedscope:
        write_speedscope(prof, args.profile_speedscope)
        print(f"wrote speedscope profile -> {args.profile_speedscope}")
    if args.profile_folded:
        stacks = write_folded(prof, args.profile_folded)
        print(f"wrote {stacks} folded stacks -> {args.profile_folded}")


def _cmd_compare(args) -> int:
    """Top-level ``--compare A B``: diff two report files (repro-compare/1)."""
    from repro.obs import (
        compare_files,
        render_compare_report,
        validate_compare_report,
        write_compare_report,
    )

    report = compare_files(args.compare[0], args.compare[1])
    validate_compare_report(report)
    print(render_compare_report(report))
    if args.compare_report:
        write_compare_report(report, args.compare_report)
        print(f"wrote compare report -> {args.compare_report}")
    return 0


def _fault_outputs(args, report, tracer, metrics, sampler) -> None:
    """Shared --fault-report/--trace/--metrics/--utilization handling."""
    from repro.faults.report import render_fault_report, write_fault_report
    from repro.obs import (
        sparkline_heatmap,
        write_chrome_trace,
        write_metrics,
        write_series_csv,
    )

    print(render_fault_report(report))
    if args.fault_report:
        write_fault_report(report, args.fault_report)
        print(f"wrote fault report -> {args.fault_report}")
    if args.trace:
        count = write_chrome_trace(args.trace, tracer, metrics, sampler=sampler)
        print(f"wrote {count} trace events -> {args.trace}")
    if args.metrics:
        write_metrics(args.metrics, metrics)
        print(f"wrote metrics -> {args.metrics}")
    if args.utilization == "-" and sampler is not None:
        print(sparkline_heatmap(sampler))
    elif args.utilization is not None:
        rows = write_series_csv(args.utilization, sampler)
        print(f"wrote {rows} utilization rows -> {args.utilization}")


def _dss_faults(args, study) -> int:
    from repro.faults import FaultPlan
    from repro.faults.report import dss_fault_report
    from repro.obs import MetricsRegistry, Tracer, UtilizationSampler

    plan = FaultPlan.parse(args.faults, seed=args.seed)
    tracer, metrics = Tracer(), MetricsRegistry()
    sampler = UtilizationSampler() if args.utilization is not None else None
    report = dss_fault_report(
        study, args.trace_query, args.trace_sf, plan,
        tracer=tracer, metrics=metrics, sampler=sampler,
    )
    _fault_outputs(args, report, tracer, metrics, sampler)
    return 0


def _oltp_replication(args):
    """Parse --replication (and a single --write-concern) for a faulted run."""
    if not args.replication:
        return None
    from repro.replication.config import ReplicationConfig
    from repro.replication.writeconcern import WriteConcern

    config = ReplicationConfig.parse(args.replication)
    if config is not None and args.write_concern:
        config = config.with_concern(WriteConcern.parse(args.write_concern))
    return config


def _oltp_faults(args, study) -> int:
    from repro.faults import FaultPlan
    from repro.faults.report import oltp_fault_report
    from repro.obs import MetricsRegistry, Tracer, UtilizationSampler

    workload = args.workload if args.workload != "all" else "A"
    plan = FaultPlan.parse(args.faults, seed=args.seed)
    tracer, metrics = Tracer(), MetricsRegistry()
    sampler = (UtilizationSampler(interval=0.5)
               if args.utilization is not None else None)
    report = oltp_fault_report(
        plan, workload=workload, system=args.system, target=args.target,
        duration=args.duration, study=study,
        replication=_oltp_replication(args),
        tracer=tracer, metrics=metrics, sampler=sampler,
    )
    _fault_outputs(args, report, tracer, metrics, sampler)
    return 0


def _oltp_availability(args) -> int:
    """Chaos sweep + acknowledged-write audit (repro-availability/1)."""
    from repro.faults.availability import (
        availability_report,
        render_availability_report,
        validate_availability_report,
        write_availability_report,
    )
    from repro.faults.chaos import ChaosConfig
    from repro.replication.config import ReplicationConfig
    from repro.replication.writeconcern import parse_concern_list

    chaos = (ChaosConfig() if args.chaos in (None, "default", "on")
             else ChaosConfig.parse(args.chaos))
    replication = (ReplicationConfig.parse(args.replication)
                   if args.replication else None)
    if args.replication and replication is None:
        raise ConfigurationError(
            "the chaos sweep needs replication enabled; "
            "drop '--replication off'"
        )
    concerns = (parse_concern_list(args.write_concern)
                if args.write_concern else None)
    workload = args.workload if args.workload != "all" else "A"
    report = availability_report(
        concerns=concerns, chaos=chaos, workload=workload,
        operations=args.operations, seed=args.seed,
        replication=replication, overload=_overload_policy(args),
    )
    validate_availability_report(report)
    print(render_availability_report(report))
    if args.availability_report:
        write_availability_report(report, args.availability_report)
        print(f"wrote availability report -> {args.availability_report}")
    # Exit 0 only while the acknowledged-write safety invariant holds.
    return 0 if report["invariant_ok"] else 1


def _oltp_reshard(args) -> int:
    """Elastic resharding under live traffic (repro-reshard/1)."""
    from repro.faults.chaos import ChaosConfig
    from repro.faults.reshard import (
        render_reshard_report,
        reshard_report,
        validate_reshard_report,
        write_reshard_report,
    )
    from repro.replication.config import ReplicationConfig
    from repro.replication.writeconcern import WriteConcern

    reshard = args.reshard or "scale:shards=6@0.3"
    chaos = (None if args.chaos is None
             else ChaosConfig() if args.chaos in ("default", "on")
             else ChaosConfig.parse(args.chaos))
    concern = (WriteConcern.parse(args.write_concern)
               if args.write_concern else None)
    replication = (ReplicationConfig.parse(args.replication)
                   if args.replication else None)
    if not 0.0 < args.reshard_throttle <= 1.0:
        raise ConfigurationError(
            "--reshard-throttle must be in (0, 1]"
        )
    workload = args.workload if args.workload != "all" else "A"
    report = reshard_report(
        reshard=reshard, throttle=args.reshard_throttle, chaos=chaos,
        concern=concern, workload=workload, operations=args.operations,
        seed=args.seed, replication=replication,
    )
    validate_reshard_report(report)
    print(render_reshard_report(report))
    if args.reshard_report:
        write_reshard_report(report, args.reshard_report)
        print(f"wrote reshard report -> {args.reshard_report}")
    # Exit 0 only while no acked write was lost across a migration.
    return 0 if report["invariant_ok"] else 1


def _oltp_live(args) -> int:
    """One chaos run watched live (repro-live/1): dashboard + SLO alerts."""
    from repro.core.oltp import OltpStudy
    from repro.obs import (
        SpanSamplePolicy,
        parse_slo_rules,
        render_live_report,
        validate_live_report,
        write_live_report,
    )

    # Specs are parsed before the run so a typo is a one-line exit 2.
    rules = parse_slo_rules(args.slo_rules)
    span_sample = (SpanSamplePolicy.parse(args.span_sample)
                   if args.span_sample else None)
    chaos = (None if args.chaos in (None, "default", "on") else args.chaos)
    workload = args.workload if args.workload != "all" else "A"
    study = OltpStudy(isolation=args.isolation)
    prof = None
    if _profiling_enabled(args):
        from repro.obs import ProfiledRun

        prof = ProfiledRun().start()
    report = study.live_report(
        args.system, concern=args.write_concern or "safe",
        workload=workload, slo_rules=rules, slice_s=args.live_slice,
        chaos=chaos, operations=args.operations, seed=args.seed,
        replication=_oltp_replication(args), span_sample=span_sample,
        prof=prof,
    )
    validate_live_report(report)
    if prof is not None:
        with prof.section("report.render"):
            rendered = render_live_report(report)
    else:
        rendered = render_live_report(report)
    print(rendered)
    if args.live_report != "-":
        write_live_report(report, args.live_report)
        print(f"wrote live report -> {args.live_report}")
    if prof is not None:
        _profile_outputs(args, prof, {
            "kind": "oltp-live", "system": args.system, "workload": workload,
            "chaos": chaos or "default", "operations": args.operations,
            "seed": args.seed,
        })
    return 0


def _overload_policy(args):
    """Parse --overload into an OverloadPolicy (None when the flag is off)."""
    if not (getattr(args, "overload", None) or
            getattr(args, "overload_report", None)):
        return None
    from repro.overload import OverloadPolicy

    return OverloadPolicy.parse(args.overload or "default")


def _oltp_overload(args) -> int:
    """``oltp --overload``: graceful degradation under overload.

    Without a fault plan (or with a station-level one) this runs the
    metastable-failure demonstration — the same transient trigger with and
    without protection — and exits 0 only when the contrast holds.  A
    shard-level ``--faults`` plan runs the functional breaker cell instead.
    """
    from repro.overload import (
        functional_overload_cell,
        overload_report,
        render_overload_report,
        validate_overload_report,
        write_overload_report,
    )

    policy = _overload_policy(args)
    workload = args.workload if args.workload != "all" else "A"
    plan = None
    if args.faults:
        from repro.faults import FaultPlan

        plan = FaultPlan.parse(args.faults, seed=args.seed)

    if plan is not None and (plan.shard_faults or plan.member_faults):
        import json

        cell = functional_overload_cell(
            plan, policy, system=args.system, workload=workload,
            replication=_oltp_replication(args),
        )
        contrast = cell["contrast"]
        print(
            f"overload cell [{args.system}] plan {plan.spec_string()}  "
            f"policy {policy.spec_string()}"
        )
        print(
            f"  backoff {cell['unprotected']['backoff_seconds']:g}s -> "
            f"{cell['protected']['backoff_seconds']:g}s "
            f"(saved {contrast['backoff_saved_seconds']:g}s)  "
            f"breaker trips {contrast['breaker_trips']}  "
            f"shed {cell['protected']['shed']}"
        )
        if args.overload_report:
            with open(args.overload_report, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(cell, sort_keys=True,
                                        separators=(",", ":")) + "\n")
            print(f"wrote overload cell -> {args.overload_report}")
        return 0

    live = None
    if args.live_report is not None:
        from repro.obs import LiveTelemetry, parse_slo_rules

        live = LiveTelemetry(slice_s=args.live_slice,
                             rules=parse_slo_rules(args.slo_rules))
    demo_kwargs = {"seed": args.seed, "live": live}
    if plan is not None:
        demo_kwargs["plan"] = args.faults
    report = overload_report(policy, **demo_kwargs)
    validate_overload_report(report)
    print(render_overload_report(report))
    if args.overload_report:
        write_overload_report(report, args.overload_report)
        print(f"wrote overload report -> {args.overload_report}")
    if live is not None:
        from repro.obs import (
            build_live_report,
            render_live_report,
            validate_live_report,
            write_live_report,
        )

        live_doc = build_live_report(live, {
            "kind": "overload-demo", "workload": "read-only",
            "policy": policy.spec_string(),
            "plan": demo_kwargs.get("plan", "default"),
            "seed": args.seed,
        })
        validate_live_report(live_doc)
        print(render_live_report(live_doc))
        if args.live_report != "-":
            write_live_report(live_doc, args.live_report)
            print(f"wrote live report -> {args.live_report}")
    # Exit 0 only when the metastable contrast demonstrably holds.
    return 0 if report["contrast"]["metastable_demonstrated"] else 1


def _cmd_dss(args) -> int:
    from repro.core.dss import DssStudy
    from repro.core.report import (
        render_figure1,
        render_table2,
        render_table3,
        render_table4,
        render_table5,
    )

    _require_positive(args.calibration_sf, "--calibration-sf")
    _require_positive(args.trace_sf, "--trace-sf")
    if args.fault_report and not args.faults:
        raise ConfigurationError("--fault-report requires --faults")
    if args.whatif_report and not args.whatif:
        raise ConfigurationError("--whatif-report requires --whatif")
    if args.decompose_report and not args.decompose:
        raise ConfigurationError("--decompose-report requires --decompose")
    # Specs are validated before the (slow) study construction so a typo
    # fails fast with the one-line exit-2 convention.
    whatif_scales = (
        _parse_whatif_for(args.whatif, args.engine, f"engine {args.engine}")
        if args.whatif else None
    )
    decompose_numbers = (
        _parse_query_list(args.decompose, "--decompose")
        if args.decompose else None
    )
    profiling = _profiling_enabled(args)
    if profiling and args.faults:
        raise ConfigurationError("--profile does not compose with --faults")
    study = DssStudy(calibration_sf=args.calibration_sf, seed=args.seed)
    if args.faults:
        return _dss_faults(args, study)
    observing = (args.trace or args.metrics or args.timeline
                 or args.utilization is not None or args.bottlenecks
                 or args.critical_path is not None or args.whatif
                 or profiling)
    if decompose_numbers:
        from repro.obs import render_decomposition, write_decomposition

        report = study.decomposition(decompose_numbers)
        print(render_decomposition(report))
        if args.decompose_report:
            write_decomposition(report, args.decompose_report)
            print(f"wrote decomposition -> {args.decompose_report}")
        if not observing:
            return 0
        print()
    if observing:
        from repro.obs import (
            UtilizationSampler,
            ascii_timeline,
            render_report,
            sparkline_heatmap,
            write_chrome_trace,
            write_metrics,
            write_series_csv,
        )

        sampler = None
        if args.utilization is not None or args.bottlenecks:
            sampler = UtilizationSampler()
        prof = None
        if profiling:
            from repro.obs import ProfiledRun

            prof = ProfiledRun().start()
        result, tracer, metrics = study.trace_query(
            args.trace_query, args.trace_sf, engine=args.engine,
            sampler=sampler, prof=prof,
        )
        print(
            f"{args.engine} q{args.trace_query} @ SF {args.trace_sf:g}: "
            f"{result.total_time:.1f} s simulated, {len(tracer.spans)} spans"
        )
        if args.trace:
            count = write_chrome_trace(args.trace, tracer, metrics,
                                       sampler=sampler)
            print(f"wrote {count} trace events -> {args.trace}")
        if args.metrics:
            write_metrics(args.metrics, metrics)
            print(f"wrote metrics -> {args.metrics}")
        if args.timeline:
            if prof is not None:
                with prof.section("report.render"):
                    timeline = ascii_timeline(tracer)
            else:
                timeline = ascii_timeline(tracer)
            print(timeline)
        if args.utilization == "-":
            print(sparkline_heatmap(sampler))
        elif args.utilization is not None:
            rows = write_series_csv(args.utilization, sampler)
            print(f"wrote {rows} utilization rows -> {args.utilization}")
        if args.bottlenecks:
            _, attributions, _, _ = study.bottleneck_report(
                args.trace_query, args.trace_sf, engine=args.engine
            )
            print(render_report(
                attributions,
                title=(f"{args.engine} q{args.trace_query} "
                       f"@ SF {args.trace_sf:g} bottlenecks"),
            ))
        if args.critical_path is not None:
            from repro.obs import (
                critical_path,
                render_critical_path,
                write_critical_path,
            )

            path = critical_path(tracer)
            print(render_critical_path(path))
            if args.critical_path != "-":
                write_critical_path(path, args.critical_path)
                print(f"wrote critical path -> {args.critical_path}")
        if whatif_scales:
            from repro.obs import (
                dss_whatif_report,
                render_whatif_report,
                write_whatif_report,
            )

            report = dss_whatif_report(
                tracer, args.engine, whatif_scales,
                target={"query": args.trace_query,
                        "scale_factor": args.trace_sf},
            )
            print(render_whatif_report(report))
            if args.whatif_report:
                write_whatif_report(report, args.whatif_report)
                print(f"wrote what-if report -> {args.whatif_report}")
        if prof is not None:
            _profile_outputs(args, prof, {
                "kind": "dss", "engine": args.engine,
                "query": args.trace_query, "scale_factor": args.trace_sf,
            })
        return 0
    table = study.table3()
    for block in (
        render_table2(study),
        render_table3(table),
        render_figure1(study, table),
        render_table4(study),
        render_table5(study),
    ):
        print(block)
        print()
    return 0


def _oltp_frontier(args) -> int:
    """``oltp --frontier``: open-loop sweep + knee search per system."""
    from repro.core.oltp import OltpStudy
    from repro.ycsb.frontier import (
        render_frontier_report,
        validate_frontier_report,
        write_frontier_report,
    )

    _require_positive(args.slo_ms, "--slo-ms")
    _require_positive(args.frontier_ops, "--frontier-ops")
    _require_positive(args.frontier_window, "--frontier-window")
    systems = None
    if args.frontier_systems:
        systems = [s.strip() for s in args.frontier_systems.split(",")
                   if s.strip()]
    workloads = None
    if args.frontier_workloads:
        workloads = [w.strip().upper() for w in
                     args.frontier_workloads.split(",") if w.strip()]
    metrics = None
    if args.metrics:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    study = OltpStudy(isolation=args.isolation)
    from repro.ycsb.frontier import frontier_report as build_frontier

    report = build_frontier(
        systems=systems, workloads=workloads, slo_ms=args.slo_ms,
        seed=args.seed, measure_ops=args.frontier_ops,
        warmup_ops=max(args.frontier_ops // 4, 1),
        min_window_s=args.frontier_window,
        concern=args.write_concern, faults=args.faults,
        overload=_overload_policy(args),
        params=study.params, isolation=study.isolation, metrics=metrics,
    )
    validate_frontier_report(report)
    print(render_frontier_report(report))
    if args.frontier_report:
        write_frontier_report(report, args.frontier_report)
        print(f"wrote frontier report -> {args.frontier_report}")
    if args.metrics:
        from repro.obs import write_metrics

        write_metrics(args.metrics, metrics)
        print(f"wrote metrics -> {args.metrics}")
    return 0


def _cmd_oltp(args) -> int:
    from repro.core.oltp import OltpStudy
    from repro.core.report import render_oltp_load_times, render_ycsb_figure

    from repro.ycsb.workloads import WORKLOADS

    if args.workload != "all" and args.workload not in WORKLOADS:
        raise ConfigurationError(
            f"unknown workload {args.workload!r}; expected one of "
            f"{', '.join(sorted(WORKLOADS))} or 'all'"
        )
    _require_positive(args.target, "--target")
    _require_positive(args.duration, "--duration")
    _require_positive(args.operations, "--operations")
    if args.fault_report and not args.faults:
        raise ConfigurationError("--fault-report requires --faults")
    if args.whatif_report and not args.whatif:
        raise ConfigurationError("--whatif-report requires --whatif")
    if args.write_concern and not (args.replication or args.chaos
                                   or args.availability_report
                                   or args.frontier or args.frontier_report
                                   or args.reshard or args.reshard_report
                                   or args.live_report is not None):
        raise ConfigurationError(
            "--write-concern requires --replication, --chaos, "
            "--live-report, --reshard, or --frontier"
        )
    if args.live_report is None and (args.slo_rules != DEFAULT_SLO_RULES
                                     or args.span_sample):
        raise ConfigurationError(
            "--slo-rules/--span-sample require --live-report"
        )
    overloading = args.overload or args.overload_report
    if overloading and (args.reshard or args.reshard_report):
        raise ConfigurationError(
            "--overload does not compose with --reshard"
        )
    if (overloading and (args.chaos or args.availability_report)
            and args.live_report is not None):
        raise ConfigurationError(
            "--overload with --chaos does not compose with --live-report"
        )
    _require_positive(args.live_slice, "--live-slice")
    whatif_scales = (
        _parse_whatif_for(args.whatif, "oltp", "the oltp event simulator")
        if args.whatif else None
    )
    profiling = _profiling_enabled(args)
    if profiling and (args.frontier or args.frontier_report or args.reshard
                      or args.reshard_report or args.availability_report
                      or args.faults or args.overload or args.overload_report
                      or (args.chaos and args.live_report is None)):
        # The profiler hooks the event-sim and live paths today; the sweep
        # modes run many simulations whose profiles would blur together.
        raise ConfigurationError(
            "--profile composes with the traced event-sim point and "
            "--live-report only"
        )
    if args.frontier or args.frontier_report:
        return _oltp_frontier(args)
    if overloading and not (args.chaos or args.availability_report):
        return _oltp_overload(args)
    if args.live_report is not None:
        return _oltp_live(args)
    if args.reshard or args.reshard_report:
        return _oltp_reshard(args)
    if args.chaos or args.availability_report:
        return _oltp_availability(args)
    study = OltpStudy(isolation=args.isolation)
    if args.faults:
        return _oltp_faults(args, study)
    observing = (args.trace or args.metrics or args.timeline
                 or args.utilization is not None or args.bottlenecks
                 or args.critical_path is not None or args.whatif
                 or profiling)
    if observing:
        from repro.obs import (
            MetricsRegistry,
            Tracer,
            UtilizationSampler,
            ascii_timeline,
            render_report,
            sparkline_heatmap,
            write_chrome_trace,
            write_metrics,
            write_series_csv,
        )

        workload = args.workload if args.workload != "all" else "A"
        # A profile-only run skips span/metrics collection: the point of
        # --profile is to measure the simulator itself, and span
        # construction is its own (instrumented) cost.
        span_observing = (args.trace or args.metrics or args.timeline
                          or args.utilization is not None or args.bottlenecks
                          or args.critical_path is not None or args.whatif)
        tracer = Tracer() if span_observing else None
        metrics = MetricsRegistry() if span_observing else None
        sampler = None
        if args.utilization is not None:
            sampler = UtilizationSampler(interval=0.5)
        prof = None
        if profiling:
            from repro.obs import ProfiledRun

            prof = ProfiledRun().start()
        point, sim = study.event_sim_point(
            args.system, workload, args.target, duration=args.duration,
            seed=args.seed, tracer=tracer, metrics=metrics, sampler=sampler,
            prof=prof,
        )
        spans = len(tracer.spans) if tracer is not None else 0
        print(
            f"{args.system} workload {workload} @ {args.target:g} ops/s target: "
            f"event-sim {sim.throughput:.0f} ops/s (scaled), "
            f"{sim.completed_ops} measured ops, {spans} spans"
        )
        if args.trace:
            count = write_chrome_trace(args.trace, tracer, metrics,
                                       sampler=sampler)
            print(f"wrote {count} trace events -> {args.trace}")
        if args.metrics:
            write_metrics(args.metrics, metrics)
            print(f"wrote metrics -> {args.metrics}")
        if args.timeline:
            if prof is not None:
                with prof.section("report.render"):
                    timeline = ascii_timeline(tracer, cat="resource")
            else:
                timeline = ascii_timeline(tracer, cat="resource")
            print(timeline)
        if args.utilization == "-":
            print(sparkline_heatmap(sampler))
        elif args.utilization is not None:
            rows = write_series_csv(args.utilization, sampler)
            print(f"wrote {rows} utilization rows -> {args.utilization}")
        if args.bottlenecks:
            _, attributions, _ = study.bottlenecks(
                args.system, workload, args.target
            )
            print(render_report(
                attributions,
                title=(f"{args.system} workload {workload} "
                       f"@ {args.target:g} ops/s bottlenecks"),
            ))
        if args.critical_path is not None:
            from repro.obs import (
                critical_path,
                render_critical_path,
                write_critical_path,
            )

            # An OLTP trace has no single root: take the slowest measured
            # request — the one whose visits explain the latency tail.
            requests = [
                span for span in tracer.find(cat="request")
                if span.end >= 10.0 and not span.args.get("error")
            ]
            if not requests:
                raise ConfigurationError(
                    "no measured requests to extract a critical path from "
                    "(try a longer --duration)"
                )
            root = max(requests, key=lambda s: (s.duration, -s.span_id))
            path = critical_path(tracer, root=root)
            print(render_critical_path(path))
            if args.critical_path != "-":
                write_critical_path(path, args.critical_path)
                print(f"wrote critical path -> {args.critical_path}")
        if whatif_scales:
            from repro.obs import (
                oltp_whatif_report,
                render_whatif_report,
                write_whatif_report,
            )

            report = oltp_whatif_report(
                tracer, whatif_scales,
                target={"system": args.system, "workload": workload,
                        "target_ops": args.target},
            )
            print(render_whatif_report(report))
            if args.whatif_report:
                write_whatif_report(report, args.whatif_report)
                print(f"wrote what-if report -> {args.whatif_report}")
        if prof is not None:
            _profile_outputs(args, prof, {
                "kind": "oltp", "system": args.system, "workload": workload,
                "target": args.target, "duration": args.duration,
                "seed": args.seed,
            })
        return 0
    figures = [
        ("C", [5_000, 10_000, 20_000, 40_000, 80_000, 160_000], ["read"]),
        ("B", [5_000, 10_000, 20_000, 40_000, 80_000, 160_000], ["read", "update"]),
        ("A", [1_000, 2_000, 5_000, 10_000, 20_000, 40_000], ["read", "update"]),
        ("D", [20_000, 40_000, 80_000, 160_000, 320_000, 640_000], ["read", "insert"]),
        ("E", [250, 500, 1_000, 2_000, 4_000, 8_000], ["scan", "insert"]),
    ]
    selected = [f for f in figures if args.workload in ("all", f[0])]
    if not selected:
        print(f"unknown workload {args.workload!r}; use A-E or 'all'",
              file=sys.stderr)
        return 2
    for workload, targets, op_classes in selected:
        print(render_ycsb_figure(study, workload, targets, op_classes))
        if args.ascii:
            from repro.core.figures import figure_to_ascii

            figure = study.figure(workload, targets)
            print()
            print(figure_to_ascii(figure, op_classes[0],
                                  title=f"Workload {workload}"))
        print()
    if args.workload == "all":
        print(render_oltp_load_times(study))
    return 0


def _cmd_dbgen(args) -> int:
    from repro.tpch.dbgen import DbGen
    from repro.tpch.tbl_io import write_tbl

    _require_positive(args.sf, "--sf")
    db = DbGen(scale_factor=args.sf, seed=args.seed).generate()
    written = write_tbl(db, args.output)
    for name, rows in sorted(written.items()):
        print(f"{name:>10}: {rows:>10,} rows -> {args.output}/{name}.tbl")
    return 0


def _cmd_scorecard(args) -> int:
    from repro.core.scorecard import build_scorecard

    card = build_scorecard()
    print(card.render())
    return 0 if card.all_claims_hold else 1


def _cmd_explain(args) -> int:
    from repro.core.explain import explain_query

    _require_positive(args.sf, "--sf")
    print(explain_query(args.number, args.sf))
    return 0


def _cmd_hiveql(args) -> int:
    from repro.hive.hiveql import execute
    from repro.tpch.dbgen import DbGen

    _require_positive(args.sf, "--sf")
    db = DbGen(scale_factor=args.sf, seed=args.seed).generate()
    rows = execute(args.sql, db)
    for row in rows[: args.limit]:
        print(row)
    print(f"({len(rows)} row(s))")
    return 0


def _cmd_query(args) -> int:
    from repro.tpch.dbgen import DbGen
    from repro.tpch.queries import run_query

    _require_positive(args.sf, "--sf")
    db = DbGen(scale_factor=args.sf, seed=args.seed).generate()
    rows = run_query(args.number, db)
    for row in rows[: args.limit]:
        print(row)
    print(f"({len(rows)} row(s))")
    return 0


def _add_profile_flags(sub_parser) -> None:
    """Self-profiling flags shared by the dss and oltp subcommands."""
    sub_parser.add_argument(
        "--profile", action="store_true",
        help="profile the run itself (wall-clock stack sampler + exact "
             "subsystem counters) and print the repro-prof/1 summary")
    sub_parser.add_argument(
        "--profile-report", metavar="PATH",
        help="write the repro-prof/1 JSON (implies --profile)")
    sub_parser.add_argument(
        "--profile-speedscope", metavar="PATH",
        help="write sampled stacks as a speedscope.app document "
             "(implies --profile)")
    sub_parser.add_argument(
        "--profile-folded", metavar="PATH",
        help="write folded stacks for flamegraph.pl (implies --profile)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Can the Elephants Handle the NoSQL "
        "Onslaught?' (VLDB 2012)",
    )
    parser.add_argument("--compare", nargs=2, metavar=("A", "B"),
                        help="diff two report JSON files (repro-bench/1, "
                             "repro-prof/1, or repro-live/1 — both the same "
                             "kind) and attribute the regression; prints a "
                             "repro-compare/1 table")
    parser.add_argument("--compare-report", metavar="PATH",
                        help="write the repro-compare/1 JSON "
                             "(requires --compare)")
    sub = parser.add_subparsers(dest="command", required=False)

    dss = sub.add_parser("dss", help="run the TPC-H study (Tables 2-5, Fig 1)")
    dss.add_argument("--calibration-sf", type=float, default=0.01)
    dss.add_argument("--seed", type=int, default=42)
    dss.add_argument("--trace", metavar="PATH",
                     help="trace one query; write Chrome trace-event JSON")
    dss.add_argument("--metrics", metavar="PATH",
                     help="trace one query; write the metrics snapshot JSON")
    dss.add_argument("--timeline", action="store_true",
                     help="trace one query; print an ASCII timeline")
    dss.add_argument("--trace-query", type=int, default=1,
                     help="TPC-H query to trace (default 1)")
    dss.add_argument("--trace-sf", type=float, default=250.0,
                     help="scale factor for the traced query (default 250)")
    dss.add_argument("--engine", default="hive", choices=["hive", "pdw"],
                     help="engine to trace (default hive)")
    dss.add_argument("--utilization", metavar="PATH", nargs="?", const="-",
                     help="sample per-resource utilization for the traced "
                          "query; write series CSV to PATH, or print the "
                          "sparkline heatmap when no PATH is given")
    dss.add_argument("--bottlenecks", action="store_true",
                     help="print the per-phase bottleneck attribution report")
    dss.add_argument("--critical-path", metavar="PATH", nargs="?", const="-",
                     help="trace one query; print its critical path and "
                          "slack, or also write repro-critpath/1 JSON to PATH")
    dss.add_argument("--whatif", metavar="SPEC",
                     help="replay the traced query with mechanisms scaled, "
                          "e.g. 'map-startup=0' or 'shuffle=0.5x,dms=0'")
    dss.add_argument("--whatif-report", metavar="PATH",
                     help="write the repro-whatif/1 JSON (requires --whatif)")
    dss.add_argument("--decompose", metavar="QUERIES",
                     help="fit fixed-vs-variable overhead across all SFs for "
                          "a comma-separated query list, e.g. '1,22'")
    dss.add_argument("--decompose-report", metavar="PATH",
                     help="write the repro-decompose/1 JSON "
                          "(requires --decompose)")
    dss.add_argument("--faults", metavar="PLAN",
                     help="inject faults into the traced query and compare "
                          "Hive vs PDW recovery; PLAN is "
                          "'kind:target@at[+dur][xmag];...' "
                          "(e.g. 'crash:n3@0.5' or 'straggler:n2@0.3x4')")
    dss.add_argument("--fault-report", metavar="PATH",
                     help="write the healthy-vs-faulted comparison JSON")
    _add_profile_flags(dss)
    dss.set_defaults(func=_cmd_dss)

    oltp = sub.add_parser("oltp", help="run the YCSB study (Figures 2-6)")
    oltp.add_argument("--workload", default="all", help="A-E or 'all'")
    oltp.add_argument(
        "--isolation", default="read_committed",
        choices=["read_committed", "read_uncommitted"],
    )
    oltp.add_argument("--ascii", action="store_true",
                      help="also draw ASCII latency/throughput plots")
    oltp.add_argument("--trace", metavar="PATH",
                      help="event-simulate one point; write Chrome trace JSON")
    oltp.add_argument("--metrics", metavar="PATH",
                      help="event-simulate one point; write metrics JSON")
    oltp.add_argument("--timeline", action="store_true",
                      help="event-simulate one point; print an ASCII timeline")
    oltp.add_argument("--system", default="mongo-as",
                      choices=["sql-cs", "mongo-as", "mongo-cs"],
                      help="system to trace (default mongo-as)")
    oltp.add_argument("--target", type=float, default=10_000.0,
                      help="target ops/s for the traced point (default 10000)")
    oltp.add_argument("--duration", type=float, default=60.0,
                      help="simulated seconds for the traced point")
    oltp.add_argument("--seed", type=int, default=1234)
    oltp.add_argument("--utilization", metavar="PATH", nargs="?", const="-",
                      help="sample per-station utilization for the traced "
                           "point; write series CSV to PATH, or print the "
                           "sparkline heatmap when no PATH is given")
    oltp.add_argument("--bottlenecks", action="store_true",
                      help="print the bottleneck attribution report "
                           "(MVA utilizations, lock rows vs the paper's "
                           "25-45%% mongostat band)")
    oltp.add_argument("--critical-path", metavar="PATH", nargs="?", const="-",
                      help="event-simulate one point; print the slowest "
                           "request's critical path, or also write "
                           "repro-critpath/1 JSON to PATH")
    oltp.add_argument("--whatif", metavar="SPEC",
                      help="replay the traced point with mechanisms scaled, "
                           "e.g. 'lock-wait=0.5x' or 'disk=0,backoff=0'")
    oltp.add_argument("--whatif-report", metavar="PATH",
                      help="write the repro-whatif/1 JSON (requires --whatif)")
    oltp.add_argument("--faults", metavar="PLAN",
                      help="inject faults and compare healthy vs faulted: "
                           "shard faults ('kill-shard:0@0.25') run the "
                           "functional cluster with retry/backoff, station "
                           "faults ('disk-stall:disk@20+10x8') run the event "
                           "simulator")
    oltp.add_argument("--fault-report", metavar="PATH",
                      help="write the healthy-vs-faulted comparison JSON")
    oltp.add_argument("--replication", metavar="SPEC",
                      help="run functional clusters with HA: replica sets "
                           "per Mongo shard, synchronous mirroring per SQL "
                           "node; 'on' or 'replicas=3,lag=0.05,timeout=0.25' "
                           "('off' keeps the paper's bare deployments)")
    oltp.add_argument("--write-concern", metavar="NAME",
                      help="write concern for replicated runs: unacked, "
                           "safe, journaled, majority, or w:N; 'all' sweeps "
                           "the spectrum under --chaos")
    oltp.add_argument("--chaos", metavar="SPEC", nargs="?", const="default",
                      help="seeded chaos run with an acknowledged-write "
                           "audit: 'kills=2,partitions=1,lag-spikes=1' "
                           "(bare --chaos uses that default); exits 0 only "
                           "if the durability invariant holds")
    oltp.add_argument("--operations", type=int, default=500,
                      help="ops per chaos run (default 500)")
    oltp.add_argument("--availability-report", metavar="PATH",
                      help="write the repro-availability/1 JSON "
                           "(implies --chaos)")
    oltp.add_argument("--reshard", metavar="SPEC", nargs="?",
                      const="scale:shards=6@0.3",
                      help="elastic resharding under live traffic: a "
                           "topology plan like 'scale:shards=6@0.3' or "
                           "'drain:shard=1@0.35' (bare flag uses the "
                           "former), optionally ';'-joined with extra "
                           "fault specs; composes with --chaos and "
                           "--write-concern; exits 0 only if no acked "
                           "write is lost across a migration")
    oltp.add_argument("--reshard-report", metavar="PATH",
                      help="write the repro-reshard/1 JSON "
                           "(implies --reshard)")
    oltp.add_argument("--reshard-throttle", type=float, default=0.5,
                      metavar="FRACTION",
                      help="migration copy duty cycle in (0, 1] "
                           "(default 0.5)")
    oltp.add_argument("--live-report", metavar="PATH", nargs="?", const="-",
                      help="watch one chaos run live — windowed latency "
                           "digests, online burn-rate SLO alerts, ASCII "
                           "dashboard (repro-live/1); bare flag prints "
                           "the dashboard without writing JSON")
    oltp.add_argument("--slo-rules", metavar="SPEC",
                      default=DEFAULT_SLO_RULES,
                      help="';'-separated burn-rate rules for "
                           f"--live-report (default {DEFAULT_SLO_RULES}; "
                           "windows are virtual-clock)")
    oltp.add_argument("--span-sample", metavar="SPEC",
                      help="tail-biased span sampling for --live-report: "
                           "RATE[,slow_ms=N] keeps every fault/retry/"
                           "election/slow/error span and head-samples "
                           "the rest")
    oltp.add_argument("--live-slice", type=float, default=0.1,
                      help="live dashboard slice width in virtual "
                           "seconds (default 0.1)")
    oltp.add_argument("--overload", metavar="SPEC", nargs="?",
                      const="default",
                      help="graceful degradation under overload: admission "
                           "control, deadline propagation, retry budgets, "
                           "circuit breakers "
                           "('queue=64,policy=deadline-drop,deadline=500ms,"
                           "budget=0.1,breaker=on'; bare flag uses that "
                           "default); alone it runs the metastable-failure "
                           "demo (exit 0 only if the with/without contrast "
                           "holds); composes with --faults (shard plans run "
                           "the functional breaker cell), --chaos, "
                           "--frontier, and --live-report")
    oltp.add_argument("--overload-report", metavar="PATH",
                      help="write the repro-overload/1 JSON "
                           "(implies --overload)")
    oltp.add_argument("--frontier", action="store_true",
                      help="sweep open-loop Poisson arrival rates and "
                           "bisect each system's saturation knee (max "
                           "sustained throughput with coordinated-omission-"
                           "correct p99 under --slo-ms); composes with "
                           "--faults, --write-concern, and --metrics")
    oltp.add_argument("--frontier-report", metavar="PATH",
                      help="write the repro-frontier/1 JSON "
                           "(implies --frontier)")
    oltp.add_argument("--slo-ms", type=float, default=250.0,
                      help="frontier p99 objective in ms (default 250; "
                           "values under the 100 ms journal flush window "
                           "are unreachable for journaled writes: exit 2)")
    oltp.add_argument("--frontier-systems", metavar="LIST",
                      help="comma-separated systems to sweep (default "
                           "sql-cs,mongo-as,mongo-cs,mongo-as-safe)")
    oltp.add_argument("--frontier-workloads", metavar="LIST",
                      help="comma-separated workloads to sweep (default A,C)")
    oltp.add_argument("--frontier-ops", type=int, default=40000,
                      help="measured arrivals per probe (default 40000; "
                           "warmup adds a quarter of this)")
    oltp.add_argument("--frontier-window", type=float, default=2.0,
                      help="minimum measured seconds per probe (default 2; "
                           "overloaded rates need wall time for the backlog "
                           "to surface in p99 — lower only for smoke runs)")
    _add_profile_flags(oltp)
    oltp.set_defaults(func=_cmd_oltp)

    dbgen = sub.add_parser("dbgen", help="generate TPC-H .tbl files")
    dbgen.add_argument("--sf", type=float, default=0.01)
    dbgen.add_argument("--seed", type=int, default=42)
    dbgen.add_argument("--output", default="tpch-data")
    dbgen.set_defaults(func=_cmd_dbgen)

    scorecard = sub.add_parser(
        "scorecard", help="paper-vs-model accuracy summary and claim checklist"
    )
    scorecard.set_defaults(func=_cmd_scorecard)

    explain = sub.add_parser(
        "explain", help="show both engines' physical plans for a query"
    )
    explain.add_argument("number", type=int)
    explain.add_argument("--sf", type=float, default=4000.0)
    explain.set_defaults(func=_cmd_explain)

    hiveql = sub.add_parser(
        "hiveql", help="execute a HiveQL statement on generated TPC-H data"
    )
    hiveql.add_argument("sql")
    hiveql.add_argument("--sf", type=float, default=0.01)
    hiveql.add_argument("--seed", type=int, default=42)
    hiveql.add_argument("--limit", type=int, default=20)
    hiveql.set_defaults(func=_cmd_hiveql)

    query = sub.add_parser("query", help="run one TPC-H query")
    query.add_argument("number", type=int)
    query.add_argument("--sf", type=float, default=0.01)
    query.add_argument("--seed", type=int, default=42)
    query.add_argument("--limit", type=int, default=20)
    query.set_defaults(func=_cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "func", None) is None:
            if args.compare:
                return _cmd_compare(args)
            parser.error("a command or --compare is required")
        if args.compare:
            raise ConfigurationError(
                "--compare is a standalone mode; drop the subcommand"
            )
        if args.compare_report:
            raise ConfigurationError("--compare-report requires --compare")
        return args.func(args)
    except ConfigurationError as exc:
        # Bad input (unknown workload, non-positive scale factor, malformed
        # fault plan) is a usage error: one line on stderr, exit 2.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())

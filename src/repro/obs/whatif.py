"""What-if replay: scale one mechanism in a traced run, predict the delta.

The critical-path layer says *where* the time went; this module says *what
would change*.  Given a traced run whose spans carry mechanism attribution
(phase/task structure with per-task ``startup`` args on the Hive side,
``io_time``/``cpu_time``/``net_time`` on PDW steps, ``wait``/``service``
splits on the event simulator's per-station visits), :func:`replay_hive` /
:func:`replay_pdw` / :func:`replay_oltp` re-walk the span DAG with a chosen
mechanism scaled by a factor — ``map-startup=0`` deletes Hive's per-task JVM
fork cost, ``lock-wait=0.5x`` halves the lock stations — and recompute the
end-to-end figure while honoring the structure (per-slot task chains
reschedule, serial steps stay serial).

The prediction is **Amdahl-bounded**: only the scaled mechanism's observed
exposure can be recovered, everything off the critical path stays hidden
behind the makespan.  It is first-order — the replay keeps the original
schedule (task-to-slot assignment, queue orders), so the tests validate it
against actually re-running the simulator with the corresponding cost-model
knob and assert agreement within tolerance.

Reports serialize under schema ``repro-whatif/1`` with the usual
deterministic JSON conventions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError

SCHEMA = "repro-whatif/1"

# Mechanism name -> (engine family, human description).  Parse-time
# validation uses this table; each replay applies the subset it understands.
MECHANISMS = {
    # Hive / MapReduce
    "map-startup": ("hive", "per-map-task JVM fork + init cost"),
    "reduce-startup": ("hive", "per-reduce-task startup cost"),
    "shuffle": ("hive", "map-output transfer over the 1 GbE fabric"),
    "job-overhead": ("hive", "per-job submission/setup/commit latency"),
    # PDW
    "dms": ("pdw", "DMS data movement (network) time within each step"),
    "pdw-cpu": ("pdw", "per-step CPU time"),
    "pdw-io": ("pdw", "per-step IO time"),
    "step-overhead": ("pdw", "per-DSQL-step coordination overhead"),
    # OLTP event simulator (station visits)
    "lock-wait": ("oltp", "lock-station visits: hotlock/hotrow/appendhot"),
    "cpu": ("oltp", "cpu-station visits"),
    "disk": ("oltp", "disk-station visits"),
    "log": ("oltp", "log-station visits"),
    "journal": ("oltp", "journal-station visits"),
    "backoff": ("oltp", "retry backoff delays"),
    "election": ("oltp", "replica-set failover waits (election windows)"),
    "dispatch": ("oltp", "open-loop dispatch waits (intended-to-start lag "
                         "behind a full worker pool)"),
}

# Stations the ``lock-wait`` mechanism covers (the OltpStudy lock stations).
LOCK_STATIONS = ("hotlock", "hotrow", "appendhot")

_TOL = 1e-9


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


def parse_whatif(spec: str) -> dict:
    """Parse ``"shuffle=0.5x,lock-wait=0"`` into ``{mechanism: factor}``.

    Factors are non-negative floats; a trailing ``x`` is accepted
    (``0.5x`` == ``0.5``).  Unknown mechanism names and malformed entries
    raise :class:`~repro.common.errors.ConfigurationError` — the CLI's
    exit-2 convention.
    """
    scales: dict[str, float] = {}
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, sep, value = chunk.partition("=")
        name = name.strip()
        if not sep:
            raise ConfigurationError(
                f"malformed --whatif entry {chunk!r}: expected NAME=FACTOR"
            )
        if name not in MECHANISMS:
            known = ", ".join(sorted(MECHANISMS))
            raise ConfigurationError(
                f"unknown what-if mechanism {name!r}; known: {known}"
            )
        value = value.strip()
        if value.endswith(("x", "X")):
            value = value[:-1]
        try:
            factor = float(value)
        except ValueError:
            raise ConfigurationError(
                f"malformed --whatif factor {chunk!r}: "
                f"expected a number like 0.5 or 0.5x"
            ) from None
        if factor < 0.0:
            raise ConfigurationError(
                f"--whatif factor for {name!r} must be >= 0, got {factor:g}"
            )
        scales[name] = factor
    if not scales:
        raise ConfigurationError("empty --whatif spec")
    return scales


def _children_index(tracer) -> dict:
    children: dict = {}
    for span in tracer.spans:
        if span.parent is not None:
            children.setdefault(span.parent, []).append(span)
    return children


# -- Hive ------------------------------------------------------------------------


def _replay_task_phase(phase, tasks, startup_scale: float) -> float:
    """Reschedule a map/reduce phase with per-task startup scaled.

    Replays Hadoop's greedy scheduler (next pending task to whichever slot
    frees first) over the scaled task durations, in the original submission
    order — the tracer records attempts in exactly that order, and the lane
    count recovers the slot count.  Whatever the original phase carried
    beyond its scheduled makespan (e.g. the HDFS output write folded into
    reduce time) is preserved unscaled.
    """
    from repro.mapreduce.jobs import schedule_tasks

    startup = float(phase.args.get("startup", 0.0))
    ordered = sorted(tasks, key=lambda t: t.span_id)  # submission order
    slots = len({t.lane for t in tasks})
    orig_makespan = schedule_tasks([t.duration for t in ordered], slots)
    scaled = [
        max(0.0, t.duration - (1.0 - startup_scale) * startup)
        for t in ordered
    ]
    extra = max(0.0, phase.duration - orig_makespan)
    return schedule_tasks(scaled, slots) + extra


def replay_hive(tracer, scales: dict) -> float:
    """Predicted end-to-end seconds for a traced Hive query, scaled."""
    queries = tracer.find(cat="query", node="hive")
    if not queries:
        raise ConfigurationError("no traced Hive query to replay")
    query = queries[0]
    children = _children_index(tracer)
    total = 0.0
    for job in children.get(query.span_id, []):
        if job.cat != "job":
            continue
        job_time = 0.0
        for phase in children.get(job.span_id, []):
            if phase.cat != "phase":
                continue
            length = phase.duration
            tasks = [t for t in children.get(phase.span_id, [])
                     if t.cat == "task"]
            if phase.lane == "map":
                if tasks:
                    length = _replay_task_phase(
                        phase, tasks, scales.get("map-startup", 1.0))
            elif phase.lane == "reduce":
                if tasks:
                    length = _replay_task_phase(
                        phase, tasks, scales.get("reduce-startup", 1.0))
            elif phase.lane == "shuffle":
                length = length * scales.get("shuffle", 1.0)
            elif phase.lane == "overhead":
                length = length * scales.get("job-overhead", 1.0)
            job_time += length
        total += job_time
    return total


# -- PDW -------------------------------------------------------------------------


def replay_pdw(tracer, scales: dict) -> float:
    """Predicted end-to-end seconds for a traced PDW query, scaled."""
    queries = tracer.find(cat="query", node="pdw")
    if not queries:
        raise ConfigurationError("no traced PDW query to replay")
    query = queries[0]
    steps = [s for s in tracer.spans
             if s.parent == query.span_id and s.cat == "step"]
    if steps:
        plan_overhead = steps[0].start - query.start
    else:
        plan_overhead = query.duration
    total = plan_overhead
    for step in steps:
        io = float(step.args.get("io_time", 0.0)) * scales.get("pdw-io", 1.0)
        cpu = float(step.args.get("cpu_time", 0.0)) * scales.get("pdw-cpu", 1.0)
        net = float(step.args.get("net_time", 0.0)) * scales.get("dms", 1.0)
        overhead = (float(step.args.get("overhead", 0.0))
                    * scales.get("step-overhead", 1.0))
        total += max(io, cpu, net) + overhead
    return total


# -- OLTP event simulator --------------------------------------------------------


def _station_scale(station: str, scales: dict) -> float:
    if station in LOCK_STATIONS:
        return scales.get("lock-wait", scales.get(station, 1.0))
    return scales.get(station, 1.0)


def replay_oltp(tracer, scales: dict, warmup: float = 10.0) -> dict:
    """Predicted per-class mean latencies for a traced event-sim run.

    Each measured request (completed after ``warmup``, not an error) is
    replayed visit by visit: a station visit's wait+service both scale with
    the station's factor — the wait is queueing behind *other clients'*
    service at the same station, which the corresponding cost-model knob
    scales identically.  Backoff delays scale with ``backoff``; failover
    stalls (``cat="election"`` children) scale with ``election``.
    """
    per_class: dict = {}
    children = _children_index(tracer)
    for request in tracer.spans:
        if request.cat != "request" or request.end < warmup:
            continue
        if request.args.get("error"):
            continue
        latency = request.duration
        for child in children.get(request.span_id, []):
            if child.cat == "visit":
                factor = _station_scale(child.args.get("station", ""), scales)
                visit_time = (float(child.args.get("wait", 0.0))
                              + float(child.args.get("service", 0.0)))
                latency -= (1.0 - factor) * visit_time
            elif child.cat == "retry":
                latency -= (1.0 - scales.get("backoff", 1.0)) * child.duration
            elif child.cat == "election":
                # Time this request spent stalled behind a replica-set
                # failover — a faster election timeout shrinks it directly.
                latency -= (1.0 - scales.get("election", 1.0)) * child.duration
            elif child.cat == "dispatch":
                # Open-loop queueing before the op even started: intended
                # arrival to worker grant.  Only exists in
                # coordinated-omission-correct traces — a bigger worker
                # pool (or a faster server) shrinks exactly this span.
                latency -= (1.0 - scales.get("dispatch", 1.0)) * child.duration
        cls = request.args.get("cls", request.name)
        per_class.setdefault(cls, []).append(max(0.0, latency))
    if not per_class:
        raise ConfigurationError(
            "no measured request spans to replay (is the run traced and "
            "longer than the warmup?)"
        )
    means = {cls: sum(vals) / len(vals)
             for cls, vals in sorted(per_class.items())}
    count = sum(len(vals) for vals in per_class.values())
    overall = (sum(sum(vals) for vals in per_class.values()) / count)
    return {"per_class": means, "mean": overall, "count": count}


# -- reports ---------------------------------------------------------------------


@dataclass
class WhatIfReport:
    """Baseline vs. predicted figure for one traced run, JSON-serializable."""

    kind: str  # "dss" | "oltp"
    target: dict = field(default_factory=dict)
    metric: str = "total_seconds"
    scales: dict = field(default_factory=dict)
    baseline: float = 0.0
    predicted: float = 0.0
    exposures: dict = field(default_factory=dict)  # mechanism -> seconds at 0
    amdahl_floor: float = 0.0  # every applied mechanism at 0
    per_class: dict = field(default_factory=dict)  # oltp only

    @property
    def delta(self) -> float:
        return self.baseline - self.predicted

    @property
    def speedup(self) -> float:
        return self.baseline / self.predicted if self.predicted > 0 else float("inf")

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "kind": self.kind,
            "target": self.target,
            "metric": self.metric,
            "scales": {k: _round(v) for k, v in sorted(self.scales.items())},
            "baseline": _round(self.baseline),
            "predicted": _round(self.predicted),
            "delta": _round(self.delta),
            "speedup": _round(self.speedup, 4),
            "exposures": {k: _round(v)
                          for k, v in sorted(self.exposures.items())},
            "amdahl_floor": _round(self.amdahl_floor),
            "per_class": {k: _round(v)
                          for k, v in sorted(self.per_class.items())},
        }


def dss_whatif_report(tracer, engine: str, scales: dict,
                      target: dict | None = None) -> WhatIfReport:
    """Replay one traced DSS query under ``scales`` (engine: hive|pdw)."""
    replay = {"hive": replay_hive, "pdw": replay_pdw}.get(engine)
    if replay is None:
        raise ConfigurationError(
            f"what-if replay knows engines hive and pdw, not {engine!r}"
        )
    baseline = replay(tracer, {})
    predicted = replay(tracer, scales)
    exposures = {
        name: baseline - replay(tracer, {name: 0.0}) for name in scales
    }
    floor = replay(tracer, {name: 0.0 for name in scales})
    return WhatIfReport(
        kind="dss", target=dict(target or {}, engine=engine),
        metric="total_seconds", scales=dict(scales),
        baseline=baseline, predicted=predicted,
        exposures=exposures, amdahl_floor=floor,
    )


def oltp_whatif_report(tracer, scales: dict, warmup: float = 10.0,
                       target: dict | None = None) -> WhatIfReport:
    """Replay one traced event-sim run under ``scales``."""
    baseline = replay_oltp(tracer, {}, warmup)
    predicted = replay_oltp(tracer, scales, warmup)
    exposures = {
        name: baseline["mean"] - replay_oltp(tracer, {name: 0.0}, warmup)["mean"]
        for name in scales
    }
    floor = replay_oltp(tracer, {name: 0.0 for name in scales}, warmup)
    return WhatIfReport(
        kind="oltp", target=dict(target or {}),
        metric="mean_latency_seconds", scales=dict(scales),
        baseline=baseline["mean"], predicted=predicted["mean"],
        exposures=exposures, amdahl_floor=floor["mean"],
        per_class=predicted["per_class"],
    )


def dumps_whatif_report(report: WhatIfReport) -> str:
    """Deterministic JSON: sorted keys, fixed separators, trailing newline."""
    return json.dumps(report.to_dict(), sort_keys=True,
                      separators=(",", ":")) + "\n"


def write_whatif_report(report: WhatIfReport, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_whatif_report(report))


def render_whatif_report(report: WhatIfReport) -> str:
    """Human-readable what-if summary for the CLI."""
    scales = ", ".join(f"{k}={v:g}x" for k, v in sorted(report.scales.items()))
    unit = "s" if report.metric == "total_seconds" else "s mean"
    lines = [
        f"what-if [{report.kind}] {scales}",
        f"  baseline  {report.baseline:>12.6f} {unit}",
        f"  predicted {report.predicted:>12.6f} {unit}  "
        f"(speedup {report.speedup:.3f}x, saves {report.delta:.6f} s)",
        f"  amdahl floor (all scaled mechanisms at 0): "
        f"{report.amdahl_floor:.6f} {unit}",
    ]
    for name, exposure in sorted(report.exposures.items(),
                                 key=lambda kv: (-kv[1], kv[0])):
        share = exposure / report.baseline if report.baseline else 0.0
        lines.append(f"    exposure {name:<16} {exposure:>12.6f} s {share:>6.1%}")
    for cls, latency in sorted(report.per_class.items()):
        lines.append(f"    predicted {cls:<15} {latency * 1000.0:>12.3f} ms")
    return "\n".join(lines)

"""``repro-prof/1``: host-side self-profiling — where does *wall* time go?

Every other report in this repository attributes *simulated* time; this
module turns the same lens on the simulator itself.  The paper's
discipline (per-mechanism attribution, not a single opaque number) applied
to the host: a benchmark regression should arrive with "71% digest
updates, 22% dispatch waits", not just a slower wall clock.

Two instruments, one :class:`ProfiledRun` object:

* a **statistical wall-clock sampler** — a daemon thread snapshots the
  profiled thread's stack every ``sample_interval`` seconds via
  :func:`sys._current_frames`, folding the frames into flamegraph-ready
  stacks.  Low overhead (no per-call hooks, unlike ``cProfile``), and it
  sees *everything*, including code that took no explicit counter.
* **exact per-subsystem counters** — producers bracket their hot
  sections (``eventsim.loop``, ``span.construct``, ``digest.update``,
  ``routing``, ``report.render``, ``hive.query``, ``pdw.query``) with
  :meth:`ProfiledRun.enter`/:meth:`~ProfiledRun.exit` or
  :meth:`~ProfiledRun.section`.  Nested sections are accounted
  self-vs-total like a real profiler: a digest update inside the event
  loop is charged to ``digest.update`` and subtracted from
  ``eventsim.loop``'s self time.

Zero-cost-off contract (the ``live=`` contract of the telemetry layer):
every producer hook takes ``prof=None`` and guards with one truthiness
check.  A run without ``--profile`` constructs nothing from this module
and executes the pre-instrumentation code path unchanged — and because
the instruments only *read* wall clocks, a profiled run's simulation
outputs (results, traces, live reports) are byte-identical to an
unprofiled run's.

The report is the house shape (``build``/``validate``/``dumps``/``write``/
``render``) plus two flamegraph exporters: collapsed ("folded") stacks
for ``flamegraph.pl`` and speedscope JSON for https://www.speedscope.app.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import threading
import time

from repro.common.errors import ConfigurationError

SCHEMA = "repro-prof/1"

#: Default sampling period: 2 ms keeps sampler overhead well under the 10%
#: budget while a ~1 s section still collects hundreds of samples.
DEFAULT_SAMPLE_INTERVAL = 0.002

#: Stack frames deeper than this are truncated (recursion guard).
MAX_STACK_DEPTH = 128

#: The leaf proxies (`span.construct`, `digest.update`) sit on >100k-call
#: paths where even two clock reads per call cost ~20% wall.  They count
#: every call exactly but *time* a systematic 1-in-`_TIMING_STRIDE` sample,
#: scaling the measured elapsed back up.  Section-level counters
#: (`eventsim.loop`, `hive.query`, ...) fire once per run/query and stay
#: fully timed.
_TIMING_STRIDE = 64
_TIMING_MASK = _TIMING_STRIDE - 1


def host_meta() -> dict:
    """The host fingerprint attached to prof reports and BENCH files.

    Wall-clock numbers are only comparable between identical fingerprints;
    the compare layer annotates (rather than fails) cross-host diffs.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def _short_path(path: str) -> str:
    """Trim a source path to its repository-relevant tail."""
    parts = path.replace("\\", "/").split("/")
    for anchor in ("repro", "benchmarks", "tests"):
        if anchor in parts:
            return "/".join(parts[parts.index(anchor):])
    return "/".join(parts[-2:]) if len(parts) > 1 else path


class _StackSampler(threading.Thread):
    """Daemon thread that snapshots one thread's stack at a fixed period."""

    def __init__(self, prof: "ProfiledRun", target_ident: int,
                 interval: float):
        super().__init__(name="repro-prof-sampler", daemon=True)
        self._prof = prof
        self._target = target_ident
        self._interval = interval
        self._halt = threading.Event()

    def run(self) -> None:
        samples = self._prof.samples
        while not self._halt.wait(self._interval):
            frame = sys._current_frames().get(self._target)
            if frame is None:
                continue
            stack = []
            depth = 0
            while frame is not None and depth < MAX_STACK_DEPTH:
                code = frame.f_code
                stack.append((code.co_name, code.co_filename,
                              code.co_firstlineno))
                frame = frame.f_back
                depth += 1
            frame = None  # drop the reference promptly
            key = tuple(reversed(stack))  # root first, leaf last
            samples[key] = samples.get(key, 0) + 1
            self._prof.sample_count += 1

    def halt(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


class ProfiledRun:
    """The self-profiler: stack sampler + exact subsystem counters.

    Usage::

        with ProfiledRun() as prof:
            simulate_closed_loop(stations, mix, clients=8, prof=prof)
        report = build_prof_report(prof, {"kind": "demo"})

    ``start()``/``stop()`` may be called explicitly instead (they return
    ``self``); wall time accumulates across start/stop pairs.  Counters
    keep working after ``stop()`` — only the sampler and the wall clock
    are bounded by the start/stop window.
    """

    def __init__(self, sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
                 sample: bool = True, clock=time.perf_counter):
        if sample_interval <= 0.0:
            raise ConfigurationError(
                f"sample interval must be > 0, got {sample_interval}")
        self.sample_interval = sample_interval
        self._sample_enabled = sample
        self._clock = clock
        # name -> [calls, total_s, self_s]
        self.counters: dict[str, list] = {}
        # folded stack (root-first frame tuples) -> sample count
        self.samples: dict[tuple, int] = {}
        self.sample_count = 0
        self.events = 0
        self.ops = 0
        self.virtual_s = 0.0
        self.wall_s = 0.0
        self._stack: list = []  # [name, start, child_time]
        self._sampler: _StackSampler | None = None
        self._t0: float | None = None

    def __bool__(self) -> bool:
        return True

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ProfiledRun":
        if self._t0 is not None:
            raise ConfigurationError("profiler already started")
        self._t0 = self._clock()
        if self._sample_enabled:
            self._sampler = _StackSampler(
                self, threading.get_ident(), self.sample_interval)
            self._sampler.start()
        return self

    def stop(self) -> "ProfiledRun":
        if self._sampler is not None:
            self._sampler.halt()
            self._sampler = None
        if self._t0 is not None:
            self.wall_s += self._clock() - self._t0
            self._t0 = None
        return self

    def __enter__(self) -> "ProfiledRun":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- exact counters (hot path) -------------------------------------------------

    def enter(self, name: str) -> None:
        """Open a subsystem section; must be paired with :meth:`exit`."""
        self._stack.append([name, self._clock(), 0.0])

    def exit(self) -> None:
        """Close the innermost section, charging self-vs-total time."""
        name, start, child = self._stack.pop()
        elapsed = self._clock() - start
        entry = self.counters.get(name)
        if entry is None:
            entry = self.counters[name] = [0, 0.0, 0.0]
        entry[0] += 1
        entry[1] += elapsed
        entry[2] += elapsed - child
        if self._stack:
            self._stack[-1][2] += elapsed

    def section(self, name: str):
        """Context-manager form of :meth:`enter`/:meth:`exit`."""
        return _Section(self, name)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Account pre-measured flat time (no nesting arithmetic)."""
        entry = self.counters.get(name)
        if entry is None:
            entry = self.counters[name] = [0, 0.0, 0.0]
        entry[0] += calls
        entry[1] += seconds
        entry[2] += seconds

    def count_events(self, n: int) -> None:
        """Record ``n`` dispatched simulator events (throughput numerator)."""
        self.events += n

    def note_ops(self, n: int) -> None:
        """Record ``n`` completed workload operations."""
        self.ops += n

    def note_virtual_time(self, t: float) -> None:
        """Record the furthest virtual-clock time the profiled run reached."""
        if t > self.virtual_s:
            self.virtual_s = t

    # -- aggregation ---------------------------------------------------------------

    def hot_functions(self, top: int = 10) -> list[dict]:
        """Top functions by *self* samples (leaf frame of each stack)."""
        self_counts: dict[tuple, int] = {}
        total_counts: dict[tuple, int] = {}
        total = 0
        for stack, n in self.samples.items():
            if not stack:
                continue
            total += n
            leaf = stack[-1]
            self_counts[leaf] = self_counts.get(leaf, 0) + n
            for frame in set(stack):
                total_counts[frame] = total_counts.get(frame, 0) + n
        rows = []
        for frame, n in sorted(self_counts.items(),
                               key=lambda kv: (-kv[1], kv[0])):
            name, path, line = frame
            rows.append({
                "func": name,
                "file": _short_path(path),
                "line": line,
                "self_samples": n,
                "total_samples": total_counts.get(frame, n),
                "self_pct": round(100.0 * n / total, 1) if total else 0.0,
            })
        return rows[:top]

    def subsystem_table(self) -> dict:
        """``{name: {calls, total_s, self_s}}`` for every counted section.

        Entries with zero calls are dropped: the flat-path proxies create
        their counter eagerly, so an unused tracer would otherwise leave an
        all-zero row behind.
        """
        return {
            name: {"calls": calls, "total_s": round(total, 6),
                   "self_s": round(self_s, 6)}
            for name, (calls, total, self_s) in sorted(self.counters.items())
            if calls
        }


class _Section:
    """Tiny reusable context manager for :meth:`ProfiledRun.section`."""

    __slots__ = ("_prof", "_name")

    def __init__(self, prof: ProfiledRun, name: str):
        self._prof = prof
        self._name = name

    def __enter__(self):
        self._prof.enter(self._name)

    def __exit__(self, *exc):
        self._prof.exit()


def prof_section(prof, name: str):
    """``prof.section(name)`` or a no-op context when ``prof`` is None."""
    if prof is not None:
        return prof.section(name)
    from contextlib import nullcontext

    return nullcontext()


# -- producer proxies --------------------------------------------------------------


class _ProfiledLive:
    """Times every digest update on a wrapped LiveTelemetry collector.

    Pure pass-through: the wrapped collector sees the identical calls, so
    live reports built from it are byte-identical to an unprofiled run's.
    These wrappers sit on million-call paths, so they skip the generic
    :meth:`ProfiledRun.enter`/``exit`` stack machinery and charge a cached
    counter entry directly — the calls are leaves, so self == total, and
    the enclosing section's child time is still credited via ``_stack``.
    """

    __slots__ = ("_live", "_prof", "_clock", "_entry", "_stack")

    def __init__(self, live, prof: ProfiledRun):
        self._live = live
        self._prof = prof
        self._clock = prof._clock
        self._entry = prof.counters.setdefault(
            "digest.update", [0, 0.0, 0.0])
        self._stack = prof._stack

    def __bool__(self) -> bool:
        return bool(self._live)

    def __getattr__(self, name):
        return getattr(self._live, name)

    def record_op(self, *args, **kwargs):
        entry = self._entry
        entry[0] += 1
        if entry[0] & _TIMING_MASK:
            return self._live.record_op(*args, **kwargs)
        clock = self._clock
        start = clock()
        result = self._live.record_op(*args, **kwargs)
        elapsed = (clock() - start) * _TIMING_STRIDE
        entry[1] += elapsed
        entry[2] += elapsed
        stack = self._stack
        if stack:
            stack[-1][2] += elapsed
        return result

    def record_censored(self, *args, **kwargs):
        entry = self._entry
        entry[0] += 1
        if entry[0] & _TIMING_MASK:
            return self._live.record_censored(*args, **kwargs)
        clock = self._clock
        start = clock()
        result = self._live.record_censored(*args, **kwargs)
        elapsed = (clock() - start) * _TIMING_STRIDE
        entry[1] += elapsed
        entry[2] += elapsed
        stack = self._stack
        if stack:
            stack[-1][2] += elapsed
        return result

    def finish(self, *args, **kwargs):
        entry = self._entry
        entry[0] += 1
        if entry[0] & _TIMING_MASK:
            return self._live.finish(*args, **kwargs)
        clock = self._clock
        start = clock()
        result = self._live.finish(*args, **kwargs)
        elapsed = (clock() - start) * _TIMING_STRIDE
        entry[1] += elapsed
        entry[2] += elapsed
        stack = self._stack
        if stack:
            stack[-1][2] += elapsed
        return result


class _ProfiledTracer:
    """Times span construction on a wrapped Tracer/SamplingTracer.

    Same flat fast path as :class:`_ProfiledLive`: ``add``/``link`` are
    leaf calls, so the cached counter entry is charged directly instead of
    going through the section stack.
    """

    __slots__ = ("_tracer", "_prof", "_clock", "_entry", "_stack")

    def __init__(self, tracer, prof: ProfiledRun):
        self._tracer = tracer
        self._prof = prof
        self._clock = prof._clock
        self._entry = prof.counters.setdefault(
            "span.construct", [0, 0.0, 0.0])
        self._stack = prof._stack

    def __bool__(self) -> bool:
        return bool(self._tracer)

    def __getattr__(self, name):
        return getattr(self._tracer, name)

    def add(self, *args, **kwargs):
        entry = self._entry
        entry[0] += 1
        if entry[0] & _TIMING_MASK:
            return self._tracer.add(*args, **kwargs)
        clock = self._clock
        start = clock()
        result = self._tracer.add(*args, **kwargs)
        elapsed = (clock() - start) * _TIMING_STRIDE
        entry[1] += elapsed
        entry[2] += elapsed
        stack = self._stack
        if stack:
            stack[-1][2] += elapsed
        return result

    def link(self, *args, **kwargs):
        entry = self._entry
        entry[0] += 1
        if entry[0] & _TIMING_MASK:
            return self._tracer.link(*args, **kwargs)
        clock = self._clock
        start = clock()
        result = self._tracer.link(*args, **kwargs)
        elapsed = (clock() - start) * _TIMING_STRIDE
        entry[1] += elapsed
        entry[2] += elapsed
        stack = self._stack
        if stack:
            stack[-1][2] += elapsed
        return result


def profiled_live(live, prof):
    """Wrap a LiveTelemetry sink so its updates are charged to a counter."""
    return _ProfiledLive(live, prof) if live is not None else None


def profiled_tracer(tracer, prof):
    """Wrap a tracer so span construction is charged to a counter."""
    return _ProfiledTracer(tracer, prof) if tracer is not None else None


# -- the repro-prof/1 report -------------------------------------------------------


def profile_summary(prof: ProfiledRun, top: int = 5) -> dict:
    """Compact summary for embedding (e.g. in a BENCH_*.json entry)."""
    return {
        "samples": prof.sample_count,
        "interval_s": prof.sample_interval,
        "top": prof.hot_functions(top),
        "subsystems": prof.subsystem_table(),
    }


def build_prof_report(prof: ProfiledRun, scenario: dict,
                      top: int = 15) -> dict:
    """Assemble the ``repro-prof/1`` document from a stopped profiler."""
    if prof._t0 is not None:
        raise ConfigurationError(
            "profiler must be stop()ed before reporting")
    wall = prof.wall_s
    throughput = {
        "events": prof.events,
        "events_per_wall_s": round(prof.events / wall, 1) if wall else 0.0,
        "virtual_s": round(prof.virtual_s, 6),
        "events_per_virtual_s": (
            round(prof.events / prof.virtual_s, 1) if prof.virtual_s else 0.0
        ),
    }
    if prof.ops:
        throughput["ops"] = prof.ops
        throughput["ops_per_wall_s"] = (
            round(prof.ops / wall, 1) if wall else 0.0)
        throughput["ops_per_virtual_s"] = (
            round(prof.ops / prof.virtual_s, 1) if prof.virtual_s else 0.0)
    return {
        "schema": SCHEMA,
        "scenario": dict(scenario),
        "host": host_meta(),
        "wall_s": round(wall, 6),
        "sampler": {
            "interval_s": prof.sample_interval,
            "samples": prof.sample_count,
            "distinct_stacks": len(prof.samples),
        },
        "subsystems": prof.subsystem_table(),
        "hot": prof.hot_functions(top),
        "throughput": throughput,
    }


def validate_prof_report(data: dict) -> None:
    """Schema check; raises :class:`ConfigurationError` on any mismatch."""
    if not isinstance(data, dict):
        raise ConfigurationError("prof report must be an object")
    if data.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"prof report schema is {data.get('schema')!r}, "
            f"expected {SCHEMA!r}")
    if not isinstance(data.get("scenario"), dict):
        raise ConfigurationError("prof report needs a scenario object")
    host = data.get("host")
    if not isinstance(host, dict):
        raise ConfigurationError("prof report needs a host object")
    for field in ("python", "platform", "cpu_count"):
        if field not in host:
            raise ConfigurationError(f"prof host is missing {field!r}")
    wall = data.get("wall_s")
    if not isinstance(wall, (int, float)) or isinstance(wall, bool) \
            or wall < 0:
        raise ConfigurationError("prof report needs numeric wall_s >= 0")
    sampler = data.get("sampler")
    if not isinstance(sampler, dict):
        raise ConfigurationError("prof report needs a sampler object")
    if not isinstance(sampler.get("samples"), int) \
            or sampler["samples"] < 0:
        raise ConfigurationError("sampler needs an integer sample count")
    interval = sampler.get("interval_s")
    if not isinstance(interval, (int, float)) or interval <= 0:
        raise ConfigurationError("sampler needs a positive interval_s")
    subsystems = data.get("subsystems")
    if not isinstance(subsystems, dict):
        raise ConfigurationError("prof report needs a subsystems object")
    for name, entry in subsystems.items():
        if not isinstance(entry, dict):
            raise ConfigurationError(f"subsystem {name!r} is not an object")
        for field in ("calls", "total_s", "self_s"):
            value = entry.get(field)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise ConfigurationError(
                    f"subsystem {name!r} needs numeric {field!r}")
    hot = data.get("hot")
    if not isinstance(hot, list):
        raise ConfigurationError("prof report needs a hot list")
    for index, row in enumerate(hot):
        if not isinstance(row, dict):
            raise ConfigurationError(f"hot row {index} is not an object")
        for field in ("func", "file", "self_samples", "total_samples"):
            if field not in row:
                raise ConfigurationError(
                    f"hot row {index} is missing {field!r}")
    throughput = data.get("throughput")
    if not isinstance(throughput, dict):
        raise ConfigurationError("prof report needs a throughput object")
    for field in ("events", "events_per_wall_s", "virtual_s",
                  "events_per_virtual_s"):
        value = throughput.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigurationError(
                f"throughput needs numeric {field!r}")


def dumps_prof_report(data: dict) -> str:
    """Deterministic JSON encoding (content itself is wall-clock data)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"


def write_prof_report(data: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_prof_report(data))


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000.0:.1f}ms"


def render_prof_report(data: dict) -> str:
    """ASCII hot-function table + subsystem self/total breakdown."""
    scenario = data["scenario"]
    context = "  ".join(f"{key} {scenario[key]}" for key in sorted(scenario))
    lines = [f"self-profile  {context}".rstrip()]
    tp = data["throughput"]
    line = (f"  wall {_fmt_s(data['wall_s'])}  events {tp['events']} "
            f"({tp['events_per_wall_s']:g}/wall-s, "
            f"{tp['events_per_virtual_s']:g}/virtual-s over "
            f"{tp['virtual_s']:g} virtual-s)")
    if "ops" in tp:
        line += (f"  ops {tp['ops']} ({tp['ops_per_wall_s']:g}/wall-s, "
                 f"{tp['ops_per_virtual_s']:g}/virtual-s)")
    lines.append(line)
    sampler = data["sampler"]
    lines.append(
        f"  sampler: {sampler['samples']} samples @ "
        f"{sampler['interval_s'] * 1000.0:g}ms "
        f"({sampler['distinct_stacks']} distinct stacks)"
    )
    if data["subsystems"]:
        wall = data["wall_s"] or 1.0
        lines.append(f"  {'subsystem':<24} {'calls':>10} {'total':>9} "
                     f"{'self':>9} {'self%':>6}")
        ordered = sorted(data["subsystems"].items(),
                         key=lambda kv: -kv[1]["self_s"])
        for name, entry in ordered:
            lines.append(
                f"  {name:<24} {entry['calls']:>10} "
                f"{_fmt_s(entry['total_s']):>9} {_fmt_s(entry['self_s']):>9} "
                f"{100.0 * entry['self_s'] / wall:>5.1f}%"
            )
        accounted = sum(e["self_s"] for e in data["subsystems"].values())
        other = data["wall_s"] - accounted
        if other > 0:
            lines.append(
                f"  {'(uncounted)':<24} {'':>10} {'':>9} "
                f"{_fmt_s(other):>9} {100.0 * other / wall:>5.1f}%"
            )
    if data["hot"]:
        lines.append("  hot functions (self samples):")
        for row in data["hot"]:
            lines.append(
                f"  {row.get('self_pct', 0.0):>6.1f}%  {row['func']:<28} "
                f"{row['file']}:{row.get('line', 0)}"
            )
    else:
        lines.append("  hot functions: no samples (run too short "
                     "for the sampling interval)")
    return "\n".join(lines)


# -- flamegraph exporters ----------------------------------------------------------


def _frame_label(frame: tuple) -> str:
    name, path, line = frame
    return f"{name} ({_short_path(path)}:{line})"


def folded_stacks(prof: ProfiledRun) -> str:
    """Collapsed-stack lines (``a;b;c count``) for ``flamegraph.pl``."""
    lines = []
    for stack, count in sorted(prof.samples.items()):
        if not stack:
            continue
        lines.append(
            ";".join(_frame_label(frame) for frame in stack) + f" {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_folded(prof: ProfiledRun, path: str) -> int:
    """Write folded stacks; returns the number of distinct stacks."""
    text = folded_stacks(prof)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return len(text.splitlines())


def speedscope_document(prof: ProfiledRun,
                        name: str = "repro self-profile") -> dict:
    """A sampled-format speedscope file (https://www.speedscope.app)."""
    frames: list[dict] = []
    index: dict[tuple, int] = {}
    samples = []
    weights = []
    for stack, count in sorted(prof.samples.items()):
        ids = []
        for frame in stack:
            frame_id = index.get(frame)
            if frame_id is None:
                frame_id = index[frame] = len(frames)
                fn, path, line = frame
                frames.append({"name": fn, "file": _short_path(path),
                               "line": line})
            ids.append(frame_id)
        samples.append(ids)
        weights.append(count * prof.sample_interval)
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [{
            "type": "sampled",
            "name": name,
            "unit": "seconds",
            "startValue": 0,
            "endValue": round(total, 6),
            "samples": samples,
            "weights": [round(w, 6) for w in weights],
        }],
        "exporter": "repro-prof/1",
        "name": name,
    }


def write_speedscope(prof: ProfiledRun, path: str,
                     name: str = "repro self-profile") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(speedscope_document(prof, name), handle)
        handle.write("\n")

"""Span tracing over *simulated* time.

A :class:`Tracer` records :class:`Span` objects — named intervals on a
virtual clock, grouped by ``node`` (a process/engine: ``hive``, ``pdw``, a
mongod, a resource) and ``lane`` (a thread-like track within the node: a map
slot, a client, ``wait`` vs ``hold``).  Producers either

* call :meth:`Tracer.add` with explicit start/end times (the analytic
  engines, which compute phase durations rather than living on the event
  loop), or
* bracket work with :meth:`Tracer.begin` / :meth:`Tracer.end` around a
  clock callable (the discrete-event side), which also maintains the
  parent/child nesting stack.

The whole subsystem is **zero-overhead when disabled**: every hook in the
simulator and the engines defaults to ``tracer=None`` and guards its calls
with a single truthiness check, so an untraced run executes exactly the
code it executed before this module existed.  :data:`NULL_TRACER` is a
falsy no-op stand-in for call sites that prefer not to branch.

Determinism: spans carry only simulated times and caller-supplied
attributes — no wall-clock reads, no ids derived from ``id()`` or hashing —
so two runs with the same seed produce byte-identical exports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.errors import SimulationError


@dataclass
class Span:
    """One named interval of simulated time."""

    name: str
    start: float
    end: float
    cat: str = ""  # coarse category: "resource", "job", "phase", "request", ...
    node: str = "sim"  # Chrome trace pid: the process/engine/resource
    lane: str = "main"  # Chrome trace tid: the track within the node
    args: dict = field(default_factory=dict)
    parent: Optional[int] = None  # span_id of the enclosing span
    span_id: int = 0
    # Causal predecessors: (src_span_id, kind) tuples.  A link says "this
    # span could not start before src ended" — shuffle barriers, DMS waits,
    # lock handoffs, retry chains.  Populated via :meth:`Tracer.link`.
    links: list = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Span", tol: float = 1e-9) -> bool:
        """True when the two intervals genuinely intersect (not mere touch)."""
        return self.start < other.end - tol and other.start < self.end - tol


class Tracer:
    """Collects spans; span ids are assigned in record order (deterministic)."""

    enabled = True

    def __init__(self):
        self.spans: list[Span] = []
        self._open: list[Span] = []
        self._next_id = 1

    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.spans)

    # -- explicit-interval recording (analytic engines) -------------------------

    def add(
        self,
        name: str,
        start: float,
        end: float,
        *,
        cat: str = "",
        node: str = "sim",
        lane: str = "main",
        parent: Optional[int] = None,
        **args: Any,
    ) -> Span:
        """Record a completed span with explicit simulated start/end times."""
        if end < start:
            raise SimulationError(f"span {name!r} ends before it starts")
        if parent is None and self._open:
            parent = self._open[-1].span_id
        span = Span(
            name=name, start=start, end=end, cat=cat, node=node, lane=lane,
            args=dict(args), parent=parent, span_id=self._next_id,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    # -- bracketed recording (event-driven code) ---------------------------------

    def begin(
        self,
        name: str,
        now: float,
        *,
        cat: str = "",
        node: str = "sim",
        lane: str = "main",
        **args: Any,
    ) -> Span:
        """Open a span at ``now``; it nests under the innermost open span."""
        parent = self._open[-1].span_id if self._open else None
        span = Span(
            name=name, start=now, end=now, cat=cat, node=node, lane=lane,
            args=dict(args), parent=parent, span_id=self._next_id,
        )
        self._next_id += 1
        self.spans.append(span)
        self._open.append(span)
        return span

    def end(self, now: float) -> Span:
        """Close the innermost open span at ``now``."""
        if not self._open:
            raise SimulationError("Tracer.end with no open span")
        span = self._open.pop()
        if now < span.start:
            raise SimulationError(f"span {span.name!r} ends before it starts")
        span.end = now
        return span

    # -- causal links ------------------------------------------------------------

    def link(self, src: Span, dst: Span, kind: str = "seq") -> None:
        """Record that ``dst`` causally waited on ``src`` (``kind`` names why).

        Links point *backwards*: each span lists its predecessors, so path
        extraction walks from the end of a trace toward its start.  Self-links
        are rejected; duplicate (src, kind) pairs collapse to one entry.
        """
        if src.span_id == dst.span_id:
            raise SimulationError(
                f"span {dst.name!r} cannot causally link to itself")
        entry = (src.span_id, kind)
        if entry not in dst.links:
            dst.links.append(entry)

    # -- queries -----------------------------------------------------------------

    def find(
        self,
        *,
        name: Optional[str] = None,
        cat: Optional[str] = None,
        node: Optional[str] = None,
        lane: Optional[str] = None,
        prefix: Optional[str] = None,
    ) -> list[Span]:
        """Spans matching every given filter, in record order."""
        out = []
        for span in self.spans:
            if name is not None and span.name != name:
                continue
            if prefix is not None and not span.name.startswith(prefix):
                continue
            if cat is not None and span.cat != cat:
                continue
            if node is not None and span.node != node:
                continue
            if lane is not None and span.lane != lane:
                continue
            out.append(span)
        return out

    def children_of(self, parent: Span) -> list[Span]:
        return [s for s in self.spans if s.parent == parent.span_id]

    def total_duration(self, **filters: Any) -> float:
        return sum(s.duration for s in self.find(**filters))

    @property
    def nodes(self) -> list[str]:
        """Distinct nodes in first-seen order (deterministic)."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.node, None)
        return list(seen)


class NullTracer:
    """Falsy no-op tracer: ``if tracer:`` guards cost one branch and nothing else."""

    enabled = False
    spans: tuple = ()

    def __bool__(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def add(self, *args: Any, **kwargs: Any) -> None:
        return None

    def begin(self, *args: Any, **kwargs: Any) -> None:
        return None

    def end(self, now: float) -> None:
        return None

    def link(self, *args: Any, **kwargs: Any) -> None:
        return None

    def find(self, **filters: Any) -> list:
        return []

    def total_duration(self, **filters: Any) -> float:
        return 0.0


NULL_TRACER = NullTracer()

"""Structural checks a valid trace must satisfy.

These back the trace-invariant test suite, but they are also useful
interactively: after a surprising benchmark number, run them on the trace
to rule out instrumentation bugs before blaming the model.

* :func:`nesting_violations` — a child span must lie inside its parent.
* :func:`overlap_violations` — spans on one (node, lane) track must not
  intersect; applied to ``cat="resource"`` hold spans of a capacity-1
  resource this is the mutual-exclusion invariant.
* :func:`reconcile` — a parent interval must equal the sum of a set of
  child durations (mechanism attribution must add up).
"""

from __future__ import annotations

from repro.obs.trace import Span, Tracer


def nesting_violations(tracer: Tracer, tol: float = 1e-9) -> list[str]:
    """Spans whose interval escapes their parent's interval."""
    by_id = {s.span_id: s for s in tracer.spans}
    problems = []
    for span in tracer.spans:
        if span.parent is None:
            continue
        parent = by_id.get(span.parent)
        if parent is None:
            problems.append(f"{span.name}: dangling parent id {span.parent}")
            continue
        if span.start < parent.start - tol or span.end > parent.end + tol:
            problems.append(
                f"{span.name} [{span.start:.6g}, {span.end:.6g}] escapes "
                f"{parent.name} [{parent.start:.6g}, {parent.end:.6g}]"
            )
    return problems


def overlap_violations(spans: list[Span], tol: float = 1e-9) -> list[str]:
    """Pairs of spans on the same (node, lane) track that intersect."""
    tracks: dict[tuple[str, str], list[Span]] = {}
    for span in spans:
        tracks.setdefault((span.node, span.lane), []).append(span)
    problems = []
    for (node, lane), track in tracks.items():
        ordered = sorted(track, key=lambda s: (s.start, s.end))
        for a, b in zip(ordered, ordered[1:]):
            if a.overlaps(b, tol):
                problems.append(
                    f"{node}/{lane}: {a.name} [{a.start:.6g}, {a.end:.6g}] "
                    f"overlaps {b.name} [{b.start:.6g}, {b.end:.6g}]"
                )
    return problems


def reconcile(expected: float, spans: list[Span], tol: float = 1e-6) -> float:
    """Assert the spans' total duration matches ``expected`` (relative tol).

    Returns the measured total so callers can report it.
    """
    total = sum(s.duration for s in spans)
    scale = max(abs(expected), 1e-12)
    if abs(total - expected) / scale > tol:
        raise AssertionError(
            f"span total {total!r} does not reconcile with expected {expected!r}"
        )
    return total

"""Structural checks a valid trace must satisfy.

These back the trace-invariant test suite, but they are also useful
interactively: after a surprising benchmark number, run them on the trace
to rule out instrumentation bugs before blaming the model.

* :func:`nesting_violations` — a child span must lie inside its parent.
* :func:`overlap_violations` — spans on one (node, lane) track must not
  intersect; applied to ``cat="resource"`` hold spans of a capacity-1
  resource this is the mutual-exclusion invariant.
* :func:`reconcile` — a parent interval must equal the sum of a set of
  child durations (mechanism attribution must add up).
* :func:`link_violations` — causal links must resolve, never point at the
  span itself, never run backwards in time, and never form a cycle.
"""

from __future__ import annotations

from repro.obs.trace import Span, Tracer


def nesting_violations(tracer: Tracer, tol: float = 1e-9) -> list[str]:
    """Spans whose interval escapes their parent's interval."""
    by_id = {s.span_id: s for s in tracer.spans}
    problems = []
    for span in tracer.spans:
        if span.parent is None:
            continue
        parent = by_id.get(span.parent)
        if parent is None:
            problems.append(f"{span.name}: dangling parent id {span.parent}")
            continue
        if span.start < parent.start - tol or span.end > parent.end + tol:
            problems.append(
                f"{span.name} [{span.start:.6g}, {span.end:.6g}] escapes "
                f"{parent.name} [{parent.start:.6g}, {parent.end:.6g}]"
            )
    return problems


def overlap_violations(spans: list[Span], tol: float = 1e-9) -> list[str]:
    """Pairs of spans on the same (node, lane) track that intersect."""
    tracks: dict[tuple[str, str], list[Span]] = {}
    for span in spans:
        tracks.setdefault((span.node, span.lane), []).append(span)
    problems = []
    for (node, lane), track in tracks.items():
        ordered = sorted(track, key=lambda s: (s.start, s.end))
        for a, b in zip(ordered, ordered[1:]):
            if a.overlaps(b, tol):
                problems.append(
                    f"{node}/{lane}: {a.name} [{a.start:.6g}, {a.end:.6g}] "
                    f"overlaps {b.name} [{b.start:.6g}, {b.end:.6g}]"
                )
    return problems


def link_violations(tracer: Tracer, tol: float = 1e-9) -> list[str]:
    """Causal-link problems: orphans, self-links, time travel, cycles.

    A link ``(src, kind)`` on span ``dst`` claims ``dst`` waited for
    ``src``; that claim is checkable: ``src`` must exist, must not be
    ``dst`` itself, and must end no later than ``dst`` starts (within
    ``tol``).  The link graph over all spans must also be acyclic — checked
    iteratively so arbitrarily deep chains cannot blow the recursion limit.
    """
    by_id = {s.span_id: s for s in tracer.spans}
    problems = []
    edges: dict[int, list[int]] = {}
    for span in tracer.spans:
        for src_id, kind in span.links:
            src = by_id.get(src_id)
            if src is None:
                problems.append(
                    f"{span.name}: {kind} link to unknown span id {src_id}"
                )
                continue
            if src_id == span.span_id:
                problems.append(f"{span.name}: {kind} link to itself")
                continue
            if src.end > span.start + tol:
                problems.append(
                    f"{span.name} starts at {span.start:.6g} but its {kind} "
                    f"predecessor {src.name} ends at {src.end:.6g}"
                )
            edges.setdefault(span.span_id, []).append(src_id)

    # Iterative three-color DFS over the predecessor graph.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {sid: WHITE for sid in by_id}
    for start_id in by_id:
        if color[start_id] != WHITE:
            continue
        stack = [(start_id, iter(edges.get(start_id, ())))]
        color[start_id] = GRAY
        while stack:
            node_id, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in color:
                    continue  # orphan, already reported
                if color[nxt] == GRAY:
                    problems.append(
                        f"link cycle through span id {nxt} "
                        f"({by_id[nxt].name})"
                    )
                elif color[nxt] == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(edges.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node_id] = BLACK
                stack.pop()
    return problems


def reconcile(expected: float, spans: list[Span], tol: float = 1e-6) -> float:
    """Assert the spans' total duration matches ``expected`` (relative tol).

    Returns the measured total so callers can report it.
    """
    total = sum(s.duration for s in spans)
    scale = max(abs(expected), 1e-12)
    if abs(total - expected) / scale > tol:
        raise AssertionError(
            f"span total {total!r} does not reconcile with expected {expected!r}"
        )
    return total

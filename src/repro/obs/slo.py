"""Multi-window burn-rate SLO rules evaluated on the virtual clock.

The grammar is the SRE-workbook shape, one rule per clause::

    p99<=250ms@5s,60s ; error_rate<=1%@10s,60s

reads "p99 must stay at or under 250 ms — alert when the 5 s *and* 60 s
windows are both burning error budget at >= 1x".  For a percentile target
``pXX <= T`` the error budget is the fraction of ops allowed over ``T``
(``1 - XX/100``), and the burn rate of a window is::

    burn = (fraction of ops in the window over T) / budget

Multi-window semantics are the standard ones: a rule **fires** when every
window burns at >= 1.0 (the short window gives fast detection, the long
window suppresses blips), and the open alert **clears** when the shortest
window drops back under 1.0 (the long window would otherwise hold an
alert open for minutes of virtual time after recovery).

Each alert is attributed to the concurrent fault/chaos/election event when
one overlaps its detection window — a primary-kill alert names the kill,
not just "p99 high".  Metrics: ``p50/p95/p99/p999`` and ``mean`` (latency
thresholds in ``ms`` or ``s``), ``error_rate`` (threshold ``N%`` or a
fraction).  All evaluation reads :class:`~repro.obs.digest.WindowedDigest`
sketches — nothing here stores per-op data.
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigurationError

#: Metrics a rule may target, with the percentile value where relevant.
_PERCENTILE_METRICS = {"p50": 50.0, "p95": 95.0, "p99": 99.0, "p999": 99.9}
SLO_METRICS = tuple(_PERCENTILE_METRICS) + ("mean", "error_rate")


def _parse_duration(text: str, what: str) -> float:
    """``250ms`` / ``5s`` / ``1m`` -> seconds; ConfigurationError otherwise."""
    text = text.strip()
    for suffix, scale in (("ms", 1e-3), ("s", 1.0), ("m", 60.0)):
        if text.endswith(suffix):
            body = text[: -len(suffix)]
            try:
                value = float(body)
            except ValueError:
                break
            if value <= 0.0 or not math.isfinite(value):
                raise ConfigurationError(
                    f"{what} {text!r} must be a positive duration")
            return value * scale
    raise ConfigurationError(
        f"{what} {text!r} is not a duration (use e.g. 250ms, 5s, 1m)")


class SloRule:
    """One parsed burn-rate rule: metric, threshold, and its windows."""

    __slots__ = ("metric", "threshold", "windows")

    def __init__(self, metric: str, threshold: float, windows):
        if metric not in SLO_METRICS:
            raise ConfigurationError(
                f"unknown SLO metric {metric!r}; expected one of "
                f"{', '.join(SLO_METRICS)}")
        if threshold <= 0.0 or not math.isfinite(threshold):
            raise ConfigurationError(
                f"SLO threshold for {metric} must be positive, "
                f"got {threshold}")
        windows = sorted(set(float(w) for w in windows))
        if not windows:
            raise ConfigurationError(
                f"SLO rule for {metric} needs at least one window")
        if any(w <= 0.0 for w in windows):
            raise ConfigurationError(
                f"SLO windows for {metric} must be positive")
        self.metric = metric
        self.threshold = threshold
        self.windows = tuple(windows)

    @classmethod
    def parse(cls, clause: str) -> "SloRule":
        """Parse one ``METRIC<=THRESHOLD@WINDOW[,WINDOW...]`` clause."""
        clause = clause.strip()
        if "<=" not in clause:
            raise ConfigurationError(
                f"SLO rule {clause!r} needs '<=' "
                f"(e.g. p99<=250ms@5s,60s)")
        metric, _, rest = clause.partition("<=")
        metric = metric.strip()
        if "@" not in rest:
            raise ConfigurationError(
                f"SLO rule {clause!r} needs '@WINDOWS' "
                f"(e.g. p99<=250ms@5s,60s)")
        threshold_text, _, windows_text = rest.partition("@")
        threshold_text = threshold_text.strip()
        if metric == "error_rate":
            try:
                if threshold_text.endswith("%"):
                    threshold = float(threshold_text[:-1]) / 100.0
                else:
                    threshold = float(threshold_text)
            except ValueError:
                raise ConfigurationError(
                    f"error_rate threshold {threshold_text!r} is not "
                    f"a number or percentage")
            if not 0.0 < threshold <= 1.0:
                raise ConfigurationError(
                    f"error_rate threshold must be in (0, 1], "
                    f"got {threshold}")
        else:
            threshold = _parse_duration(
                threshold_text, f"{metric} threshold")
        windows = [
            _parse_duration(part, f"{metric} window")
            for part in windows_text.split(",") if part.strip()
        ]
        return cls(metric, threshold, windows)

    @property
    def budget(self) -> float:
        """Error budget: the fraction of bad events the rule tolerates."""
        if self.metric in _PERCENTILE_METRICS:
            return 1.0 - _PERCENTILE_METRICS[self.metric] / 100.0
        return 1.0  # mean/error_rate burn is a direct ratio to threshold

    def spec_string(self) -> str:
        if self.metric == "error_rate":
            threshold = f"{self.threshold * 100.0:g}%"
        elif self.threshold < 1.0:
            threshold = f"{self.threshold * 1000.0:g}ms"
        else:
            threshold = f"{self.threshold:g}s"
        windows = ",".join(f"{w:g}s" for w in self.windows)
        return f"{self.metric}<={threshold}@{windows}"

    def burn(self, digest, errors: int) -> float:
        """Burn rate of one window given its merged digest + error count."""
        if self.metric == "error_rate":
            total = digest.observations + errors
            if total == 0:
                return 0.0
            return (errors / total) / self.threshold
        if self.metric == "mean":
            return digest.mean / self.threshold if digest.count else 0.0
        n = digest.observations
        if n == 0:
            return 0.0
        fraction_over = digest.count_over(self.threshold) / n
        return fraction_over / self.budget


def parse_slo_rules(spec: str) -> list:
    """Parse a ``;``-separated rule list; ConfigurationError on any clause."""
    clauses = [part for part in str(spec).split(";") if part.strip()]
    if not clauses:
        raise ConfigurationError("empty --slo-rules spec")
    return [SloRule.parse(clause) for clause in clauses]


class Alert:
    """One firing of a rule, with optional attribution to a live event."""

    __slots__ = ("rule", "fired_at", "cleared_at", "peak_burn", "event")

    def __init__(self, rule: SloRule, fired_at: float):
        self.rule = rule
        self.fired_at = fired_at
        self.cleared_at: float | None = None
        self.peak_burn = 0.0
        self.event: str | None = None

    @property
    def open(self) -> bool:
        return self.cleared_at is None

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.spec_string(),
            "fired_at": round(self.fired_at, 6),
            "cleared_at": (
                round(self.cleared_at, 6)
                if self.cleared_at is not None else None
            ),
            "peak_burn": round(self.peak_burn, 4),
            "event": self.event,
        }


class SloMonitor:
    """Evaluates rules against a live telemetry source at slice boundaries.

    The ``source`` duck type needs two reads, both digest-backed:

    * ``source.window(start, end)`` -> merged :class:`QuantileDigest`
    * ``source.errors_in(start, end)`` -> error count in the interval

    and optionally ``source.events`` — ``(label, start, end)`` triples of
    fault/chaos/election activity used for alert attribution.
    """

    def __init__(self, rules):
        self.rules = list(rules)
        self.alerts: list[Alert] = []
        self._open: dict[int, Alert] = {}

    def evaluate(self, now: float, source) -> None:
        """Evaluate every rule at virtual time ``now``."""
        for index, rule in enumerate(self.rules):
            burns = []
            for window in rule.windows:
                digest = source.window(max(0.0, now - window), now)
                errors = source.errors_in(max(0.0, now - window), now)
                burns.append(rule.burn(digest, errors))
            open_alert = self._open.get(index)
            firing = bool(burns) and min(burns) >= 1.0
            short_burn = burns[0] if burns else 0.0
            if open_alert is None:
                if firing:
                    alert = Alert(rule, now)
                    alert.peak_burn = short_burn
                    alert.event = self._attribute(rule, now, source)
                    self._open[index] = alert
                    self.alerts.append(alert)
            else:
                open_alert.peak_burn = max(open_alert.peak_burn, short_burn)
                if short_burn < 1.0:
                    open_alert.cleared_at = now
                    del self._open[index]

    def finish(self, now: float, source=None) -> None:
        """Close any still-open alerts at end of run (cleared_at = end).

        When ``source`` is given, alerts that fired before their cause was
        noted (events can be logged after the slice that detected the
        burn) get one final attribution pass.
        """
        for index in sorted(self._open):
            self._open[index].cleared_at = now
        self._open.clear()
        if source is not None:
            for alert in self.alerts:
                if alert.event is None:
                    alert.event = self._attribute(
                        alert.rule, alert.fired_at, source)

    def _attribute(self, rule: SloRule, fired_at: float, source):
        """Name the event overlapping the detection window, if any.

        Looks back over the shortest window first (the one that detected
        the burn), then the longest.  Among overlapping events the one
        covering the most of the detection window wins (a kill's failover
        interval beats an instant marker that merely coincides); ties go
        to the latest-starting event — the freshest cause.
        """
        events = getattr(source, "events", None) or []
        for lookback in (rule.windows[0], rule.windows[-1]):
            start = fired_at - lookback
            best = None  # ((overlap, ev_start), label)
            for label, ev_start, ev_end in events:
                if ev_start <= fired_at and ev_end >= start:
                    overlap = min(ev_end, fired_at) - max(ev_start, start)
                    key = (overlap, ev_start)
                    if best is None or key > best[0]:
                        best = (key, label)
            if best is not None:
                return best[1]
        return None

    @property
    def open_alerts(self) -> list:
        return [self._open[i] for i in sorted(self._open)]

    def to_dicts(self) -> list:
        return [alert.to_dict() for alert in self.alerts]

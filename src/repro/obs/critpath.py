"""Critical-path extraction over traced runs.

Given a :class:`~repro.obs.trace.Tracer` full of spans — now carrying
explicit causal ``links`` (shuffle barriers, DMS waits, lock handoffs,
retry chains) — this module answers *why the run took as long as it did*:
the **critical path** is the chain of spans that tiles the root span's
interval end-to-start, descending into children where structure exists and
walking causal links (or sibling adjacency) backwards at each level.

The extraction is deliberately iterative (explicit work stack) so traces
with thousands of nested spans — e.g. the event simulator's per-op chains —
never hit the interpreter recursion limit, and deterministic: ties break on
``span_id``, which is assigned in record order.

Per-span **slack** complements the path: for every span we report how much
longer it could have run without moving the end of its sibling group
(``group makespan − span.end``).  Spans on the critical path have zero
slack by construction; a map task with 40 s of slack is 40 s away from
mattering.

Serialization follows the repo's report idiom: schema ``repro-critpath/1``,
sorted keys, fixed separators, byte-identical per seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import SimulationError
from repro.obs.trace import Span

SCHEMA = "repro-critpath/1"

_TOL = 1e-9


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


@dataclass
class PathSegment:
    """One slice of the critical path: ``span`` is on the path for [start, end]."""

    span: Span
    start: float
    end: float
    via: str = "self"  # how this slice entered the path: "self", "child", or a link kind

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The extracted path plus per-span slack and category rollups."""

    root: Span
    segments: list = field(default_factory=list)  # chronological PathSegments
    edges: list = field(default_factory=list)  # (src_id, dst_id, kind) used
    slack: dict = field(default_factory=dict)  # span_id -> seconds of slack

    @property
    def total_seconds(self) -> float:
        return self.root.end - self.root.start

    def by_cat(self) -> dict:
        """Path seconds per span category (empty cat reported as "uncat")."""
        out: dict[str, float] = {}
        for seg in self.segments:
            key = seg.span.cat or "uncat"
            out[key] = out.get(key, 0.0) + seg.seconds
        return out

    def by_name(self) -> dict:
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.span.name] = out.get(seg.span.name, 0.0) + seg.seconds
        return out

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "root": {
                "name": self.root.name,
                "start": _round(self.root.start),
                "end": _round(self.root.end),
                "seconds": _round(self.total_seconds),
            },
            "segments": [
                {
                    "span_id": seg.span.span_id,
                    "name": seg.span.name,
                    "cat": seg.span.cat,
                    "node": seg.span.node,
                    "lane": seg.span.lane,
                    "start": _round(seg.start),
                    "end": _round(seg.end),
                    "seconds": _round(seg.seconds),
                    "via": seg.via,
                }
                for seg in self.segments
            ],
            "edges": [
                {"src": src, "dst": dst, "kind": kind}
                for src, dst, kind in self.edges
            ],
            "by_cat": {k: _round(v) for k, v in sorted(self.by_cat().items())},
            "slack_top": [
                {"span_id": sid, "name": name, "slack_seconds": _round(sl)}
                for sid, name, sl in self.top_slack()
            ],
        }

    def top_slack(self, count: int = 10) -> list:
        """The ``count`` off-path spans with the most slack (deterministic order)."""
        on_path = {seg.span.span_id for seg in self.segments}
        ranked = sorted(
            (
                (sid, name, sl)
                for (sid, name), sl in self.slack.items()
                if sid not in on_path and sl > _TOL
            ),
            key=lambda item: (-item[2], item[0]),
        )
        return ranked[:count]


def pick_root(spans) -> Span:
    """Default root: the query span if one exists, else the longest top-level span."""
    roots = [s for s in spans if s.parent is None]
    if not roots:
        raise SimulationError("critical path needs at least one top-level span")
    queries = [s for s in roots if s.cat == "query"]
    pool = queries or roots
    return max(pool, key=lambda s: (s.duration, -s.span_id))


def _compute_slack(spans) -> dict:
    """``(span_id, name) -> group makespan − span.end`` over sibling groups."""
    makespan: dict = {}
    for span in spans:
        key = span.parent
        if key not in makespan or span.end > makespan[key]:
            makespan[key] = span.end
    return {
        (span.span_id, span.name): max(0.0, makespan[span.parent] - span.end)
        for span in spans
    }


def critical_path(tracer, root: Span | None = None, tol: float = _TOL) -> CriticalPath:
    """Extract the critical path of a traced run.

    Walks backwards from ``root.end``: at each nesting level the latest-ending
    child claims the tail of the window, then the walk follows that child's
    causal ``links`` (preferred) or falls back to the latest-ending sibling
    that finished before it started.  Gaps no child explains are attributed
    to the container as self-time.  Each claimed child is then decomposed the
    same way (explicit stack — no recursion).  Raises
    :class:`~repro.common.errors.SimulationError` on causal-link cycles.
    """
    spans = list(tracer.spans)
    if root is None:
        root = pick_root(spans)
    by_id = {s.span_id: s for s in spans}
    children: dict = {}
    for span in spans:
        if span.parent is not None:
            children.setdefault(span.parent, []).append(span)

    segments: list[PathSegment] = []
    edges: list[tuple] = []

    # Work items: decompose `span`'s interval up to time `t`, tagging the
    # first (latest) emitted slice with `via` (how the span entered the path).
    stack: list[tuple] = [(root, root.end, "root")]
    expanded: set[int] = set()

    while stack:
        span, t, entry_via = stack.pop()
        if span.span_id in expanded:
            raise SimulationError(
                f"causal link cycle through span {span.name!r} "
                f"(id {span.span_id})"
            )
        expanded.add(span.span_id)

        kids = children.get(span.span_id, [])
        cursor = t
        via = entry_via
        # Deferred self-slices so `segments` can stay append-only; sorted at
        # the end anyway, so just emit as found.
        chain_seen: set[int] = set()
        while True:
            cand = None
            for kid in kids:
                if kid.end <= cursor + tol and kid.end > span.start + tol:
                    if cand is None or (kid.end, kid.span_id) > (cand.end, cand.span_id):
                        cand = kid
            if cand is None:
                if cursor > span.start + tol:
                    segments.append(PathSegment(span, span.start, cursor, via))
                break
            if cursor > cand.end + tol:
                # The container was doing something no child explains.
                segments.append(PathSegment(span, cand.end, cursor, via))
                via = "self"
            # Walk the causal chain backwards among this level's children.
            cur, cur_via = cand, "child"
            while cur is not None:
                if cur.span_id in chain_seen:
                    raise SimulationError(
                        f"causal link cycle through span {cur.name!r} "
                        f"(id {cur.span_id})"
                    )
                chain_seen.add(cur.span_id)
                stack.append((cur, cur.end, cur_via))
                pred = None
                pred_kind = ""
                for src_id, kind in cur.links:
                    src = by_id.get(src_id)  # orphan link targets are skipped
                    if src is None or src.span_id == cur.span_id:
                        continue
                    if src.parent != cur.parent:
                        # Cross-container links (e.g. lock handoffs between
                        # resource nodes) annotate the DAG but cannot tile
                        # this container's interval.
                        continue
                    if src.end <= cur.start + tol:
                        if pred is None or (src.end, src.span_id) > (pred.end, pred.span_id):
                            pred, pred_kind = src, kind
                if pred is None:
                    # Fallback: sibling adjacency (back-to-back scheduling).
                    for kid in kids:
                        if kid.span_id == cur.span_id:
                            continue
                        if kid.end <= cur.start + tol and kid.end > span.start + tol:
                            if pred is None or (kid.end, kid.span_id) > (pred.end, pred.span_id):
                                pred, pred_kind = kid, "seq"
                if pred is not None:
                    edges.append((pred.span_id, cur.span_id, pred_kind))
                    if pred.end < cur.start - tol:
                        # Waiting gap between predecessor and successor.
                        segments.append(
                            PathSegment(span, pred.end, cur.start, "wait")
                        )
                    cursor = pred.end  # keeps bookkeeping consistent
                    cur, cur_via = pred, pred_kind
                else:
                    if cur.start > span.start + tol:
                        segments.append(
                            PathSegment(span, span.start, cur.start, via)
                        )
                    cur = None
            break

    # A claimed child is decomposed by its own stack item, which re-tiles
    # [child.start, child.end]; drop the placeholder slices a container
    # level would otherwise double-count.  (The stack items emitted either
    # child-level segments or self segments; parent levels only emitted
    # gap/self slices, so there is no overlap to drop — just sort.)
    segments.sort(key=lambda seg: (seg.start, seg.end, seg.span.span_id))
    # Coalesce zero-width slices out.
    segments = [seg for seg in segments if seg.seconds > tol]

    return CriticalPath(
        root=root,
        segments=segments,
        edges=sorted(edges),
        slack=_compute_slack(spans),
    )


# -- serialization / rendering --------------------------------------------------


def dumps_critical_path(path: CriticalPath) -> str:
    """Deterministic JSON: sorted keys, fixed separators, trailing newline."""
    return json.dumps(path.to_dict(), sort_keys=True,
                      separators=(",", ":")) + "\n"


def write_critical_path(path: CriticalPath, filename: str) -> None:
    with open(filename, "w", encoding="utf-8") as handle:
        handle.write(dumps_critical_path(path))


def render_critical_path(path: CriticalPath, width: int = 72) -> str:
    """ASCII rendering: one line per path slice, plus category rollup."""
    total = path.total_seconds or 1.0
    lines = [
        f"critical path: {path.root.name}  "
        f"[{path.root.start:.3f} .. {path.root.end:.3f}]  "
        f"{path.total_seconds:.3f} s, {len(path.segments)} segments"
    ]
    for seg in path.segments:
        share = seg.seconds / total
        label = seg.span.name if seg.via in ("self", "root") else (
            f"{seg.span.name} <-{seg.via}")
        lines.append(
            f"  {seg.start:>10.3f} .. {seg.end:>10.3f} "
            f"{seg.seconds:>9.3f} s {share:>5.1%}  {label[:width]}"
        )
    lines.append("  by category:")
    for cat, seconds in sorted(path.by_cat().items(),
                               key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"    {cat:<16} {seconds:>9.3f} s {seconds / total:>5.1%}")
    top = path.top_slack(5)
    if top:
        lines.append("  most slack (off-path):")
        for sid, name, slack in top:
            lines.append(f"    {name:<28} {slack:>9.3f} s (span {sid})")
    return "\n".join(lines)

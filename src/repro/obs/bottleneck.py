"""Bottleneck attribution: intersect utilization series with phase spans.

The paper's headline explanations are attributions — "Q1's map phase is
CPU-bound on RCFile decode" (Section 4.3: ~70 MB/s per node against the
400 MB/s HDFS could deliver), "workload A mongods spend 25-45% of their
time at the global write lock" (Section 5.3, via mongostat).  This module
derives the same statements mechanically: for each phase span recorded by
the PR 1 tracer, compute the time-weighted mean of every busy series over
the span's window and name the resource closest to saturation.

The attribution is deliberately simple (argmax of mean busy fraction,
with a saturation flag at :data:`SATURATED`); the value is that it is
computed from the *same* series the exporters write, so a report line can
be checked against the CSV/Chrome-trace artifacts and against the span
invariants of :mod:`repro.obs.invariants`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.timeseries import BUSY, Series, UtilizationSampler

# Mean busy fraction at which a resource counts as saturated for a phase.
SATURATED = 0.85


@dataclass(frozen=True)
class Attribution:
    """The verdict for one phase: which resource was the busiest, how busy."""

    phase: str
    start: float
    end: float
    bottleneck: str
    busy: float
    utilizations: dict[str, float] = field(default_factory=dict)
    note: str = ""

    @property
    def saturated(self) -> bool:
        return self.busy >= SATURATED

    @property
    def duration(self) -> float:
        return self.end - self.start

    def describe(self) -> str:
        flag = "  [SATURATED]" if self.saturated else ""
        return (
            f"{self.phase}  [{self.start:.6g}s .. {self.end:.6g}s]  "
            f"-> {self.bottleneck} ({self.busy:.0%} busy){flag}"
        )


def _label(series: Series, scoped: bool) -> str:
    """Row label for a series: drop redundant node/resource repetition."""
    if scoped or series.node == series.resource:
        return series.resource
    if series.resource == "servers":
        return series.node
    return f"{series.node}.{series.resource}"


def attribute_window(
    sampler: UtilizationSampler,
    phase: str,
    start: float,
    end: float,
    node: Optional[str] = None,
    resources: Optional[list[str]] = None,
    notes: Optional[dict[str, str]] = None,
) -> Optional[Attribution]:
    """Attribute one ``[start, end)`` window to its busiest resource.

    ``node`` restricts the candidate series to one node (labels then drop
    the node prefix); ``resources`` restricts to named resources;
    ``notes`` maps a winning label to an explanatory note for the report.
    Returns ``None`` when no busy series overlaps the window.
    """
    utilizations: dict[str, float] = {}
    for series in sampler.series(node=node, metric=BUSY):
        if resources is not None and series.resource not in resources:
            continue
        utilizations[_label(series, node is not None)] = series.window_mean(start, end)
    if not utilizations or all(v == 0.0 for v in utilizations.values()):
        return None
    # Deterministic argmax: ties break on label order.
    bottleneck = max(sorted(utilizations), key=lambda k: utilizations[k])
    note = (notes or {}).get(bottleneck, "")
    return Attribution(
        phase=phase,
        start=start,
        end=end,
        bottleneck=bottleneck,
        busy=utilizations[bottleneck],
        utilizations=utilizations,
        note=note,
    )


def attribute_phases(
    tracer,
    sampler: UtilizationSampler,
    cat: str = "phase",
    node: Optional[str] = None,
    notes: Optional[dict[str, str]] = None,
    min_duration: float = 0.0,
) -> list[Attribution]:
    """One :class:`Attribution` per ``cat`` span, in span order.

    Intersects each phase span recorded by the tracer with the busy series
    of the node the span ran on (or ``node`` when given), skipping phases
    shorter than ``min_duration`` and phases no series overlaps.
    """
    out = []
    for span in tracer.find(cat=cat):
        if span.duration < min_duration:
            continue
        att = attribute_window(
            sampler,
            span.name,
            span.start,
            span.end,
            node=node if node is not None else span.node,
            notes=notes,
        )
        if att is not None:
            out.append(att)
    return out


def lock_band_note(busy_fraction: float) -> str:
    """Annotate a lock busy fraction against the paper's mongostat band."""
    from repro.docstore.mongostat import PAPER_LOCK_BAND, in_paper_lock_band

    lo, hi = PAPER_LOCK_BAND
    percent = busy_fraction * 100.0
    if in_paper_lock_band(percent):
        return (
            f"lock held {percent:.0f}% of the time — inside the paper's "
            f"{lo:.0f}-{hi:.0f}% mongostat band (Section 5.3)"
        )
    return (
        f"lock held {percent:.0f}% of the time — outside the paper's "
        f"{lo:.0f}-{hi:.0f}% mongostat band"
    )


def render_report(attributions: list[Attribution],
                  title: str = "bottleneck report") -> str:
    """Plain-text report: one block per phase, busiest resource first."""
    lines = [title, "=" * len(title)]
    if not attributions:
        lines.append("(no phases attributed — was a sampler attached?)")
        return "\n".join(lines)
    for att in attributions:
        lines.append(att.describe())
        ranked = sorted(att.utilizations.items(), key=lambda kv: (-kv[1], kv[0]))
        lines.append(
            "    " + " | ".join(f"{label} {value:.0%}" for label, value in ranked)
        )
        if att.note:
            lines.append(f"    note: {att.note}")
    return "\n".join(lines)

"""``repro.obs`` — tracing and metrics for every simulated mechanism.

The paper's argument is mechanism attribution: *which* part of each system
(map-task waves, DMS shuffles, global-lock waits, buffer-pool misses) moved
a number.  This package makes the reproduction's simulators show their
work: a :class:`Tracer` records spans in simulated time, a
:class:`MetricsRegistry` records mechanism counters, and the exporters
render Chrome trace-event JSON (``chrome://tracing`` / Perfetto) and ASCII
timelines.

Everything is opt-in and zero-overhead when off: hooks default to ``None``
and an untraced run executes the pre-instrumentation code path unchanged.
"""

from repro.obs.bottleneck import (
    Attribution,
    attribute_phases,
    attribute_window,
    lock_band_note,
    render_report,
)
from repro.obs.export import (
    ascii_timeline,
    chrome_counter_events,
    chrome_trace,
    chrome_trace_events,
    dumps_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.invariants import nesting_violations, overlap_violations, reconcile
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timeseries import (
    NULL_SAMPLER,
    NullSampler,
    Series,
    UtilizationSampler,
    dumps_series,
    series_from_tracer,
    series_to_csv,
    sparkline_heatmap,
    write_series_csv,
    write_series_json,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "UtilizationSampler",
    "NullSampler",
    "NULL_SAMPLER",
    "Series",
    "series_from_tracer",
    "series_to_csv",
    "write_series_csv",
    "dumps_series",
    "write_series_json",
    "sparkline_heatmap",
    "Attribution",
    "attribute_window",
    "attribute_phases",
    "lock_band_note",
    "render_report",
    "chrome_trace",
    "chrome_trace_events",
    "chrome_counter_events",
    "dumps_chrome_trace",
    "write_chrome_trace",
    "write_metrics",
    "ascii_timeline",
    "nesting_violations",
    "overlap_violations",
    "reconcile",
]

"""``repro.obs`` — tracing and metrics for every simulated mechanism.

The paper's argument is mechanism attribution: *which* part of each system
(map-task waves, DMS shuffles, global-lock waits, buffer-pool misses) moved
a number.  This package makes the reproduction's simulators show their
work: a :class:`Tracer` records spans in simulated time, a
:class:`MetricsRegistry` records mechanism counters, and the exporters
render Chrome trace-event JSON (``chrome://tracing`` / Perfetto) and ASCII
timelines.

Everything is opt-in and zero-overhead when off: hooks default to ``None``
and an untraced run executes the pre-instrumentation code path unchanged.
"""

from repro.obs.export import (
    ascii_timeline,
    chrome_trace,
    chrome_trace_events,
    dumps_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.invariants import nesting_violations, overlap_violations, reconcile
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "chrome_trace",
    "chrome_trace_events",
    "dumps_chrome_trace",
    "write_chrome_trace",
    "write_metrics",
    "ascii_timeline",
    "nesting_violations",
    "overlap_violations",
    "reconcile",
]

"""``repro.obs`` — tracing and metrics for every simulated mechanism.

The paper's argument is mechanism attribution: *which* part of each system
(map-task waves, DMS shuffles, global-lock waits, buffer-pool misses) moved
a number.  This package makes the reproduction's simulators show their
work: a :class:`Tracer` records spans in simulated time, a
:class:`MetricsRegistry` records mechanism counters, and the exporters
render Chrome trace-event JSON (``chrome://tracing`` / Perfetto) and ASCII
timelines.

Everything is opt-in and zero-overhead when off: hooks default to ``None``
and an untraced run executes the pre-instrumentation code path unchanged.
"""

from repro.obs.bottleneck import (
    Attribution,
    attribute_phases,
    attribute_window,
    lock_band_note,
    render_report,
)
from repro.obs.critpath import (
    CriticalPath,
    PathSegment,
    critical_path,
    dumps_critical_path,
    pick_root,
    render_critical_path,
    write_critical_path,
)
from repro.obs.decompose import (
    DecompositionReport,
    QueryDecomposition,
    decompose_query,
    dumps_decomposition,
    fit_fixed_variable,
    render_decomposition,
    write_decomposition,
)
from repro.obs.digest import QuantileDigest, WindowedDigest
from repro.obs.export import (
    ascii_timeline,
    chrome_counter_events,
    chrome_trace,
    chrome_trace_events,
    dumps_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.invariants import (
    link_violations,
    nesting_violations,
    overlap_violations,
    reconcile,
)
from repro.obs.live import (
    LiveTelemetry,
    build_live_report,
    dumps_live_report,
    render_live_report,
    validate_live_report,
    write_live_report,
)
from repro.obs.compare import (
    compare_files,
    compare_runs,
    dumps_compare_report,
    host_delta,
    render_compare_report,
    validate_compare_report,
    write_compare_report,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.prof import (
    ProfiledRun,
    build_prof_report,
    dumps_prof_report,
    folded_stacks,
    host_meta,
    profile_summary,
    profiled_live,
    profiled_tracer,
    render_prof_report,
    speedscope_document,
    validate_prof_report,
    write_folded,
    write_prof_report,
    write_speedscope,
)
from repro.obs.sampling import SamplingTracer, SpanSamplePolicy
from repro.obs.slo import Alert, SloMonitor, SloRule, parse_slo_rules
from repro.obs.timeseries import (
    NULL_SAMPLER,
    NullSampler,
    Series,
    UtilizationSampler,
    dumps_series,
    series_from_tracer,
    series_to_csv,
    sparkline_heatmap,
    write_series_csv,
    write_series_json,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.whatif import (
    MECHANISMS,
    WhatIfReport,
    dss_whatif_report,
    dumps_whatif_report,
    oltp_whatif_report,
    parse_whatif,
    render_whatif_report,
    replay_hive,
    replay_oltp,
    replay_pdw,
    write_whatif_report,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "UtilizationSampler",
    "NullSampler",
    "NULL_SAMPLER",
    "Series",
    "series_from_tracer",
    "series_to_csv",
    "write_series_csv",
    "dumps_series",
    "write_series_json",
    "sparkline_heatmap",
    "Attribution",
    "attribute_window",
    "attribute_phases",
    "lock_band_note",
    "render_report",
    "chrome_trace",
    "chrome_trace_events",
    "chrome_counter_events",
    "dumps_chrome_trace",
    "write_chrome_trace",
    "write_metrics",
    "ascii_timeline",
    "nesting_violations",
    "overlap_violations",
    "link_violations",
    "reconcile",
    "CriticalPath",
    "PathSegment",
    "critical_path",
    "pick_root",
    "render_critical_path",
    "dumps_critical_path",
    "write_critical_path",
    "MECHANISMS",
    "WhatIfReport",
    "parse_whatif",
    "replay_hive",
    "replay_pdw",
    "replay_oltp",
    "dss_whatif_report",
    "oltp_whatif_report",
    "render_whatif_report",
    "dumps_whatif_report",
    "write_whatif_report",
    "QueryDecomposition",
    "DecompositionReport",
    "fit_fixed_variable",
    "decompose_query",
    "render_decomposition",
    "dumps_decomposition",
    "write_decomposition",
    "QuantileDigest",
    "WindowedDigest",
    "SamplingTracer",
    "SpanSamplePolicy",
    "SloRule",
    "SloMonitor",
    "Alert",
    "parse_slo_rules",
    "LiveTelemetry",
    "build_live_report",
    "validate_live_report",
    "dumps_live_report",
    "write_live_report",
    "render_live_report",
    "ProfiledRun",
    "host_meta",
    "profile_summary",
    "profiled_live",
    "profiled_tracer",
    "build_prof_report",
    "validate_prof_report",
    "dumps_prof_report",
    "write_prof_report",
    "render_prof_report",
    "folded_stacks",
    "write_folded",
    "speedscope_document",
    "write_speedscope",
    "compare_runs",
    "compare_files",
    "host_delta",
    "validate_compare_report",
    "dumps_compare_report",
    "write_compare_report",
    "render_compare_report",
]

"""``repro-live/1``: the live telemetry pipeline and its dashboard report.

:class:`LiveTelemetry` is the always-on collector: every completed
operation lands in a :class:`~repro.obs.digest.WindowedDigest` slice
(bounded memory, no per-op lists), errors and censored in-flight ops are
counted per slice, and fault/chaos/election events are noted as labelled
intervals.  When SLO rules are attached, a
:class:`~repro.obs.slo.SloMonitor` is evaluated *online* at every
virtual-time slice boundary as the run advances — alerts fire during the
run, on the virtual clock, not in a post-hoc pass.

The report is the house shape (``build``/``validate``/``dumps``/``write``/
``render``): deterministic JSON plus an ASCII dashboard — one row per
slice with windowed p50/p99/throughput/errors, ``!`` markers where alerts
were open, the event timeline, and a telemetry self-overhead section
(slice/bucket counts and span sampler retention) proving the pipeline's
memory stays bounded.

Zero-cost contract: every producer hook takes ``live=None`` and guards
with one truthiness check; a run without ``--live-report`` constructs
nothing from this module.
"""

from __future__ import annotations

import json
import math

from repro.common.errors import ConfigurationError
from repro.obs.digest import (
    DEFAULT_GROWTH,
    DEFAULT_MIN_VALUE,
    QuantileDigest,
    WindowedDigest,
)
from repro.obs.slo import SloMonitor

SCHEMA = "repro-live/1"

#: Default dashboard slice width in virtual seconds.
DEFAULT_SLICE_S = 1.0


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


class LiveTelemetry:
    """Bounded-memory live collector + online SLO evaluation.

    Implements the :class:`~repro.obs.slo.SloMonitor` source protocol
    (``window``, ``errors_in``, ``events``).  Operations must be recorded
    in nondecreasing virtual-time order — both event simulators and the
    fault runners advance a monotonic clock, so this holds everywhere.
    """

    def __init__(self, slice_s: float = DEFAULT_SLICE_S, rules=None,
                 growth: float = DEFAULT_GROWTH,
                 min_value: float = DEFAULT_MIN_VALUE):
        if slice_s <= 0.0:
            raise ConfigurationError(
                f"live slice width must be > 0, got {slice_s}")
        self.slice_s = slice_s
        self.growth = growth
        self.min_value = min_value
        self.windowed = WindowedDigest(slice_s, growth, min_value)
        self.class_digests: dict[str, QuantileDigest] = {}
        self.class_errors: dict[str, int] = {}
        self.error_slices: dict[int, int] = {}
        self.events: list[tuple[str, float, float]] = []
        self.monitor = SloMonitor(rules) if rules else None
        self.ops = 0
        self.errors = 0
        self.sheds = 0
        self.shed_reasons: dict[str, int] = {}
        self.class_sheds: dict[str, int] = {}
        self.censored = 0
        self.record_calls = 0
        self.finished_at: float | None = None
        self._next_boundary = 1  # first slice boundary not yet evaluated

    def __bool__(self) -> bool:
        return True

    # -- recording (hot path) ----------------------------------------------------

    def _advance(self, t: float) -> None:
        if self.monitor is None:
            return
        width = self.slice_s
        while self._next_boundary * width <= t:
            self.monitor.evaluate(self._next_boundary * width, self)
            self._next_boundary += 1

    def record_op(self, t: float, latency: float, error: bool = False,
                  cls: str | None = None) -> None:
        """Record one finished op at completion time ``t``.

        ``cls`` additionally feeds a per-op-class (un-windowed) digest so
        bounded-memory runs can still report per-class percentiles.
        Error latencies are counted, not digested — error ops would
        otherwise pollute the success percentiles the SLO rules target.
        """
        self._advance(t)
        self.record_calls += 1
        if error:
            index = int(t / self.slice_s)
            self.error_slices[index] = self.error_slices.get(index, 0) + 1
            self.errors += 1
            if cls is not None:
                self.class_errors[cls] = self.class_errors.get(cls, 0) + 1
        else:
            self.windowed.record(t, latency)
            self.ops += 1
            if cls is not None:
                digest = self.class_digests.get(cls)
                if digest is None:
                    digest = QuantileDigest(self.growth, self.min_value)
                    self.class_digests[cls] = digest
                digest.record(latency)

    def record_shed(self, t: float, cls: str | None = None,
                    reason: str | None = None) -> None:
        """Record an op shed by overload protection at time ``t``.

        A shed op never received service, so it contributes no latency to
        any digest — shed ops are excluded from the mean and percentiles —
        but it lands in the per-slice error counts, so SLO error-rate
        burn alerts see load shedding as the client-visible failure it is.
        """
        self._advance(t)
        self.record_calls += 1
        index = int(t / self.slice_s)
        self.error_slices[index] = self.error_slices.get(index, 0) + 1
        self.sheds += 1
        if reason is not None:
            self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
        if cls is not None:
            self.class_sheds[cls] = self.class_sheds.get(cls, 0) + 1

    def record_censored(self, t: float, lower_bound: float) -> None:
        """Record an op still in flight at cutoff ``t`` (lower bound only)."""
        self._advance(t)
        self.record_calls += 1
        self.windowed.record_censored(t, lower_bound)
        self.censored += 1

    def note_event(self, label: str, start: float, end: float) -> None:
        """Note a fault/chaos/election interval for alert attribution."""
        self.events.append((str(label), float(start), float(end)))

    def finish(self, end: float) -> None:
        """Evaluate remaining boundaries and close open alerts at ``end``."""
        self._advance(end)
        if self.monitor is not None:
            if self._next_boundary * self.slice_s > end:
                # End mid-slice: one final evaluation at the true end time
                # so short runs still get at least one verdict.
                self.monitor.evaluate(end, self)
            self.monitor.finish(end, self)
        self.finished_at = end

    # -- SloMonitor source protocol ----------------------------------------------

    def window(self, start: float, end: float) -> QuantileDigest:
        return self.windowed.window(start, end)

    def errors_in(self, start: float, end: float) -> int:
        width = self.slice_s
        return sum(
            n for index, n in self.error_slices.items()
            if index * width < end and (index + 1) * width > start
        )

    # -- introspection -----------------------------------------------------------

    @property
    def alerts(self) -> list:
        return self.monitor.alerts if self.monitor else []

    def digest_buckets(self) -> int:
        return sum(
            len(d.buckets) + len(d.censored_buckets)
            for d in self.windowed.slices.values()
        )


def build_live_report(live: LiveTelemetry, scenario: dict,
                      sampler=None) -> dict:
    """Assemble the ``repro-live/1`` document from a finished collector."""
    if live.finished_at is None:
        raise ConfigurationError(
            "live telemetry must be finish()ed before reporting")
    duration = live.finished_at
    width = live.slice_s
    last_slice = max(
        [int(math.ceil(duration / width)) - 1, 0]
        + list(live.windowed.slices) + list(live.error_slices)
    )
    empty = QuantileDigest()
    series = []
    for index in range(0, last_slice + 1):
        # Slices with no ops still get a row — gaps in the timeline are
        # signal (a wedged server), not something to elide.
        digest = live.windowed.slices.get(index, empty)
        errors = live.error_slices.get(index, 0)
        t0 = index * width
        slice_end = min((index + 1) * width, duration)
        span = max(slice_end - t0, 1e-9)
        series.append({
            "t": _round(t0),
            "ops": digest.count,
            "errors": errors,
            "censored": digest.censored_count,
            "throughput": _round(digest.count / span, 3),
            "p50": _round(digest.percentile(50)),
            "p99": _round(digest.percentile(99)),
            "max": _round(digest.max if digest.observations else 0.0),
        })
    total = live.windowed.total()
    totals = {
        "ops": live.ops,
        "errors": live.errors,
        "sheds": live.sheds,
        "censored": live.censored,
        "throughput": _round(live.ops / duration if duration else 0.0, 3),
        "p50": _round(total.percentile(50)),
        "p95": _round(total.percentile(95)),
        "p99": _round(total.percentile(99)),
        "p999": _round(total.percentile(99.9)),
        "mean": _round(total.mean),
        "max": _round(total.max if total.observations else 0.0),
    }
    telemetry = {
        "slices": len(live.windowed.slices),
        "digest_buckets": live.digest_buckets(),
        "record_calls": live.record_calls,
        "events_noted": len(live.events),
        # Virtual-clock op rate: deterministic per seed, so it can live in
        # the report.  Wall-clock rates (events/ops per wall second) are
        # host-dependent and ride in repro-prof/1 instead — a live report
        # must stay byte-identical whether or not the run was profiled.
        "ops_per_virtual_s": _round(
            live.ops / duration if duration else 0.0, 3),
    }
    if sampler is not None and hasattr(sampler, "sample_stats"):
        telemetry["span_sampling"] = sampler.sample_stats()
    rules = [r.spec_string() for r in live.monitor.rules] if live.monitor \
        else []
    return {
        "schema": SCHEMA,
        "scenario": dict(scenario),
        "slice_s": _round(width),
        "duration": _round(duration),
        "totals": totals,
        "series": series,
        "rules": rules,
        "alerts": live.monitor.to_dicts() if live.monitor else [],
        "events": [
            {"label": label, "start": _round(start), "end": _round(end)}
            for label, start, end in live.events
        ],
        "telemetry": telemetry,
    }


_SERIES_REQUIRED = {
    "t": float, "ops": int, "errors": int, "censored": int,
    "throughput": float, "p50": float, "p99": float, "max": float,
}

_TOTALS_REQUIRED = {
    "ops": int, "errors": int, "sheds": int, "censored": int,
    "throughput": float,
    "p50": float, "p95": float, "p99": float, "p999": float,
    "mean": float, "max": float,
}

_ALERT_REQUIRED = ("rule", "fired_at", "cleared_at", "peak_burn", "event")


def _check_fields(obj: dict, required: dict, what: str) -> None:
    for field, kind in required.items():
        if field not in obj:
            raise ConfigurationError(f"{what} is missing {field!r}")
        value = obj[field]
        if kind is float:
            ok = isinstance(value, (int, float)) and not isinstance(
                value, bool)
        elif kind is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, kind)
        if not ok:
            raise ConfigurationError(
                f"{what} field {field!r} has type {type(value).__name__}, "
                f"expected {kind.__name__}")


def validate_live_report(data: dict) -> None:
    """Schema check; raises :class:`ConfigurationError` on any mismatch."""
    if not isinstance(data, dict):
        raise ConfigurationError("live report must be an object")
    if data.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"live report schema is {data.get('schema')!r}, "
            f"expected {SCHEMA!r}")
    if not isinstance(data.get("scenario"), dict):
        raise ConfigurationError("live report needs a scenario object")
    for field in ("slice_s", "duration"):
        value = data.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigurationError(f"live report needs numeric {field!r}")
    totals = data.get("totals")
    if not isinstance(totals, dict):
        raise ConfigurationError("live report needs a totals object")
    _check_fields(totals, _TOTALS_REQUIRED, "totals")
    series = data.get("series")
    if not isinstance(series, list) or not series:
        raise ConfigurationError(
            "live report needs a non-empty series list")
    for index, row in enumerate(series):
        if not isinstance(row, dict):
            raise ConfigurationError(f"series row {index} is not an object")
        _check_fields(row, _SERIES_REQUIRED, f"series row {index}")
    if not isinstance(data.get("rules"), list):
        raise ConfigurationError("live report needs a rules list")
    alerts = data.get("alerts")
    if not isinstance(alerts, list):
        raise ConfigurationError("live report needs an alerts list")
    for index, alert in enumerate(alerts):
        if not isinstance(alert, dict):
            raise ConfigurationError(f"alert {index} is not an object")
        for field in _ALERT_REQUIRED:
            if field not in alert:
                raise ConfigurationError(
                    f"alert {index} is missing {field!r}")
        fired = alert["fired_at"]
        cleared = alert["cleared_at"]
        if cleared is not None and cleared < fired:
            raise ConfigurationError(
                f"alert {index} clears before it fires")
    events = data.get("events")
    if not isinstance(events, list):
        raise ConfigurationError("live report needs an events list")
    for index, event in enumerate(events):
        if not isinstance(event, dict) or "label" not in event:
            raise ConfigurationError(f"event {index} needs a label")
    telemetry = data.get("telemetry")
    if not isinstance(telemetry, dict):
        raise ConfigurationError("live report needs a telemetry object")
    for field in ("slices", "digest_buckets", "record_calls"):
        if not isinstance(telemetry.get(field), int):
            raise ConfigurationError(
                f"telemetry is missing integer {field!r}")
    rate = telemetry.get("ops_per_virtual_s")
    if not isinstance(rate, (int, float)) or isinstance(rate, bool):
        raise ConfigurationError(
            "telemetry is missing numeric 'ops_per_virtual_s'")


def dumps_live_report(data: dict) -> str:
    """Deterministic JSON: sorted keys, fixed separators, trailing newline."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"


def write_live_report(data: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_live_report(data))


def _fmt_ms(seconds: float) -> str:
    if seconds <= 0.0:
        return "-"
    ms = seconds * 1000.0
    if ms < 10.0:
        return f"{ms:.2f}ms"
    if ms < 1000.0:
        return f"{ms:.0f}ms"
    return f"{seconds:.2f}s"


def render_live_report(data: dict) -> str:
    """ASCII dashboard: one row per slice, alert markers, overhead footer."""
    scenario = data["scenario"]
    context = "  ".join(
        f"{key} {scenario[key]}" for key in sorted(scenario)
    )
    lines = [f"live telemetry  {context}".rstrip()]
    lines.append(
        f"  slice {data['slice_s']:g}s  duration {data['duration']:g}s  "
        f"ops {data['totals']['ops']}  errors {data['totals']['errors']}  "
        f"overall p99 {_fmt_ms(data['totals']['p99'])}"
    )
    if data["rules"]:
        lines.append("  rules: " + "; ".join(data["rules"]))
    # Alert intervals per slice for the marker column.
    alert_spans = [
        (a["fired_at"], a["cleared_at"] if a["cleared_at"] is not None
         else data["duration"], a["rule"])
        for a in data["alerts"]
    ]
    peak_tput = max((row["throughput"] for row in data["series"]),
                    default=0.0) or 1.0
    lines.append(
        f"  {'t':>7s} {'ops':>6s} {'err':>4s} {'p50':>8s} {'p99':>8s} "
        f"{'throughput':30s} alerts"
    )
    width = data["slice_s"]
    for row in data["series"]:
        bar = "#" * int(round(row["throughput"] / peak_tput * 24))
        t0, t1 = row["t"], row["t"] + width
        marks = [
            rule for fired, cleared, rule in alert_spans
            if fired < t1 and cleared > t0
        ]
        marker = ("! " + "; ".join(sorted(set(marks)))) if marks else ""
        lines.append(
            f"  {row['t']:7.1f} {row['ops']:6d} {row['errors']:4d} "
            f"{_fmt_ms(row['p50']):>8s} {_fmt_ms(row['p99']):>8s} "
            f"{bar:30s} {marker}".rstrip()
        )
    if data["alerts"]:
        lines.append("  alerts:")
        for alert in data["alerts"]:
            cleared = (
                f"cleared {alert['cleared_at']:.1f}s"
                if alert["cleared_at"] is not None else "still open"
            )
            cause = f"  cause: {alert['event']}" if alert["event"] else ""
            lines.append(
                f"    {alert['rule']}  fired {alert['fired_at']:.1f}s  "
                f"{cleared}  peak burn {alert['peak_burn']:.1f}x{cause}"
            )
    else:
        lines.append("  alerts: none")
    if data["events"]:
        lines.append("  events:")
        for event in data["events"]:
            lines.append(
                f"    {event['label']}  "
                f"[{event['start']:.1f}s, {event['end']:.1f}s]"
            )
    telemetry = data["telemetry"]
    overhead = (
        f"  telemetry overhead: {telemetry['slices']} slices, "
        f"{telemetry['digest_buckets']} digest buckets, "
        f"{telemetry['record_calls']} record calls; "
        f"{telemetry['ops_per_virtual_s']:g} ops/virtual-s"
    )
    sampling = telemetry.get("span_sampling")
    if sampling:
        overhead += (
            f"; spans kept {sampling['kept']} / "
            f"dropped {sampling['dropped']}"
        )
    lines.append(overhead)
    return "\n".join(lines)

"""Counters, gauges, and histograms keyed by dotted metric names.

A :class:`MetricsRegistry` is the numeric companion to the tracer: engines
increment mechanism counters (``hive.map_tasks``, ``pdw.dms_bytes``,
``docstore.chunk_migrations``) and set gauges (``oltp.cache.miss_rate``)
while they run, and the registry serializes to a deterministic JSON
document — keys sorted, no timestamps — so same-seed runs are
byte-identical.

Like the tracer, metrics are opt-in: every instrumented call site defaults
to ``metrics=None`` and pays one truthiness check when disabled.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.common.errors import SimulationError

# Fixed histogram boundaries: 1-2-5 decades from 1 µs to 50 ks, a range that
# covers everything from a lock hold to a 16 TB Hive query.
DEFAULT_BOUNDARIES = tuple(
    m * 10.0**e for e in range(-6, 5) for m in (1.0, 2.0, 5.0)
)


class Counter:
    """A monotonically increasing count (events, bytes, rounds)."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise SimulationError(f"counter {self.name}: negative increment")
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins instantaneous value."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-boundary histogram with sum/count/min/max summary stats."""

    def __init__(self, name: str, boundaries: tuple = DEFAULT_BOUNDARIES):
        if list(boundaries) != sorted(boundaries):
            raise SimulationError(f"histogram {name}: unsorted boundaries")
        self.name = name
        self.boundaries = tuple(boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = 0
        for boundary in self.boundaries:
            if value <= boundary:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        # Only non-empty buckets are serialized, keyed by upper boundary.
        buckets = {}
        for i, count in enumerate(self.counts):
            if count:
                upper = (
                    repr(self.boundaries[i]) if i < len(self.boundaries) else "inf"
                )
                buckets[upper] = count
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Create-or-get registry for counters, gauges, and histograms."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise SimulationError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, boundaries: tuple = DEFAULT_BOUNDARIES) -> Histogram:
        return self._get(name, Histogram, boundaries=boundaries)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def value(self, name: str) -> float:
        """Shortcut: current value of a counter or gauge."""
        metric = self._metrics[name]
        if isinstance(metric, Histogram):
            raise SimulationError(f"{name!r} is a histogram; read .count/.total")
        return metric.value

    def as_dict(self) -> dict:
        """Deterministic serializable snapshot (keys sorted)."""
        return {name: self._metrics[name].as_dict() for name in self.names()}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent,
                          separators=(",", ": ") if indent else (",", ":"))

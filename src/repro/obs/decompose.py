"""Fixed-vs-variable overhead decomposition across scale factors.

The paper's growth-factor argument (Sections 4.2–4.3): Hive's runtimes grow
by *less* than the scale factor because a large fixed cost — job submission
overhead, map-task startup, single-round reduce phases, empty bucket files —
amortizes as the data grows, while PDW's runtimes track (or exceed, at the
buffer-pool cliff) the data growth because its fixed share was never large.

This module derives that mechanically from traced runs: each query is traced
at SFs {250, 1000, 4000, 16000}, its phase spans are grouped into stable
phase keys, and every phase's runtime is least-squares-fitted to

    t(sf) = fixed + per_sf * sf        (fixed clamped at >= 0)

The per-query report then gives the fixed-seconds total, the fixed *share*
of each SF's runtime, and the measured growth factors — reproducing the
paper's table and its explanation as data rather than assertion.

Schema ``repro-decompose/1``; deterministic JSON as everywhere else.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError

SCHEMA = "repro-decompose/1"

DEFAULT_SFS = (250.0, 1000.0, 4000.0, 16000.0)


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


def fit_fixed_variable(points: list) -> tuple:
    """Least-squares ``t = fixed + per_sf * sf`` over ``(sf, t)`` points.

    The intercept is clamped at zero (a negative fixed cost is unphysical —
    it appears when a phase grows *super*linearly, e.g. PDW scans falling
    off the buffer-pool cliff); the slope is then refitted through the
    origin.  With a single point everything is slope.
    """
    if not points:
        return 0.0, 0.0
    if len(points) == 1:
        sf, t = points[0]
        return 0.0, t / sf if sf else 0.0
    n = len(points)
    sum_x = sum(sf for sf, _ in points)
    sum_y = sum(t for _, t in points)
    sum_xx = sum(sf * sf for sf, _ in points)
    sum_xy = sum(sf * t for sf, t in points)
    denom = n * sum_xx - sum_x * sum_x
    if abs(denom) < 1e-12:
        return 0.0, (sum_y / sum_x if sum_x else 0.0)
    slope = (n * sum_xy - sum_x * sum_y) / denom
    intercept = (sum_y - slope * sum_x) / n
    if intercept < 0.0:
        intercept = 0.0
        slope = sum_xy / sum_xx if sum_xx else 0.0
    if slope < 0.0:
        # A genuinely flat phase (pure fixed cost): all intercept.
        return sum_y / n, 0.0
    return intercept, slope


def _phase_key(name: str) -> str:
    """Stable phase identity across SFs (mapjoin fallbacks rename jobs)."""
    return name.replace(".backup", "")


def phase_times(tracer, engine: str) -> dict:
    """Per-phase seconds of one traced DSS query, keyed stably.

    Hive: one key per ``job.phase`` span (``agg.q1.agg.map`` ...).  PDW: one
    key per step plus a ``plan`` pseudo-phase for the pre-step overhead.
    """
    out: dict[str, float] = {}
    if engine == "hive":
        for span in tracer.find(cat="phase", node="hive"):
            key = _phase_key(span.name)
            out[key] = out.get(key, 0.0) + span.duration
        return out
    if engine == "pdw":
        queries = tracer.find(cat="query", node="pdw")
        steps = tracer.find(cat="step", node="pdw")
        if queries and steps:
            out["plan"] = steps[0].start - queries[0].start
        elif queries:
            out["plan"] = queries[0].duration
        for span in steps:
            key = _phase_key(span.name)
            out[key] = out.get(key, 0.0) + span.duration
        return out
    raise ConfigurationError(
        f"decomposition knows engines hive and pdw, not {engine!r}"
    )


@dataclass
class QueryDecomposition:
    """One (engine, query) fitted across scale factors."""

    engine: str
    number: int
    sfs: list = field(default_factory=list)  # SFs actually measured
    skipped_sfs: list = field(default_factory=list)  # e.g. Hive out of space
    totals: dict = field(default_factory=dict)  # sf -> measured seconds
    phases: dict = field(default_factory=dict)  # key -> {fixed, per_sf}

    @property
    def fixed_seconds(self) -> float:
        return sum(p["fixed"] for p in self.phases.values())

    def fixed_share(self, sf: float) -> float:
        total = self.totals.get(sf)
        if not total:
            return 0.0
        return min(1.0, self.fixed_seconds / total)

    def growth_factors(self) -> dict:
        out = {}
        ordered = sorted(self.sfs)
        for lo, hi in zip(ordered, ordered[1:]):
            out[f"{lo:g}->{hi:g}"] = (
                self.totals[hi] / self.totals[lo] if self.totals.get(lo) else 0.0
            )
        return out

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "query": self.number,
            "sfs": [float(sf) for sf in self.sfs],
            "skipped_sfs": [float(sf) for sf in self.skipped_sfs],
            "totals": {f"{sf:g}": _round(t) for sf, t in sorted(self.totals.items())},
            "phases": {
                key: {"fixed": _round(p["fixed"]),
                      "per_sf": _round(p["per_sf"], 9)}
                for key, p in sorted(self.phases.items())
            },
            "fixed_seconds": _round(self.fixed_seconds),
            "fixed_share": {
                f"{sf:g}": _round(self.fixed_share(sf), 4)
                for sf in sorted(self.sfs)
            },
            "growth_factors": {
                key: _round(value, 4)
                for key, value in self.growth_factors().items()
            },
        }


def decompose_query(engine: str, number: int, runs: dict) -> QueryDecomposition:
    """Fit one query from ``{sf: tracer}`` traced runs (missing SFs skipped)."""
    measured = {sf: tracer for sf, tracer in runs.items() if tracer is not None}
    if not measured:
        raise ConfigurationError(
            f"decomposition of {engine} q{number} has no completed runs"
        )
    per_sf_phases = {
        sf: phase_times(tracer, engine) for sf, tracer in measured.items()
    }
    keys = sorted({key for phases in per_sf_phases.values() for key in phases})
    out = QueryDecomposition(
        engine=engine, number=number,
        sfs=sorted(measured),
        skipped_sfs=sorted(sf for sf in runs if runs[sf] is None),
    )
    for sf, phases in sorted(per_sf_phases.items()):
        out.totals[sf] = sum(phases.values())
    for key in keys:
        points = [(sf, per_sf_phases[sf].get(key, 0.0))
                  for sf in sorted(per_sf_phases)]
        fixed, per_sf = fit_fixed_variable(points)
        out.phases[key] = {"fixed": fixed, "per_sf": per_sf}
    return out


@dataclass
class DecompositionReport:
    """All (engine, query) decompositions of one study, JSON-serializable."""

    sfs: list = field(default_factory=list)
    queries: list = field(default_factory=list)  # QueryDecomposition

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "sfs": [float(sf) for sf in self.sfs],
            "queries": [q.to_dict() for q in self.queries],
        }

    def find(self, engine: str, number: int) -> QueryDecomposition:
        for q in self.queries:
            if q.engine == engine and q.number == number:
                return q
        raise KeyError(f"no decomposition for {engine} q{number}")


def dumps_decomposition(report: DecompositionReport) -> str:
    """Deterministic JSON: sorted keys, fixed separators, trailing newline."""
    return json.dumps(report.to_dict(), sort_keys=True,
                      separators=(",", ":")) + "\n"


def write_decomposition(report: DecompositionReport, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_decomposition(report))


def render_decomposition(report: DecompositionReport) -> str:
    """The growth-factor table, with the fixed-share explanation alongside."""
    lines = ["fixed-vs-variable decomposition "
             f"(SFs {', '.join(f'{sf:g}' for sf in report.sfs)})"]
    header = (f"  {'engine':<6} {'query':<6} {'fixed s':>9} "
              + " ".join(f"{'share@' + format(sf, 'g'):>12}"
                         for sf in report.sfs)
              + "  growth factors")
    lines.append(header)
    for q in report.queries:
        shares = " ".join(
            f"{q.fixed_share(sf):>12.1%}" if sf in q.totals else f"{'DNF':>12}"
            for sf in report.sfs
        )
        growth = ", ".join(f"{k}: {v:.2f}x"
                           for k, v in q.growth_factors().items())
        lines.append(
            f"  {q.engine:<6} q{q.number:<5} {q.fixed_seconds:>9.1f} "
            f"{shares}  {growth}"
        )
    lines.append(
        "  (a shrinking fixed share with SF is the paper's amortization "
        "argument; growth factors below the SF ratio follow from it)"
    )
    return "\n".join(lines)

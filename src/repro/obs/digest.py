"""Bounded-memory streaming quantile digests on the virtual clock.

A :class:`QuantileDigest` is an HDR-histogram-style sketch: values land in
log-spaced buckets (each ``growth`` times wider than the last), so memory is
O(log(max/min)) regardless of how many operations are recorded, and the
reported percentile is the *upper edge* of the bucket holding the
nearest-rank value — always >= the exact value and within one bucket
(a factor of ``growth``) above it.  Digests merge losslessly: merging two
digests gives exactly the digest of the concatenated streams, in any order.

Censored observations (operations still in flight when a run is cut off,
PR 6's coordinated-omission guard) are first-class: they are recorded as
*lower bounds* and pooled into the tail exactly like the open-loop
``corrected`` list, so a wedged server cannot report a rosy p99 just
because its victims never finished.

:class:`WindowedDigest` shards one digest stream into fixed-width
virtual-time slices so sliding-window queries ("p99 over the last 5 s of
simulated time") are a cheap merge of a handful of sub-digests.  This is
what :mod:`repro.obs.slo` burn-rate rules and the ``repro-live/1``
dashboard evaluate against.

Everything here is deterministic: no wall clock, no hashing of ids —
identical op streams produce identical digests byte for byte.
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigurationError

#: Default bucket growth factor: 5% relative error on reported percentiles.
DEFAULT_GROWTH = 1.05

#: Values at or below this floor (in seconds) share bucket 0.  1 µs is far
#: below any simulated service time, so bucket 0 is effectively "zero".
DEFAULT_MIN_VALUE = 1e-6


class QuantileDigest:
    """Mergeable log-bucketed quantile sketch with censored lower bounds."""

    __slots__ = (
        "growth", "min_value", "_log_growth", "buckets", "censored_buckets",
        "count", "censored_count", "total", "censored_total", "min", "max",
    )

    def __init__(self, growth: float = DEFAULT_GROWTH,
                 min_value: float = DEFAULT_MIN_VALUE):
        if growth <= 1.0:
            raise ConfigurationError(
                f"digest growth must be > 1, got {growth}")
        if min_value <= 0.0:
            raise ConfigurationError(
                f"digest min_value must be > 0, got {min_value}")
        self.growth = growth
        self.min_value = min_value
        self._log_growth = math.log(growth)
        self.buckets: dict[int, int] = {}
        self.censored_buckets: dict[int, int] = {}
        self.count = 0
        self.censored_count = 0
        self.total = 0.0
        self.censored_total = 0.0
        self.min = math.inf
        self.max = 0.0

    # -- bucket geometry ---------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """Index of the bucket holding ``value``; edge-exact.

        Bucket ``i`` covers ``(edge(i-1), edge(i)]`` with
        ``edge(i) = min_value * growth**i``; bucket 0 is ``(-inf, min_value]``.
        ``log`` alone can land a boundary value one bucket off (the
        histogram.py off-by-one class of bug), so the estimate is nudged
        until the invariant holds exactly.
        """
        if value <= self.min_value:
            return 0
        index = int(math.log(value / self.min_value) / self._log_growth) + 1
        while value > self.bucket_edge(index):
            index += 1
        while index > 0 and value <= self.bucket_edge(index - 1):
            index -= 1
        return index

    def bucket_edge(self, index: int) -> float:
        """Upper edge of bucket ``index`` (the value a percentile reports)."""
        return self.min_value * self.growth ** index

    # -- recording ---------------------------------------------------------------

    def record(self, value: float) -> None:
        """Record one completed observation (a latency, in seconds)."""
        index = self.bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def record_many(self, values) -> None:
        for value in values:
            self.record(value)

    def record_censored(self, lower_bound: float) -> None:
        """Record an in-flight observation known only to exceed ``lower_bound``.

        Censored observations count toward percentiles (at their lower
        bound, like the open-loop ``corrected`` pool) but are excluded from
        ``mean`` — a lower bound would bias the average *down*, the one
        direction censoring must never push.
        """
        index = self.bucket_index(lower_bound)
        self.censored_buckets[index] = self.censored_buckets.get(index, 0) + 1
        self.censored_count += 1
        self.censored_total += lower_bound
        if lower_bound > self.max:
            self.max = lower_bound

    # -- queries -----------------------------------------------------------------

    @property
    def observations(self) -> int:
        """Completed + censored observations contributing to percentiles."""
        return self.count + self.censored_count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def mean_with_censored(self) -> float:
        """Mean pooling censored lower bounds, like the open-loop
        ``corrected`` list — still an underestimate, never an overestimate
        of the true mean."""
        n = self.observations
        return (self.total + self.censored_total) / n if n else 0.0

    def percentile(self, pct: float) -> float:
        """Upper bucket edge of the nearest-rank observation; 0.0 when empty.

        Guaranteed >= the exact nearest-rank value and <= ``growth`` times
        it (one log-bucket of relative error).
        """
        n = self.observations
        if n == 0:
            return 0.0
        rank = max(1, min(n, math.ceil(pct / 100.0 * n)))
        seen = 0
        for index in sorted(set(self.buckets) | set(self.censored_buckets)):
            seen += self.buckets.get(index, 0)
            seen += self.censored_buckets.get(index, 0)
            if seen >= rank:
                return self.bucket_edge(index)
        return self.bucket_edge(max(self.buckets | self.censored_buckets))

    def count_over(self, threshold: float) -> int:
        """Observations certainly exceeding ``threshold`` (censored included).

        Counts whole buckets strictly above the bucket holding
        ``threshold``; values sharing the threshold's bucket are not
        counted, so the answer is a lower bound within one log-bucket of
        exact — the conservative direction for burn-rate alerting.
        """
        cutoff = self.bucket_index(threshold)
        over = sum(n for i, n in self.buckets.items() if i > cutoff)
        over += sum(
            n for i, n in self.censored_buckets.items() if i > cutoff)
        return over

    def merge(self, other: "QuantileDigest") -> "QuantileDigest":
        """Merge ``other`` into self (in place); returns self for chaining."""
        if (other.growth != self.growth
                or other.min_value != self.min_value):
            raise ConfigurationError(
                "cannot merge digests with different bucket geometry")
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        for index, n in other.censored_buckets.items():
            self.censored_buckets[index] = (
                self.censored_buckets.get(index, 0) + n)
        self.count += other.count
        self.censored_count += other.censored_count
        self.total += other.total
        self.censored_total += other.censored_total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def copy(self) -> "QuantileDigest":
        fresh = QuantileDigest(self.growth, self.min_value)
        return fresh.merge(self)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "growth": self.growth,
            "min_value": self.min_value,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
            "censored": {
                str(i): n for i, n in sorted(self.censored_buckets.items())
            },
            "count": self.count,
            "censored_count": self.censored_count,
            "total": self.total,
            "censored_total": self.censored_total,
            "min": self.min if self.count else None,
            "max": self.max if self.observations else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileDigest":
        digest = cls(data["growth"], data["min_value"])
        digest.buckets = {int(i): n for i, n in data["buckets"].items()}
        digest.censored_buckets = {
            int(i): n for i, n in data["censored"].items()
        }
        digest.count = data["count"]
        digest.censored_count = data["censored_count"]
        digest.total = data["total"]
        digest.censored_total = data.get("censored_total", 0.0)
        digest.min = data["min"] if data["min"] is not None else math.inf
        digest.max = data["max"] if data["max"] is not None else 0.0
        return digest


class WindowedDigest:
    """A digest stream sharded into fixed-width virtual-time slices.

    Each observation lands in the sub-digest for slice
    ``floor(t / slice_s)``; a window query merges the slices the window
    overlaps.  Memory is bounded by (run duration / slice_s) sub-digests,
    each itself O(log(max/min)) — no per-op storage anywhere.
    """

    __slots__ = ("slice_s", "growth", "min_value", "slices")

    def __init__(self, slice_s: float = 1.0, growth: float = DEFAULT_GROWTH,
                 min_value: float = DEFAULT_MIN_VALUE):
        if slice_s <= 0.0:
            raise ConfigurationError(
                f"window slice width must be > 0, got {slice_s}")
        self.slice_s = slice_s
        self.growth = growth
        self.min_value = min_value
        self.slices: dict[int, QuantileDigest] = {}

    def _slice_for(self, t: float) -> QuantileDigest:
        index = int(t / self.slice_s)
        digest = self.slices.get(index)
        if digest is None:
            digest = QuantileDigest(self.growth, self.min_value)
            self.slices[index] = digest
        return digest

    def record(self, t: float, value: float) -> None:
        self._slice_for(t).record(value)

    def record_censored(self, t: float, lower_bound: float) -> None:
        self._slice_for(t).record_censored(lower_bound)

    def window(self, start: float, end: float) -> QuantileDigest:
        """Merged digest over slices overlapping ``[start, end)``."""
        merged = QuantileDigest(self.growth, self.min_value)
        if end <= start:
            return merged
        width = self.slice_s
        for index in sorted(self.slices):
            if index * width < end and (index + 1) * width > start:
                merged.merge(self.slices[index])
        return merged

    def total(self) -> QuantileDigest:
        """Merged digest over the whole stream."""
        merged = QuantileDigest(self.growth, self.min_value)
        for index in sorted(self.slices):
            merged.merge(self.slices[index])
        return merged

    @property
    def observations(self) -> int:
        return sum(d.observations for d in self.slices.values())

"""Tail-biased span sampling: bounded-memory tracing for long runs.

A full :class:`~repro.obs.trace.Tracer` keeps every span, which is exactly
right for short diagnostic runs and exactly wrong for million-op ones.
:class:`SamplingTracer` keeps a *biased* subset chosen the way production
tracing systems do:

* **head sampling** — a seeded coin flip keeps a fixed fraction of ordinary
  spans, preserving the shape of the common case;
* **tail biasing** — spans that explain tail latency are always kept:
  errors (``args["error"]``), every ``retry``/``fault``/``election`` span,
  and anything slower than ``slow_s``.

Dropped spans are still *constructed and returned* — callers assign
``span.parent`` and build causal links off the return value, and span ids
must stay identical to an unsampled run so links remain stable — they are
simply not retained in ``spans``.  ``kept``/``dropped`` counters make the
sampling rate auditable in reports.

Determinism: the keep/drop coin is a :class:`~repro.common.rng.TpchRandom64`
consumed once per head-sampled decision in record order, so the same seed
yields the same retained set byte for byte.  When tracing is off nothing
here is ever constructed — the ``tracer=None`` zero-cost contract of
:mod:`repro.obs.trace` is untouched.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import TpchRandom64
from repro.obs.trace import Span, Tracer

#: Span categories that are always retained regardless of the head rate:
#: they are rare, cheap to keep, and disproportionately explain the tail.
#: (``dispatch`` is deliberately absent — open-loop runs emit one dispatch
#: span per op, so always keeping them would defeat the memory bound.)
ALWAYS_KEEP_CATS = frozenset({"fault", "retry", "election"})

#: Default slow-span threshold: anything >= 100 ms of simulated time is a
#: tail event in every workload this repo runs (normal ops are ~1 ms).
DEFAULT_SLOW_S = 0.100


class SpanSamplePolicy:
    """Parsed ``--span-sample`` spec: head rate plus tail-keep knobs."""

    __slots__ = ("rate", "slow_s", "seed")

    def __init__(self, rate: float, slow_s: float = DEFAULT_SLOW_S,
                 seed: int = 1):
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"span sample rate must be in [0, 1], got {rate}")
        if slow_s < 0.0:
            raise ConfigurationError(
                f"span sample slow threshold must be >= 0, got {slow_s}")
        self.rate = rate
        self.slow_s = slow_s
        self.seed = seed

    @classmethod
    def parse(cls, spec: str, seed: int = 1) -> "SpanSamplePolicy":
        """Parse ``RATE`` or ``RATE,slow_ms=N`` (e.g. ``0.05,slow_ms=250``)."""
        parts = [p.strip() for p in str(spec).split(",") if p.strip()]
        if not parts:
            raise ConfigurationError("empty span-sample spec")
        try:
            rate = float(parts[0])
        except ValueError:
            raise ConfigurationError(
                f"span-sample rate {parts[0]!r} is not a number")
        slow_s = DEFAULT_SLOW_S
        for part in parts[1:]:
            if "=" not in part:
                raise ConfigurationError(
                    f"span-sample option {part!r} is not KEY=VALUE")
            key, _, value = part.partition("=")
            key = key.strip()
            if key != "slow_ms":
                raise ConfigurationError(
                    f"unknown span-sample option {key!r}; expected slow_ms")
            try:
                slow_s = float(value) / 1000.0
            except ValueError:
                raise ConfigurationError(
                    f"span-sample slow_ms {value!r} is not a number")
        return cls(rate, slow_s, seed)

    def spec_string(self) -> str:
        return f"{self.rate:g},slow_ms={self.slow_s * 1000.0:g}"


class SamplingTracer(Tracer):
    """A Tracer that retains a tail-biased sample of the spans it records.

    Span ids, parent nesting, and causal links behave exactly as in the
    full tracer (every span is constructed and returned); only the
    ``spans`` retention list is thinned.
    """

    def __init__(self, policy: SpanSamplePolicy):
        super().__init__()
        self.policy = policy
        self.kept = 0
        self.dropped = 0
        self._coin = TpchRandom64(policy.seed)

    def _keep(self, span: Span) -> bool:
        if span.cat in ALWAYS_KEEP_CATS:
            return True
        if span.args.get("error"):
            return True
        if span.duration >= self.policy.slow_s:
            return True
        # The coin is consumed for every head-sampled decision (kept or
        # not) so the retained set is a pure function of the seed and the
        # span sequence, independent of which spans the rules kept above.
        return self._coin.random_float() < self.policy.rate

    def _retain(self, span: Span) -> None:
        if self._keep(span):
            self.spans.append(span)
            self.kept += 1
        else:
            self.dropped += 1

    # -- recording overrides -----------------------------------------------------

    def add(
        self,
        name: str,
        start: float,
        end: float,
        *,
        cat: str = "",
        node: str = "sim",
        lane: str = "main",
        parent: Optional[int] = None,
        **args: Any,
    ) -> Span:
        from repro.common.errors import SimulationError

        if end < start:
            raise SimulationError(f"span {name!r} ends before it starts")
        if parent is None and self._open:
            parent = self._open[-1].span_id
        span = Span(
            name=name, start=start, end=end, cat=cat, node=node, lane=lane,
            args=dict(args), parent=parent, span_id=self._next_id,
        )
        self._next_id += 1
        self._retain(span)
        return span

    def begin(
        self,
        name: str,
        now: float,
        *,
        cat: str = "",
        node: str = "sim",
        lane: str = "main",
        **args: Any,
    ) -> Span:
        # Duration is unknown until end(); retention is decided there.
        parent = self._open[-1].span_id if self._open else None
        span = Span(
            name=name, start=now, end=now, cat=cat, node=node, lane=lane,
            args=dict(args), parent=parent, span_id=self._next_id,
        )
        self._next_id += 1
        self._open.append(span)
        return span

    def end(self, now: float) -> Span:
        from repro.common.errors import SimulationError

        if not self._open:
            raise SimulationError("Tracer.end with no open span")
        span = self._open.pop()
        if now < span.start:
            raise SimulationError(f"span {span.name!r} ends before it starts")
        span.end = now
        self._retain(span)
        return span

    # -- accounting --------------------------------------------------------------

    @property
    def recorded(self) -> int:
        """Total spans offered to the sampler (kept + dropped)."""
        return self.kept + self.dropped

    def sample_stats(self) -> dict:
        recorded = self.recorded
        return {
            "policy": self.policy.spec_string(),
            "recorded": recorded,
            "kept": self.kept,
            "dropped": self.dropped,
            "keep_fraction": self.kept / recorded if recorded else 0.0,
        }

"""``repro-compare/1``: diff two runs and *explain* the difference.

The gate today fails with a number ("2.3x slower than baseline") and no
explanation.  This module is the explaining half: given two documents of
the same kind — ``repro-bench/1`` trajectory files, ``repro-prof/1``
self-profiles, or ``repro-live/1`` dashboards — it emits a
``repro-compare/1`` report whose **attribution lines** decompose each
regressed headline into the subsystems that moved it::

    ycsb_workload_a_eventsim +38%: 71% digest.update, 22% routing, 7% unattributed

Attribution needs per-subsystem breakdowns on both sides; bench entries
carry them when recorded with ``trajectory.py --profile``, prof reports
always do, and live reports (which are deterministic simulation output,
not wall clock) get a totals-level diff instead.  Rows whose baseline
side recorded run-to-run spread (``stddev`` from multi-run timings) are
flagged significant only beyond two standard deviations — the
noise-vs-regression distinction the satellite tasks ask for.

Host fingerprints are diffed, never ignored: wall-clock comparisons
across differing hosts are annotated so a CPU upgrade is not mistaken
for an optimisation.
"""

from __future__ import annotations

import json

from repro.common.errors import ConfigurationError

SCHEMA = "repro-compare/1"

#: Input schemas this engine knows how to diff.
_SCHEMA_KINDS = {
    "repro-bench/1": "bench",
    "repro-prof/1": "prof",
    "repro-live/1": "live",
}

#: Contributors below this share of the total delta are folded into the
#: "unattributed" remainder.
MIN_SHARE_PCT = 5.0

#: At most this many named contributors per attribution line.
MAX_CONTRIBUTORS = 4


def detect_kind(doc: dict) -> str:
    """``bench`` / ``prof`` / ``live`` from a document's schema field."""
    if not isinstance(doc, dict):
        raise ConfigurationError("comparand must be a JSON object")
    schema = doc.get("schema")
    kind = _SCHEMA_KINDS.get(schema)
    if kind is None:
        known = ", ".join(sorted(_SCHEMA_KINDS))
        raise ConfigurationError(
            f"cannot compare schema {schema!r} (known: {known})")
    return kind


def load_run(path: str) -> dict:
    """Load one comparand; any I/O or parse problem is a usage error."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path} is not JSON: {exc}") from exc
    detect_kind(doc)  # raises on unknown schema
    return doc


def host_delta(a: dict | None, b: dict | None) -> list[str]:
    """Human-readable host differences (empty = same or unknown host)."""
    if not isinstance(a, dict) or not isinstance(b, dict):
        return []
    out = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            out.append(f"{key}: {va} -> {vb}")
    return out


def _row(metric: str, a: float, b: float, noise: float = 0.0) -> dict:
    delta = b - a
    pct = round(100.0 * delta / a, 1) if a else None
    if noise > 0.0:
        significant = abs(delta) > 2.0 * noise
    else:
        significant = pct is not None and abs(pct) >= 1.0
    row = {
        "metric": metric,
        "a": round(a, 6),
        "b": round(b, 6),
        "delta": round(delta, 6),
        "delta_pct": pct,
        "significant": bool(significant),
    }
    if noise > 0.0:
        row["noise"] = round(noise, 6)
    return row


def _attribution(label: str, a_total: float, b_total: float,
                 a_subs: dict, b_subs: dict) -> str | None:
    """One attribution line for a regressed scalar, or None if not regressed.

    ``a_subs``/``b_subs`` map subsystem name -> self seconds.  Contributors
    are the subsystems whose self time grew, each expressed as its share of
    the total delta; whatever the counters did not capture is reported as
    ``unattributed`` rather than silently absorbed.
    """
    delta = b_total - a_total
    if a_total <= 0.0 or delta <= 0.0:
        return None
    pct = 100.0 * delta / a_total
    grew = []
    for name in set(a_subs) | set(b_subs):
        d = b_subs.get(name, 0.0) - a_subs.get(name, 0.0)
        if d > 0.0:
            grew.append((d, name))
    grew.sort(key=lambda pair: (-pair[0], pair[1]))
    parts = []
    accounted = 0.0
    for d, name in grew[:MAX_CONTRIBUTORS]:
        share = 100.0 * d / delta
        if share < MIN_SHARE_PCT:
            break
        parts.append(f"{share:.0f}% {name}")
        accounted += d
    remainder = 100.0 * (delta - accounted) / delta
    if parts and remainder >= MIN_SHARE_PCT:
        parts.append(f"{remainder:.0f}% unattributed")
    if not parts:
        parts = ["no subsystem attribution (profile both runs "
                 "with --profile to attribute)"]
    return f"{label} +{pct:.0f}%: " + ", ".join(parts)


def _profile_subs(entry: dict) -> dict:
    """``{name: self_s}`` from a bench entry's embedded profile summary."""
    subs = entry.get("profile", {}).get("subsystems", {})
    return {name: info.get("self_s", 0.0) for name, info in subs.items()
            if isinstance(info, dict)}


def _compare_bench(a: dict, b: dict, names=None) -> tuple[list, list, list]:
    rows, attribution, notes = [], [], []
    a_benches = a.get("benchmarks", {})
    b_benches = b.get("benchmarks", {})
    shared = sorted(set(a_benches) & set(b_benches))
    if names is not None:
        wanted = set(names)
        shared = [n for n in shared if n in wanted]
    if a.get("smoke") != b.get("smoke"):
        notes.append(
            f"smoke flavours differ (a={a.get('smoke')}, b={b.get('smoke')}):"
            " wall clocks are not comparable across flavours")
    for name in shared:
        ea, eb = a_benches[name], b_benches[name]
        if ea.get("timed_out") or eb.get("timed_out"):
            notes.append(f"{name}: timed out on one side, skipped")
            continue
        sa, sb = ea.get("seconds"), eb.get("seconds")
        if not isinstance(sa, (int, float)) or not isinstance(
                sb, (int, float)):
            continue
        noise = max(ea.get("stddev", 0.0) or 0.0, eb.get("stddev", 0.0) or 0.0)
        rows.append(_row(f"{name}.seconds", sa, sb, noise=noise))
        subs_a, subs_b = _profile_subs(ea), _profile_subs(eb)
        for sub in sorted(set(subs_a) & set(subs_b)):
            rows.append(_row(f"{name}/{sub}",
                             subs_a.get(sub, 0.0), subs_b.get(sub, 0.0)))
        line = _attribution(name, sa, sb, subs_a, subs_b)
        if line is not None and (noise == 0.0 or (sb - sa) > 2.0 * noise):
            attribution.append(line)
    if not shared:
        notes.append("no shared benchmarks between the two files")
    return rows, attribution, notes


def _prof_subs(doc: dict) -> dict:
    return {name: info.get("self_s", 0.0)
            for name, info in doc.get("subsystems", {}).items()
            if isinstance(info, dict)}


def _compare_prof(a: dict, b: dict) -> tuple[list, list, list]:
    rows, attribution, notes = [], [], []
    wall_a, wall_b = a.get("wall_s", 0.0), b.get("wall_s", 0.0)
    rows.append(_row("wall_s", wall_a, wall_b))
    subs_a, subs_b = _prof_subs(a), _prof_subs(b)
    for sub in sorted(set(subs_a) | set(subs_b)):
        rows.append(_row(f"subsystem/{sub}",
                         subs_a.get(sub, 0.0), subs_b.get(sub, 0.0)))
    for field in ("events_per_wall_s", "ops_per_wall_s",
                  "events_per_virtual_s"):
        va = a.get("throughput", {}).get(field)
        vb = b.get("throughput", {}).get(field)
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            rows.append(_row(f"throughput/{field}", va, vb))
    line = _attribution("wall", wall_a, wall_b, subs_a, subs_b)
    if line is not None:
        attribution.append(line)
    if a.get("scenario") != b.get("scenario"):
        notes.append("scenarios differ: this is a cross-scenario diff, "
                     "not a regression comparison")
    return rows, attribution, notes


def _compare_live(a: dict, b: dict) -> tuple[list, list, list]:
    rows, attribution, notes = [], [], []
    ta, tb = a.get("totals", {}), b.get("totals", {})
    for field in ("throughput", "p50", "p95", "p99", "p999", "mean",
                  "ops", "errors", "censored"):
        va, vb = ta.get(field), tb.get(field)
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            rows.append(_row(f"totals/{field}", float(va), float(vb)))
    p99_a, p99_b = ta.get("p99", 0.0), tb.get("p99", 0.0)
    if p99_a and p99_b > p99_a:
        pct = 100.0 * (p99_b - p99_a) / p99_a
        causes = []
        tput_a, tput_b = ta.get("throughput", 0.0), tb.get("throughput", 0.0)
        if tput_a and abs(tput_b - tput_a) / tput_a >= 0.01:
            causes.append(
                f"throughput {100.0 * (tput_b - tput_a) / tput_a:+.0f}%")
        err_delta = tb.get("errors", 0) - ta.get("errors", 0)
        if err_delta:
            causes.append(f"errors {err_delta:+d}")
        cen_delta = tb.get("censored", 0) - ta.get("censored", 0)
        if cen_delta:
            causes.append(f"censored ops {cen_delta:+d}")
        if not causes:
            causes = ["same throughput/errors: latency distribution "
                      "itself shifted"]
        attribution.append(f"p99 +{pct:.0f}%: " + ", ".join(causes))
    if a.get("scenario") != b.get("scenario"):
        notes.append("scenarios differ: this is a cross-scenario diff, "
                     "not a regression comparison")
    return rows, attribution, notes


def compare_runs(a: dict, b: dict, a_label: str = "a", b_label: str = "b",
                 names=None) -> dict:
    """Diff two same-kind documents into a ``repro-compare/1`` report.

    ``a`` is the baseline, ``b`` the candidate: positive deltas mean the
    candidate is bigger/slower.  ``names`` (bench kind only) restricts
    the diff to those benchmark names — the gate passes the regressed set.
    """
    kind_a, kind_b = detect_kind(a), detect_kind(b)
    if kind_a != kind_b:
        raise ConfigurationError(
            f"cannot compare {kind_a} against {kind_b}: "
            "both runs must share a schema")
    if kind_a == "bench":
        rows, attribution, notes = _compare_bench(a, b, names=names)
    elif kind_a == "prof":
        rows, attribution, notes = _compare_prof(a, b)
    else:
        rows, attribution, notes = _compare_live(a, b)
    hosts = host_delta(a.get("host"), b.get("host"))
    if hosts and kind_a in ("bench", "prof"):
        notes.append("hosts differ (" + "; ".join(hosts) +
                     "): wall-clock deltas may reflect the machine, "
                     "not the code")
    return {
        "schema": SCHEMA,
        "kind": kind_a,
        "a": {"label": a_label, "host": a.get("host")},
        "b": {"label": b_label, "host": b.get("host")},
        "rows": rows,
        "attribution": attribution,
        "notes": notes,
    }


def compare_files(a_path: str, b_path: str, names=None) -> dict:
    """Load and diff two report files (labels = the paths given)."""
    return compare_runs(load_run(a_path), load_run(b_path),
                        a_label=str(a_path), b_label=str(b_path),
                        names=names)


def validate_compare_report(data: dict) -> None:
    """Schema check; raises :class:`ConfigurationError` on any mismatch."""
    if not isinstance(data, dict):
        raise ConfigurationError("compare report must be an object")
    if data.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"compare report schema is {data.get('schema')!r}, "
            f"expected {SCHEMA!r}")
    if data.get("kind") not in set(_SCHEMA_KINDS.values()):
        raise ConfigurationError(
            f"compare report kind is {data.get('kind')!r}")
    for side in ("a", "b"):
        info = data.get(side)
        if not isinstance(info, dict) or "label" not in info:
            raise ConfigurationError(
                f"compare report side {side!r} needs a label")
    rows = data.get("rows")
    if not isinstance(rows, list):
        raise ConfigurationError("compare report needs a rows list")
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            raise ConfigurationError(f"row {index} is not an object")
        for field in ("metric", "a", "b", "delta", "significant"):
            if field not in row:
                raise ConfigurationError(
                    f"row {index} is missing {field!r}")
        for field in ("a", "b", "delta"):
            value = row[field]
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise ConfigurationError(
                    f"row {index} field {field!r} is not numeric")
    for field in ("attribution", "notes"):
        value = data.get(field)
        if not isinstance(value, list) \
                or any(not isinstance(item, str) for item in value):
            raise ConfigurationError(
                f"compare report needs a list of strings for {field!r}")


def dumps_compare_report(data: dict) -> str:
    """Deterministic JSON: sorted keys, fixed separators, trailing newline."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"


def write_compare_report(data: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_compare_report(data))


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) >= 1.0:
        return f"{int(value)}"
    return f"{value:.4f}".rstrip("0").rstrip(".")


def render_compare_report(data: dict) -> str:
    """ASCII diff: per-metric rows, then the attribution + host notes."""
    lines = [f"run diff ({data['kind']})  "
             f"{data['a']['label']} -> {data['b']['label']}"]
    if data["rows"]:
        lines.append(f"  {'metric':<42} {'a':>12} {'b':>12} "
                     f"{'delta':>12} {'pct':>8}")
        for row in data["rows"]:
            pct = row.get("delta_pct")
            pct_s = f"{pct:+.1f}%" if pct is not None else "-"
            marker = " *" if row["significant"] else ""
            lines.append(
                f"  {row['metric']:<42} {_fmt_value(row['a']):>12} "
                f"{_fmt_value(row['b']):>12} "
                f"{_fmt_value(row['delta']):>12} {pct_s:>8}{marker}"
            )
        lines.append("  (* = significant: beyond 2 stddev when spread was "
                     "recorded, else >= 1%)")
    else:
        lines.append("  no comparable metrics")
    if data["attribution"]:
        lines.append("  attribution:")
        for line in data["attribution"]:
            lines.append(f"    {line}")
    if data["notes"]:
        lines.append("  notes:")
        for note in data["notes"]:
            lines.append(f"    {note}")
    return "\n".join(lines)

"""Per-node resource-utilization time series over simulated time.

The paper's explanations are *utilization* arguments — Hive's RCFile scans
are CPU-bound at ~70 MB/s per node while HDFS could deliver 400 MB/s, PDW
steps are disk- or network-bound, and mongostat showed 25-45% of time at
the global lock — but spans alone show *when* work ran, not *how busy each
resource was while it ran*.  A :class:`UtilizationSampler` closes that gap:
producers report level changes on a virtual clock and the sampler
integrates them into fixed-interval :class:`Series`, a dstat/perfmon-style
view of the simulated cluster.

Three producer APIs cover every simulator style in the repo:

* :meth:`UtilizationSampler.set_level` — event-driven code (the
  :class:`~repro.simcluster.events.Resource` grant/release path) reports
  each level *transition*; the sampler integrates the previous level over
  the elapsed interval.
* :meth:`UtilizationSampler.accumulate` — analytic engines (Hive, PDW)
  that compute phase durations add a constant level over an explicit
  ``[start, end)`` window; overlapping contributions sum.
* :meth:`UtilizationSampler.sample` — instantaneous gauges (buffer-pool
  hit rate) recorded last-write-wins per bucket, carried forward across
  empty buckets on export.

Like the tracer, the whole layer is **zero-overhead when unset**: every
hook defaults to ``sampler=None`` behind one truthiness check, and
:data:`NULL_SAMPLER` is a falsy no-op stand-in.  Series carry only
simulated times and caller-supplied levels — no wall-clock reads — so
same-seed runs export byte-identical CSV/JSON.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import SimulationError

# Glyph ramp for the sparkline heatmap, darkest = saturated.
HEAT_GLYPHS = " .:-=+*#%@"

BUSY = "busy"  # fraction of capacity in use (0..1)
QUEUE = "queue"  # time-averaged queue depth (unbounded)
GAUGE = "gauge"  # last-write-wins instantaneous value


@dataclass
class Series:
    """One fixed-interval time series for a (node, resource, metric) triple.

    ``values[i]`` covers simulated time ``[i * interval, (i+1) * interval)``.
    For ``busy`` series values are fractions of ``capacity`` (0..1); for
    ``queue`` series they are time-averaged depths; for ``gauge`` series the
    last sampled value in the bucket, carried forward.
    """

    node: str
    resource: str
    metric: str
    interval: float
    capacity: float
    values: list[float] = field(default_factory=list)

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.node, self.resource, self.metric)

    @property
    def duration(self) -> float:
        return len(self.values) * self.interval

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    def window_mean(self, start: float, end: float) -> float:
        """Time-weighted mean over ``[start, end)`` (bucket-overlap weighted)."""
        if end <= start or not self.values:
            return 0.0
        total = 0.0
        for i, value in enumerate(self.values):
            lo = i * self.interval
            hi = lo + self.interval
            overlap = min(end, hi) - max(start, lo)
            if overlap > 0:
                total += value * overlap
        return total / (end - start)

    def integral(self) -> float:
        """Total level-seconds (for busy series: busy-seconds x capacity)."""
        return sum(v for v in self.values) * self.interval * self.capacity


class _Accumulator:
    """Mutable per-key state while sampling is in progress.

    Reported windows are buffered in ``pending`` (one append per report)
    and spread into ``buckets`` lazily, the first time the series is
    materialized — producers on the simulator's hot path never pay the
    bucket walk.
    """

    __slots__ = ("capacity", "buckets", "pending", "open_since",
                 "open_level", "last_time")

    def __init__(self, capacity: float):
        self.capacity = capacity
        self.buckets: dict[int, float] = {}  # bucket index -> level-seconds
        self.pending: list[tuple[float, float, float]] = []  # (start, end, level)
        self.open_since: Optional[float] = None
        self.open_level: float = 0.0
        self.last_time: float = 0.0


class UtilizationSampler:
    """Integrates reported resource levels into fixed-interval time series."""

    enabled = True

    def __init__(self, interval: float = 1.0):
        if interval <= 0:
            raise SimulationError(f"sampler interval must be positive, got {interval}")
        self.interval = interval
        self._accums: dict[tuple[str, str, str], _Accumulator] = {}
        self._gauges: dict[tuple[str, str, str], dict[int, float]] = {}
        self._end = 0.0

    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._accums) + len(self._gauges)

    # -- producer API -------------------------------------------------------------

    def _accum(self, node: str, resource: str, metric: str,
               capacity: float) -> _Accumulator:
        key = (node, resource, metric)
        accum = self._accums.get(key)
        if accum is None:
            accum = _Accumulator(capacity)
            self._accums[key] = accum
        elif accum.capacity != capacity:
            raise SimulationError(
                f"series {key!r}: capacity changed from {accum.capacity} "
                f"to {capacity}"
            )
        return accum

    def _flush(self, accum: _Accumulator) -> None:
        """Spread every pending window into the interval buckets.

        Runs once per series at materialization, not once per report.  A
        window inside a single bucket is one dict update; windows spanning
        several buckets add whole ``level * dt`` slabs to the fully
        covered middle buckets and compute overlaps only at the two edges.
        """
        pending = accum.pending
        if not pending:
            return
        dt = self.interval
        buckets = accum.buckets
        get = buckets.get
        ceil = math.ceil
        for start, end, level in pending:
            if end <= start or level == 0.0:
                continue
            first = int(start / dt)
            last = int(ceil(end / dt))
            if last <= first + 1:
                buckets[first] = get(first, 0.0) + level * (end - start)
                continue
            head = (first + 1) * dt - start
            if head > 0:
                buckets[first] = get(first, 0.0) + level * head
            if last > first + 2:
                slab = level * dt
                for i in range(first + 1, last - 1):
                    buckets[i] = get(i, 0.0) + slab
            tail = end - (last - 1) * dt
            if tail > 0:
                i = last - 1
                buckets[i] = get(i, 0.0) + level * tail
        pending.clear()

    def accumulate(self, node: str, resource: str, start: float, end: float,
                   level: float = 1.0, capacity: float = 1.0,
                   metric: str = BUSY) -> None:
        """Add a constant ``level`` over ``[start, end)`` (analytic engines)."""
        if end < start:
            raise SimulationError(
                f"{node}/{resource}: window ends before it starts"
            )
        accum = self._accum(node, resource, metric, capacity)
        accum.pending.append((start, end, level))
        if end > accum.last_time:
            accum.last_time = end
        if end > self._end:
            self._end = end

    def accumulate_many(self, node: str, resource: str, windows,
                        level: float = 1.0, capacity: float = 1.0,
                        metric: str = BUSY) -> None:
        """Batched :meth:`accumulate`: many ``(start, end)`` windows at once.

        Resolves the series accumulator once for the whole batch, so
        task-heavy producers (thousands of attempt spans per phase) pay
        one list append per window instead of a lookup-and-spread per
        call.
        """
        accum = self._accum(node, resource, metric, capacity)
        pending = accum.pending
        last = accum.last_time
        for start, end in windows:
            if end < start:
                raise SimulationError(
                    f"{node}/{resource}: window ends before it starts"
                )
            pending.append((start, end, level))
            if end > last:
                last = end
        accum.last_time = last
        if last > self._end:
            self._end = last

    def set_level(self, node: str, resource: str, now: float, level: float,
                  capacity: float = 1.0, metric: str = BUSY) -> None:
        """Report a level *transition* at ``now`` (event-driven code).

        The previous level is integrated from its own transition time up to
        ``now``; the new level stays open until the next call or
        :meth:`finish`.
        """
        accum = self._accum(node, resource, metric, capacity)
        if accum.open_since is not None:
            accum.pending.append((accum.open_since, now, accum.open_level))
        accum.open_since = now
        accum.open_level = level
        if now > accum.last_time:
            accum.last_time = now
        if now > self._end:
            self._end = now

    def sample(self, node: str, resource: str, now: float, value: float) -> None:
        """Record an instantaneous gauge reading (last write per bucket wins)."""
        key = (node, resource, GAUGE)
        self._gauges.setdefault(key, {})[int(now / self.interval)] = value
        self._end = max(self._end, now)

    def finish(self, end: Optional[float] = None) -> None:
        """Close every open level at ``end`` (default: the latest time seen)."""
        close_at = self._end if end is None else max(end, self._end)
        for accum in self._accums.values():
            if accum.open_since is not None:
                accum.pending.append(
                    (accum.open_since, close_at, accum.open_level))
                accum.open_since = close_at
                accum.last_time = max(accum.last_time, close_at)
        self._end = close_at

    # -- consumer API -------------------------------------------------------------

    def series(self, node: Optional[str] = None, resource: Optional[str] = None,
               metric: Optional[str] = None) -> list[Series]:
        """Materialized series matching the filters, sorted by key."""
        out = []
        for key in sorted(set(self._accums) | set(self._gauges)):
            k_node, k_resource, k_metric = key
            if node is not None and k_node != node:
                continue
            if resource is not None and k_resource != resource:
                continue
            if metric is not None and k_metric != metric:
                continue
            out.append(self._materialize(key))
        return out

    def get(self, node: str, resource: str, metric: str = BUSY) -> Series:
        key = (node, resource, metric)
        if key not in self._accums and key not in self._gauges:
            raise KeyError(f"no series {key!r}")
        return self._materialize(key)

    def nodes(self) -> list[str]:
        return sorted({k[0] for k in self._accums} | {k[0] for k in self._gauges})

    def _bucket_count(self) -> int:
        return max(1, int(math.ceil(self._end / self.interval))) if self._end else 0

    def _materialize(self, key: tuple[str, str, str]) -> Series:
        node, resource, metric = key
        count = self._bucket_count()
        if metric == GAUGE:
            samples = self._gauges[key]
            values, last = [], 0.0
            for i in range(count):
                last = samples.get(i, last)
                values.append(last)
            return Series(node, resource, metric, self.interval, 1.0, values)
        accum = self._accums[key]
        self._flush(accum)
        scale = self.interval * (accum.capacity if metric == BUSY else 1.0)
        values = [accum.buckets.get(i, 0.0) / scale for i in range(count)]
        if metric == BUSY:
            # Integration rounding can nudge a saturated bucket past 1.
            values = [min(1.0, v) for v in values]
        return Series(node, resource, metric, self.interval, accum.capacity, values)


class NullSampler:
    """Falsy no-op sampler: ``if sampler:`` guards cost one branch, nothing else."""

    enabled = False
    interval = 0.0

    def __bool__(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def accumulate(self, *args, **kwargs) -> None:
        return None

    def accumulate_many(self, *args, **kwargs) -> None:
        return None

    def set_level(self, *args, **kwargs) -> None:
        return None

    def sample(self, *args, **kwargs) -> None:
        return None

    def finish(self, end=None) -> None:
        return None

    def series(self, **filters) -> list:
        return []


NULL_SAMPLER = NullSampler()


def series_from_tracer(tracer, interval: float = 1.0, cat: str = "resource",
                       resource: str = "hold") -> UtilizationSampler:
    """Derive busy series from a tracer's hold spans (one per span node).

    This is the reconciliation bridge between the span layer and the
    sampler layer: the integral of the derived busy series equals the total
    hold time of the spans, so invariant tests can check a live sampler
    against the spans the same run recorded.
    """
    sampler = UtilizationSampler(interval=interval)
    for span in tracer.spans:
        if span.cat != cat:
            continue
        sampler.accumulate(span.node, resource, span.start, span.end)
    sampler.finish()
    return sampler


# -- exporters -----------------------------------------------------------------------


def series_to_dict(sampler: UtilizationSampler) -> dict:
    """Deterministic JSON-serializable snapshot of every series."""
    out = {}
    for series in sampler.series():
        out["/".join(series.key)] = {
            "node": series.node,
            "resource": series.resource,
            "metric": series.metric,
            "interval": series.interval,
            "capacity": series.capacity,
            "values": series.values,
        }
    return out


def dumps_series(sampler: UtilizationSampler) -> str:
    return json.dumps(series_to_dict(sampler), sort_keys=True,
                      separators=(",", ":"))


def write_series_json(path: str, sampler: UtilizationSampler) -> int:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_series(sampler))
    return len(sampler.series())


def series_to_csv(sampler: UtilizationSampler) -> str:
    """Long-format CSV: one row per (series, bucket), deterministic order."""
    lines = ["node,resource,metric,interval,t,value"]
    for series in sampler.series():
        for i, value in enumerate(series.values):
            lines.append(
                f"{series.node},{series.resource},{series.metric},"
                f"{series.interval:.9g},{i * series.interval:.9g},{value:.9g}"
            )
    return "\n".join(lines) + "\n"


def write_series_csv(path: str, sampler: UtilizationSampler) -> int:
    """Write the CSV export; returns the number of data rows."""
    text = series_to_csv(sampler)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count("\n") - 1


def _heat_row(values: list[float], width: int, peak: float) -> str:
    """Resample bucket values to ``width`` columns of heat glyphs."""
    if not values or peak <= 0:
        return " " * width
    row = []
    per_col = len(values) / width
    for col in range(width):
        lo = int(col * per_col)
        hi = max(lo + 1, int((col + 1) * per_col))
        cell = max(values[lo:hi], default=0.0) / peak
        index = min(len(HEAT_GLYPHS) - 1, int(cell * (len(HEAT_GLYPHS) - 1) + 0.5))
        if cell > 0 and index == 0:
            index = 1  # any activity at all shows as at least a '.'
        row.append(HEAT_GLYPHS[index])
    return "".join(row)


def sparkline_heatmap(sampler: UtilizationSampler, width: int = 72,
                      metric: Optional[str] = BUSY) -> str:
    """Render per-node utilization rows as an ASCII heatmap.

    Shares the ASCII timeline's convention — one glyph column is a fixed
    slice of simulated time starting at 0 — so the heatmap lines up under
    :func:`~repro.obs.export.ascii_timeline` output for the same run.
    ``busy`` rows are scaled against 1.0 (saturation); ``queue``/``gauge``
    rows against their own peak (annotated per row).
    """
    all_series = sampler.series(metric=metric)
    if not all_series:
        return "(no series)"
    extent = max(s.duration for s in all_series)
    lines = [
        f"utilization  [0s .. {extent:.6g}s]  ({len(all_series)} series, "
        f"1 col = {extent / width:.3g}s, ramp '{HEAT_GLYPHS}')"
    ]
    label_width = min(
        24, max(4, max(len(f"{s.resource}[{s.metric[0]}]") for s in all_series))
    )
    current_node = None
    for series in all_series:
        if series.node != current_node:
            current_node = series.node
            lines.append(f"{series.node}:")
        peak = 1.0 if series.metric == BUSY else max(series.peak(), 1e-12)
        label = f"{series.resource}[{series.metric[0]}]"[:label_width].ljust(label_width)
        suffix = "" if series.metric == BUSY else f"  (peak {series.peak():.3g})"
        lines.append(
            f"  {label} |{_heat_row(series.values, width, peak)}|{suffix}"
        )
    return "\n".join(lines)

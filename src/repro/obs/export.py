"""Trace exporters: Chrome trace-event JSON and an ASCII per-node timeline.

The Chrome format (one ``"X"`` complete event per span, microsecond
timestamps) loads directly into ``chrome://tracing`` / Perfetto, so a DSS or
OLTP run can be inspected phase by phase.  Metrics ride along under
``otherData`` (ignored by the viewers, consumed by our tests).

Both exporters are deterministic: pids are assigned by first-seen node
order, event order follows span record order, and JSON is dumped with
sorted keys — two same-seed runs serialize to identical bytes.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer

_US = 1e6  # Chrome trace timestamps are microseconds


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The ``traceEvents`` list: metadata names plus one X event per span."""
    pids: dict[str, int] = {}
    lanes: dict[tuple[str, str], int] = {}
    events: list[dict] = []
    for span in tracer.spans:
        pid = pids.setdefault(span.node, len(pids) + 1)
        lane_key = (span.node, span.lane)
        if lane_key not in lanes:
            lanes[lane_key] = len([k for k in lanes if k[0] == span.node]) + 1

    for node, pid in pids.items():
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": node},
        })
    for (node, lane), tid in lanes.items():
        events.append({
            "ph": "M", "name": "thread_name", "pid": pids[node], "tid": tid,
            "args": {"name": lane},
        })

    by_id = {span.span_id: span for span in tracer.spans}
    for span in tracer.spans:
        args = dict(span.args)
        args["cat"] = span.cat
        if span.parent is not None:
            args["parent"] = span.parent
        if span.links:
            args["links"] = [[src, kind] for src, kind in span.links]
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.cat or "span",
            "ts": span.start * _US,
            "dur": span.duration * _US,
            "pid": pids[span.node],
            "tid": lanes[(span.node, span.lane)],
            "args": args,
        })
        # Causal links render as flow arrows: an "s" (start) event at the
        # source span's end, an "f" (finish, binding to the enclosing slice)
        # at this span's start.  Emitted only when links exist, so traces
        # without links serialize byte-identically to before.
        for i, (src_id, kind) in enumerate(span.links):
            src = by_id.get(src_id)
            if src is None:
                continue  # orphan link: invariants report it, the viewer skips it
            flow_id = f"link-{src_id}-{span.span_id}-{i}"
            events.append({
                "ph": "s", "id": flow_id, "name": kind, "cat": "link",
                "ts": src.end * _US, "pid": pids[src.node],
                "tid": lanes[(src.node, src.lane)],
            })
            events.append({
                "ph": "f", "bp": "e", "id": flow_id, "name": kind,
                "cat": "link", "ts": span.start * _US,
                "pid": pids[span.node],
                "tid": lanes[(span.node, span.lane)],
            })
    return events


def chrome_counter_events(sampler, pids: Optional[dict[str, int]] = None) -> list[dict]:
    """Chrome ``"C"`` counter events: one track per (resource, metric) series.

    ``pids`` maps node names to the pids :func:`chrome_trace_events` already
    assigned, so a sampler's utilization tracks render *under the spans of
    the same node* in Perfetto; nodes the tracer never saw get fresh pids in
    the same first-seen scheme.  The mapping is mutated in place.
    """
    if pids is None:
        pids = {}
    events: list[dict] = []
    for series in sampler.series():
        pid = pids.setdefault(series.node, len(pids) + 1)
        name = f"{series.resource} ({series.metric})"
        for i, value in enumerate(series.values):
            events.append({
                "ph": "C",
                "name": name,
                "cat": series.metric,
                "ts": i * series.interval * _US,
                "pid": pid,
                "tid": 0,
                "args": {series.metric: value},
            })
    return events


def chrome_trace(
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    sampler=None,
) -> dict:
    """The full Chrome trace document."""
    events = chrome_trace_events(tracer)
    if sampler:
        # Reuse the span pids so counters land under the matching process.
        pids = {span.node: None for span in tracer.spans}
        pids = {node: i + 1 for i, node in enumerate(pids)}
        events.extend(chrome_counter_events(sampler, pids))
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        doc["otherData"] = {"metrics": metrics.as_dict()}
    return doc


def dumps_chrome_trace(
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    sampler=None,
) -> str:
    """Serialize deterministically (sorted keys, fixed separators)."""
    return json.dumps(chrome_trace(tracer, metrics, sampler), sort_keys=True,
                      separators=(",", ":"))


def write_chrome_trace(
    path: str,
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    sampler=None,
) -> int:
    """Write the trace JSON to ``path``; returns the number of span events."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_chrome_trace(tracer, metrics, sampler))
    return len(tracer.spans)


def write_metrics(path: str, metrics: MetricsRegistry) -> int:
    """Write the metrics snapshot as JSON; returns the number of metrics."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(metrics.to_json(indent=2))
    return len(metrics)


# -- ASCII timeline ---------------------------------------------------------------


def _bar(span: Span, t0: float, scale: float, width: int) -> tuple[int, int]:
    left = int((span.start - t0) * scale)
    right = int((span.end - t0) * scale)
    left = max(0, min(width - 1, left))
    right = max(left + 1, min(width, right))
    return left, right


def ascii_timeline(
    tracer: Tracer,
    width: int = 72,
    max_lanes_per_node: int = 12,
    cat: Optional[str] = None,
) -> str:
    """Render spans as per-node, per-lane bars on a shared time axis.

    Each node gets a block; each lane one row of ``#`` bars (``.`` fills the
    idle gaps).  Lanes beyond ``max_lanes_per_node`` are elided with a count,
    keeping 128-client traces readable.
    """
    spans = [s for s in tracer.spans if cat is None or s.cat == cat]
    if not spans:
        return "(no spans)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    extent = max(t1 - t0, 1e-12)
    scale = width / extent

    lines = [
        f"timeline  [{t0:.6g}s .. {t1:.6g}s]  ({len(spans)} spans, "
        f"1 col = {extent / width:.3g}s)"
    ]
    nodes: dict[str, dict[str, list[Span]]] = {}
    for span in spans:
        nodes.setdefault(span.node, {}).setdefault(span.lane, []).append(span)

    label_width = max(
        len(lane) for per_node in nodes.values() for lane in per_node
    )
    label_width = min(max(label_width, 4), 24)
    for node, per_node in nodes.items():
        lines.append(f"{node}:")
        shown = list(per_node.items())[:max_lanes_per_node]
        for lane, lane_spans in shown:
            row = ["."] * width
            for span in lane_spans:
                left, right = _bar(span, t0, scale, width)
                for i in range(left, right):
                    row[i] = "#"
            label = lane[:label_width].ljust(label_width)
            lines.append(f"  {label} |{''.join(row)}|")
        hidden = len(per_node) - len(shown)
        if hidden > 0:
            lines.append(f"  ... {hidden} more lane(s)")
    return "\n".join(lines)

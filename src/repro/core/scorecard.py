"""The reproduction scorecard: paper-vs-model accuracy, quantified.

Computes the ratio-error statistics quoted in EXPERIMENTS.md directly from
the models and the transcribed paper numbers, plus a checklist of the
paper's qualitative claims.  A regression test pins these, so any change
that silently degrades fidelity fails CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.stats import geometric_mean
from repro.core import paper_data
from repro.core.dss import DssStudy
from repro.core.oltp import OltpStudy


def ratio_error(model: float, paper: float) -> float:
    """Symmetric multiplicative error: exp(|log(model/paper)|) >= 1."""
    if model <= 0 or paper <= 0:
        raise ValueError("ratio error needs positive values")
    return math.exp(abs(math.log(model / paper)))


@dataclass
class AccuracySummary:
    """Error statistics for one series of paper-vs-model points."""

    name: str
    errors: list[float] = field(default_factory=list)

    def add(self, model: float, paper: float) -> None:
        self.errors.append(ratio_error(model, paper))

    @property
    def geomean(self) -> float:
        return geometric_mean(self.errors) if self.errors else 1.0

    @property
    def worst(self) -> float:
        return max(self.errors) if self.errors else 1.0

    @property
    def count(self) -> int:
        return len(self.errors)


@dataclass
class Claim:
    """One qualitative claim of the paper and whether the model reproduces it."""

    text: str
    holds: bool


@dataclass
class Scorecard:
    accuracy: dict[str, AccuracySummary] = field(default_factory=dict)
    claims: list[Claim] = field(default_factory=list)

    @property
    def all_claims_hold(self) -> bool:
        return all(c.holds for c in self.claims)

    def render(self) -> str:
        lines = ["Reproduction scorecard", "", "Quantitative accuracy:"]
        for summary in self.accuracy.values():
            lines.append(
                f"  {summary.name:<28} n={summary.count:<4} "
                f"geomean-error {summary.geomean:5.2f}x   "
                f"worst {summary.worst:5.2f}x"
            )
        lines.append("")
        lines.append("Qualitative claims:")
        for claim in self.claims:
            lines.append(f"  [{'x' if claim.holds else ' '}] {claim.text}")
        return "\n".join(lines)


def build_scorecard(
    dss: DssStudy | None = None, oltp: OltpStudy | None = None
) -> Scorecard:
    """Evaluate both studies against every transcribed paper number."""
    dss = dss or DssStudy()
    oltp = oltp or OltpStudy()
    card = Scorecard()
    table = dss.table3()

    hive = AccuracySummary("Table 3: Hive times")
    pdw = AccuracySummary("Table 3: PDW times")
    for row in table.rows:
        for i in range(4):
            paper_h = paper_data.HIVE_TIMES[row.query][i]
            if paper_h is not None and row.hive[i] is not None:
                hive.add(row.hive[i], paper_h)
            pdw.add(row.pdw[i], paper_data.PDW_TIMES[row.query][i])
    card.accuracy["hive"] = hive
    card.accuracy["pdw"] = pdw

    loads = AccuracySummary("Table 2: load times")
    table2 = dss.table2()
    for i in range(4):
        loads.add(table2["hive"][i], paper_data.LOAD_TIMES_MIN["hive"][i])
        loads.add(table2["pdw"][i], paper_data.LOAD_TIMES_MIN["pdw"][i])
    card.accuracy["loads"] = loads

    map_phase = AccuracySummary("Table 4: Q1 map phase")
    for model, paper in zip(dss.table4(), paper_data.Q1_MAP_PHASE_SEC):
        map_phase.add(model, paper)
    card.accuracy["q1_map"] = map_phase

    q22 = AccuracySummary("Table 5: Q22 sub-queries")
    table5 = dss.table5()
    for sub in (1, 2, 3, 4):
        for model, paper in zip(table5[sub], paper_data.Q22_SUBQUERY_SEC[sub]):
            q22.add(model, paper)
    card.accuracy["q22"] = q22

    peaks = AccuracySummary("YCSB peak throughputs")
    peaks.add(oltp.peak_throughput("sql-cs", "C"), 125_457)
    peaks.add(oltp.peak_throughput("mongo-as", "C"), 68_533)
    peaks.add(oltp.peak_throughput("mongo-cs", "C"), 60_907)
    peaks.add(oltp.peak_throughput("sql-cs", "B"), 103_789)
    peaks.add(oltp.peak_throughput("mongo-cs", "D"), 224_271)
    peaks.add(oltp.peak_throughput("mongo-as", "E"), 6_337)
    card.accuracy["ycsb_peaks"] = peaks

    oltp_loads = AccuracySummary("YCSB load times")
    for system, minutes in paper_data.OLTP_LOAD_MIN.items():
        oltp_loads.add(oltp.load_time_minutes(system), minutes)
    card.accuracy["oltp_loads"] = oltp_loads

    # -- qualitative claims ----------------------------------------------------------
    am9 = [h / p for h, p in zip(table.am9("hive"), table.am9("pdw"))]
    e_peaks = {n: oltp.peak_throughput(n, "E") for n in ("sql-cs", "mongo-as", "mongo-cs")}
    d_20k = oltp.evaluate("mongo-as", "D", 20_000)
    card.claims = [
        Claim("PDW beats Hive on all 22 queries at all scale factors",
              all(h is None or h > p for r in table.rows
                  for h, p in zip(r.hive, r.pdw))),
        Claim("PDW/Hive speedup declines with scale factor",
              am9[0] > am9[-1]),
        Claim("Hive's Q9 does not complete at 16 TB (disk space)",
              table.row(9).hive[3] is None),
        Claim("SQL-CS peaks highest on YCSB workloads A-D",
              all(oltp.peak_throughput("sql-cs", w)
                  > max(oltp.peak_throughput("mongo-as", w),
                        oltp.peak_throughput("mongo-cs", w))
                  for w in "ABCD")),
        Claim("Mongo-AS wins workload E (range-partitioned scans)",
              e_peaks["mongo-as"] > max(e_peaks["sql-cs"], e_peaks["mongo-cs"])),
        Claim("Mongo-AS pays pathological append latency on E",
              oltp.evaluate("mongo-as", "E", 8_000).latency_ms("insert") > 100),
        Claim("Mongo-AS crashes on workload D above 20k ops/s",
              _crashes(oltp, "mongo-as", "D", 40_000)),
        Claim("Read-uncommitted cuts SQL-CS read latency on workload A",
              OltpStudy(isolation="read_uncommitted")
              .evaluate("sql-cs", "A", 40_000).latency["read"]
              < 0.5 * oltp.evaluate("sql-cs", "A", 40_000).latency["read"]),
        Claim("Mongo-AS survives the 20k target on D (high append latency)",
              d_20k.latency_ms("insert") > 50),
    ]
    return card


def _crashes(study: OltpStudy, system: str, workload: str, target: float) -> bool:
    from repro.common.errors import ServerCrashed

    try:
        study.evaluate(system, workload, target)
    except ServerCrashed:
        return True
    return False

"""The paper's published measurements, transcribed for calibration/comparison.

Sources: Table 2 (load times), Table 3 (query times at four scale factors),
Table 4 (Q1 map-phase times), Table 5 (Q22 sub-query breakdown), and the
YCSB figures' peak throughput/latency callouts quoted in Section 3.4.3.

The reproduction fits one free parameter per query (a CPU weight) against
the SF 250 column only; every other scale factor is a model *prediction*
compared against these numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

SCALE_FACTORS = (250, 1000, 4000, 16000)

# Table 3: Hive query times in seconds per scale factor (None = did not finish).
HIVE_TIMES: dict[int, tuple] = {
    1: (207, 443, 1376, 5357),
    2: (411, 530, 1081, 3191),
    3: (508, 1125, 3789, 11644),
    4: (367, 855, 2120, 6508),
    5: (536, 1686, 5481, 19812),
    6: (79, 166, 537, 2131),
    7: (1007, 2447, 7694, 24887),
    8: (967, 2003, 6150, 18112),
    9: (2033, 7243, 27522, None),  # out of disk space at 16 TB
    10: (489, 1107, 2958, 13195),
    11: (242, 258, 695, 1964),
    12: (253, 490, 1597, 5123),
    13: (392, 629, 1428, 4577),
    14: (154, 353, 769, 2556),
    15: (444, 585, 1145, 2768),
    16: (460, 654, 1732, 5695),
    17: (654, 1717, 6334, 25662),
    18: (786, 2249, 8264, 25964),
    19: (376, 1069, 4005, 17644),
    20: (606, 1296, 2461, 11041),
    21: (1431, 3217, 13071, 40748),
    22: (908, 1145, 1744, 3402),
}

# Table 3: PDW query times in seconds per scale factor.
PDW_TIMES: dict[int, tuple] = {
    1: (54, 212, 864, 3607),
    2: (7, 25, 115, 495),
    3: (32, 112, 606, 2572),
    4: (8, 54, 187, 629),
    5: (33, 80, 253, 1060),
    6: (5, 41, 142, 526),
    7: (19, 80, 240, 955),
    8: (9, 89, 238, 814),
    9: (207, 844, 3962, 15494),
    10: (14, 67, 265, 981),
    11: (3, 18, 99, 302),
    12: (5, 44, 192, 631),
    13: (51, 190, 772, 3061),
    14: (7, 64, 164, 640),
    15: (21, 99, 377, 1397),
    16: (36, 71, 223, 549),
    17: (93, 406, 1679, 6757),
    18: (20, 103, 482, 2880),
    19: (16, 73, 272, 958),
    20: (20, 101, 425, 1611),
    21: (31, 138, 927, 4736),
    22: (19, 71, 255, 1270),
}

# Table 2: load times in minutes.
LOAD_TIMES_MIN = {
    "hive": (38, 125, 519, 2512),
    "pdw": (79, 313, 1180, 4712),
}

# Table 4: total map-phase time for Q1's lineitem scan, seconds.
Q1_MAP_PHASE_SEC = (148, 339, 1258, 5220)

# Table 5: Q22 sub-query breakdown, seconds.
Q22_SUBQUERY_SEC = {
    1: (85, 104, 169, 263),
    2: (38, 51, 51, 63),
    3: (109, 236, 658, 2234),
    4: (654, 735, 797, 813),
}

# Section 3.4.3 headline YCSB numbers: (peak ops/s, latency ms at peak).
YCSB_PEAKS = {
    # Workload C (Figure 2): read latency at the highest achieved throughput.
    ("C", "sql-cs"): (125_457, 6.4),
    ("C", "mongo-as"): (68_533, 11.8),
    ("C", "mongo-cs"): (60_907, 13.2),
    # Workload B (Figure 3): SQL-CS update latency 12 ms, read 8.4 ms.
    ("B", "sql-cs"): (103_789, 8.4),
    # Workload D (Figure 5): Mongo-CS peak; Mongo-AS crashes above 20k.
    ("D", "mongo-cs"): (224_271, None),
    # Workload E (Figure 6): Mongo-AS wins scans but pays 1832 ms appends.
    ("E", "mongo-as"): (6_337, 30.4),
}

# Section 3.4.2: load phase, minutes.
OLTP_LOAD_MIN = {"mongo-as": 114, "sql-cs": 146, "mongo-cs": 45}


def hive_time(query: int, scale_factor: int):
    return HIVE_TIMES[query][SCALE_FACTORS.index(scale_factor)]


def pdw_time(query: int, scale_factor: int):
    return PDW_TIMES[query][SCALE_FACTORS.index(scale_factor)]

"""The OLTP study: YCSB latency/throughput curves (Figures 2-6).

The paper's measurement protocol is a *closed loop*: 800 client threads each
issue one request at a time against a throttled target rate, so achieved
throughput and latency obey the interactive response-time law
``X = N / (R + Z)``.  This module models each deployment as a closed
queueing network solved with Mean Value Analysis (MVA):

* **cpu** — 128 server cores (8 nodes x 16 hardware threads);
* **disk** — 64 data spindles doing random I/O; SQL Server reads 8 KB per
  miss, MongoDB 32 KB (the workload C differentiator, §3.4.3);
* **log** — SQL Server's commit-time log force (MongoDB ran without
  durability);
* **hot shard lock** — MongoDB 1.8's per-process global write lock, focused
  on the mongod holding the zipfian-hottest key (mongostat showed 25-45% of
  time in this lock under workload A);
* **hot row** — SQL Server's row lock on the hottest key under READ
  COMMITTED (re-running with READ UNCOMMITTED releases readers, the paper's
  §3.4.3 side experiment);
* **append hot spot** — Mongo-AS routes every append to the last chunk; in
  workload E that mongod's writer lock also waits behind scan readers
  (1832 ms appends), and in workload D pushing past ~20 kops/s crashes the
  server (socket exceptions), reproduced via :class:`ServerCrashed`.

Cache behaviour is computed, not assumed: the zipfian CDF over cache-unit
granularity gives each system's miss rate (32 KB mongo extents cache fewer
distinct hot records than 8 KB SQL pages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ServerCrashed, WorkloadError
from repro.common.stats import harmonic_number
from repro.common.units import GB, KB, MB
from repro.ycsb.workloads import WORKLOADS, RECORD_BYTES, WorkloadSpec

AVG_SCAN_LENGTH = 500  # scans read uniform(1, 1000) records


@dataclass(frozen=True)
class OltpParams:
    """Cluster-wide constants of the YCSB testbed (Section 3.1/3.4.1)."""

    server_nodes: int = 8
    cores_per_node: int = 16
    memory_per_node: float = 32.0 * GB
    disks_per_node: int = 8
    disk_seek: float = 0.008  # random access on a 10K SAS drive
    disk_bandwidth: float = 100.0 * MB
    client_threads: int = 800
    record_count: int = 640_000_000
    record_bytes: int = RECORD_BYTES
    zipf_theta: float = 0.99

    @property
    def total_cores(self) -> int:
        return self.server_nodes * self.cores_per_node

    @property
    def total_disks(self) -> int:
        return self.server_nodes * self.disks_per_node

    @property
    def dataset_bytes(self) -> float:
        return self.record_count * self.record_bytes

    def io_time(self, nbytes: float) -> float:
        return self.disk_seek + nbytes / self.disk_bandwidth


@dataclass(frozen=True)
class SystemModel:
    """Behavioural knobs of one deployment (SQL-CS, Mongo-AS, Mongo-CS)."""

    name: str
    read_io_bytes: int  # bytes fetched from disk per cache miss
    cache_fraction: float  # of node memory usable as cache
    cache_efficiency: float  # useful-record fraction of a cached unit
    cpu_read: float  # seconds of CPU per read
    cpu_write: float
    cpu_scan: float  # per scan (500 records average)
    shard_count: int  # routing targets (128 mongods / 8 SQL nodes)
    writeback_multiplier: float = 0.5  # dirty-page flush cost per update
    uses_global_lock: bool = False  # MongoDB 1.8 per-process write lock
    has_log: bool = False  # commit-time log force (SQL)
    range_sharded: bool = False  # Mongo-AS chunks
    row_locks: bool = False  # SQL row-level locking
    append_crash_target: Optional[float] = None  # Mongo-AS workload D
    log_io: float = 0.0005  # group-committed log write
    row_lock_hold: float = 0.001  # X lock is held across the commit log force
    # Extensions the paper turned OFF for MongoDB (Section 3.4.1):
    journaled: bool = False  # wait for the 100 ms journal group flush
    replicated: bool = False  # async replica set (one secondary)
    journal_flush_interval: float = 0.1


SYSTEMS: dict[str, SystemModel] = {
    "sql-cs": SystemModel(
        name="sql-cs",
        read_io_bytes=8 * KB,
        cache_fraction=0.82,  # 24 GB buffer pool + OS cache of 32 GB
        cache_efficiency=1.0,  # 8 KB pages: little cache pollution
        cpu_read=0.00035,
        cpu_write=0.00045,
        cpu_scan=0.004,
        shard_count=8,
        writeback_multiplier=0.3,  # checkpoint coalesces dirty pages
        has_log=True,
        row_locks=True,
    ),
    "mongo-as": SystemModel(
        name="mongo-as",
        read_io_bytes=32 * KB,
        cache_fraction=0.90,  # mmap: nearly all of RAM
        cache_efficiency=0.5,  # 32 KB extents: half the cached bytes are cold
        cpu_read=0.00065,  # mongod + mongos hop
        cpu_write=0.0008,
        cpu_scan=0.003,
        shard_count=128,
        writeback_multiplier=0.8,  # 60 s fsync cycle, no write coalescing
        uses_global_lock=True,
        range_sharded=True,
        append_crash_target=20_000.0,
    ),
    "mongo-cs": SystemModel(
        name="mongo-cs",
        read_io_bytes=32 * KB,
        cache_fraction=0.90,
        cache_efficiency=0.4,  # worse locality without mongos batching
        cpu_read=0.00062,
        cpu_write=0.00075,
        cpu_scan=0.006,  # the client merges 128 partial scan results
        shard_count=128,
        writeback_multiplier=0.8,
        uses_global_lock=True,
    ),
}


@dataclass
class Station:
    """One MVA service station."""

    name: str
    servers: int
    # Per-class service seconds per operation of that class.
    service: dict[str, float] = field(default_factory=dict)
    background: float = 0.0  # demand not attributable to a foreground class

    def demand(self, mix: dict[str, float]) -> float:
        return sum(mix.get(c, 0.0) * s for c, s in self.service.items()) + self.background


@dataclass
class CurvePoint:
    """One plotted point: achieved throughput + per-class latencies."""

    system: str
    workload: str
    target: float
    achieved: float
    latency: dict[str, float]  # seconds per op class
    utilization: dict[str, float]

    def latency_ms(self, op_class: str) -> float:
        return self.latency[op_class] * 1000.0


def closed_mva(stations: list[Station], mix: dict[str, float], clients: int,
               think_time: float) -> tuple[float, float, dict[str, float]]:
    """Exact single-class MVA with the Seidmann multi-server approximation.

    Returns (throughput, avg response time, queue length per station).
    """
    queue = {s.name: 0.0 for s in stations}
    x = 0.0
    response = 0.0
    for n in range(1, clients + 1):
        response = 0.0
        station_r = {}
        for s in stations:
            d = s.demand(mix)
            r = (d / s.servers) * (1.0 + queue[s.name]) + d * (s.servers - 1) / s.servers
            station_r[s.name] = (d / s.servers) * (1.0 + queue[s.name])
            response += r
        x = n / (response + think_time)
        for s in stations:
            queue[s.name] = x * station_r[s.name]
    return x, response, queue


class OltpStudy:
    """Reproduces the paper's YCSB evaluation (Figures 2-6 and load times)."""

    def __init__(self, params: OltpParams | None = None,
                 isolation: str = "read_committed",
                 systems: dict[str, SystemModel] | None = None):
        self.params = params or OltpParams()
        if isolation not in ("read_committed", "read_uncommitted"):
            raise WorkloadError(f"unknown isolation {isolation!r}")
        self.isolation = isolation
        self.systems = dict(systems if systems is not None else SYSTEMS)

    # -- cache and skew models ----------------------------------------------------

    def miss_rate(self, system: SystemModel, workload: WorkloadSpec) -> float:
        """Probability a request's record is not memory resident.

        Cache units (8 KB pages / 32 KB extents) are ranked by the zipfian
        popularity of the records they hold; the resident set is the top
        ``cache_bytes / unit`` units.  Workload D's read-latest pattern keeps
        its working set resident (the paper saw 99.5% hits).  A replica set
        stores two copies across the same eight nodes, halving the cache
        available to the primary copy.
        """
        if workload.request_distribution == "latest":
            return 0.005
        p = self.params
        cache_bytes = (
            p.server_nodes * p.memory_per_node
            * system.cache_fraction * system.cache_efficiency
        )
        if system.replicated:
            cache_bytes *= 0.5
        unit = max(system.read_io_bytes, p.record_bytes)
        total_units = p.dataset_bytes / unit
        cached_units = min(total_units, cache_bytes / unit)
        hit = harmonic_number(max(1, int(cached_units)), s=p.zipf_theta) / (
            harmonic_number(int(total_units), s=p.zipf_theta)
        )
        return max(0.0, 1.0 - hit)

    def hottest_key_share(self) -> float:
        """Zipfian mass of the single hottest key (rank 0)."""
        return 1.0 / harmonic_number(self.params.record_count, s=self.params.zipf_theta)

    def hottest_shard_share(self, system: SystemModel) -> float:
        """Share of requests landing on the shard holding the hottest key."""
        hot = self.hottest_key_share()
        return hot + (1.0 - hot) / system.shard_count

    # -- per-class service demands ---------------------------------------------------

    def _stations(self, system: SystemModel, workload: WorkloadSpec) -> list[Station]:
        p = self.params
        miss = self.miss_rate(system, workload)
        io = p.io_time(system.read_io_bytes)

        cpu = Station("cpu", p.total_cores)
        disk = Station("disk", p.total_disks)
        stations = [cpu, disk]

        cpu.service["read"] = system.cpu_read
        disk.service["read"] = miss * io

        cpu.service["update"] = system.cpu_write
        disk.service["update"] = miss * io  # fetch the page/extent to modify
        cpu.service["insert"] = system.cpu_write
        disk.service["insert"] = 0.1 * io  # appends fill the tail page

        # Deferred write-back of dirty data consumes disk capacity without
        # appearing in any op's latency.  Updates dirty random pages (SQL
        # checkpoints coalesce them; mongo's fsync cycle does not); appends
        # write back sequentially and are nearly free.
        disk.background = (
            workload.update * io * system.writeback_multiplier
            + workload.insert * 0.1 * io
        )

        # Scans read ~500 consecutive records.  Range sharding (Mongo-AS)
        # turns that into one near-sequential read on one chunk; hash
        # sharding fans it out as per-shard random page reads, of which the
        # cache absorbs the hit fraction.
        scan_bytes = AVG_SCAN_LENGTH * p.record_bytes
        if workload.scan > 0:
            unit = max(system.read_io_bytes, p.record_bytes)
            scan_units = scan_bytes / unit
            if system.range_sharded:
                # One seek plus a streaming read whenever any part is cold.
                p_cold = min(1.0, scan_units * miss)
                scan_io = p_cold * (p.disk_seek + scan_bytes / p.disk_bandwidth)
            else:
                fanout_penalty = 1.3 if system.shard_count > p.server_nodes else 1.0
                scan_io = scan_units * miss * p.io_time(unit) * fanout_penalty
            cpu.service["scan"] = system.cpu_scan
            disk.service["scan"] = scan_io

        if system.replicated:
            # The secondaries apply every write too: extra CPU and flush
            # traffic on the same spindles.
            for cls in ("update", "insert"):
                cpu.service[cls] = cpu.service[cls] * 1.8
            disk.background *= 1.8

        if system.journaled:
            # Safe-mode acks wait for the journal's 100 ms group flush:
            # a pure delay (no capacity limit) of half the interval on
            # average, plus sequential journal writes.
            journal = Station("journal", self.params.client_threads)
            wait = system.journal_flush_interval / 2.0
            journal.service["update"] = wait
            journal.service["insert"] = wait
            stations.append(journal)

        write_frac = workload.write_fraction
        if system.has_log:
            log = Station("log", p.server_nodes)  # one log disk per node
            log.service["update"] = system.log_io
            log.service["insert"] = system.log_io
            stations.append(log)

        if system.uses_global_lock and write_frac > 0:
            # The global write lock of the mongod holding the hottest key:
            # every write to that shard serializes, holding the lock across
            # any page fault taken inside it.
            hot_share = self.hottest_shard_share(system)
            hold = system.cpu_write + miss * io
            lock = Station("hotlock", 1)
            lock.service["update"] = hot_share * hold
            lock.service["insert"] = hot_share * hold
            # A read on that shard waits only when the writer is in.
            lock.service["read"] = hot_share * write_frac * hold
            stations.append(lock)

        if system.row_locks and workload.update > 0 and self.isolation == "read_committed":
            # SQL's hottest row: a reader's S lock waits behind an in-flight
            # X lock (probability ~ the update fraction); updates serialize
            # with each other.  READ UNCOMMITTED skips the reader side.
            hot = self.hottest_key_share()
            row = Station("hotrow", 1)
            row.service["update"] = hot * system.row_lock_hold
            row.service["read"] = hot * workload.update * system.row_lock_hold
            stations.append(row)

        if getattr(workload, "rmw", 0.0) > 0:
            # A read-modify-write visits every station its read and its
            # update would visit, back to back.
            for station in stations:
                read_s = station.service.get("read", 0.0)
                update_s = station.service.get("update", 0.0)
                if read_s or update_s:
                    station.service["rmw"] = read_s + update_s

        if system.range_sharded and workload.insert > 0:
            # Every append lands in the last chunk: one mongod's writer lock.
            # Under workload E that writer must also drain in-flight scan
            # readers before it can enter.
            if workload.scan > 0:
                hold = 0.3 * (p.disk_seek + scan_bytes / p.disk_bandwidth)
            else:
                hold = system.cpu_write + 0.00015  # chunk bookkeeping
            hot = Station("appendhot", 1)
            hot.service["insert"] = hold
            stations.append(hot)

        return stations

    @staticmethod
    def _mix(workload: WorkloadSpec) -> dict[str, float]:
        return {
            "read": workload.read,
            "update": workload.update,
            "insert": workload.insert,
            "scan": workload.scan,
            "rmw": workload.rmw,
        }

    # -- evaluation -------------------------------------------------------------------

    def evaluate(self, system_name: str, workload_name: str, target: float) -> CurvePoint:
        """One benchmark point: throttle to ``target`` ops/s, measure."""
        system = self.systems[system_name]
        workload = WORKLOADS[workload_name]
        if (
            system.append_crash_target is not None
            and workload.insert > 0
            and workload.request_distribution == "latest"
            and target > system.append_crash_target
        ):
            raise ServerCrashed(
                f"{system_name}: append path collapsed above "
                f"{system.append_crash_target:.0f} ops/s (socket exceptions, §3.4.3)"
            )

        stations = self._stations(system, workload)
        mix = self._mix(workload)
        n = self.params.client_threads

        # Find the think time that throttles the closed loop to the target.
        think = 0.0
        x, response, queue = closed_mva(stations, mix, n, think)
        for _ in range(8):
            think = max(0.0, n / target - response)
            x, response, queue = closed_mva(stations, mix, n, think)
            if x <= target * 1.001:
                break
        achieved = min(x, target)

        latency: dict[str, float] = {}
        for op_class, fraction in mix.items():
            if fraction <= 0:
                continue
            r = 0.0
            for s in stations:
                service = s.service.get(op_class, 0.0)
                r += (service / s.servers) * (1.0 + queue[s.name]) + service * (
                    s.servers - 1
                ) / s.servers
            latency[op_class] = r

        utilization = {
            s.name: min(1.0, achieved * s.demand(mix) / s.servers) for s in stations
        }
        return CurvePoint(
            system=system_name,
            workload=workload_name,
            target=target,
            achieved=achieved,
            latency=latency,
            utilization=utilization,
        )

    def peak_throughput(self, system_name: str, workload_name: str) -> float:
        """Saturation throughput (no throttle)."""
        system = self.systems[system_name]
        workload = WORKLOADS[workload_name]
        stations = self._stations(system, workload)
        x, _, _ = closed_mva(stations, self._mix(workload), self.params.client_threads, 0.0)
        return x

    def curve(self, system_name: str, workload_name: str,
              targets: list[float]) -> list[Optional[CurvePoint]]:
        """One figure series; crashed points are returned as None."""
        points: list[Optional[CurvePoint]] = []
        for target in targets:
            try:
                points.append(self.evaluate(system_name, workload_name, target))
            except ServerCrashed:
                points.append(None)
        return points

    def figure(self, workload_name: str, targets: list[float]) -> dict[str, list]:
        return {
            name: self.curve(name, workload_name, targets) for name in self.systems
        }

    # -- event-simulation cross-validation -----------------------------------------

    def sim_stations(self, system_name: str, workload_name: str,
                     scale: float = 0.02,
                     station_scales: dict | None = None):
        """Scaled-down event-sim stations plus the normalized op mix.

        The cluster is scaled by ``scale`` (server counts shrink, service
        times stay, so utilizations are preserved); ``station_scales`` maps
        station names to service-time multipliers (the what-if validation
        knob).  Returns ``(stations, mix)`` ready for
        :func:`repro.ycsb.eventsim.simulate_closed_loop` or
        :func:`~repro.ycsb.eventsim.simulate_open_loop`.
        """
        from repro.ycsb.eventsim import SimStation

        system = self.systems[system_name]
        workload = WORKLOADS[workload_name]
        mix = {c: f for c, f in self._mix(workload).items() if f > 0}
        total = sum(mix.values())
        mix = {c: f / total for c, f in mix.items()}

        stations = []
        for s in self._stations(system, workload):
            servers = max(1, round(s.servers * scale))
            service = {c: v for c, v in s.service.items() if v > 0 and c in mix}
            if station_scales and s.name in station_scales:
                factor = station_scales[s.name]
                service = {c: v * factor for c, v in service.items() if v * factor > 0}
            if service:
                stations.append(SimStation(s.name, servers, service))
        return stations, mix

    def event_sim_point(self, system_name: str, workload_name: str,
                        target: float, scale: float = 0.02,
                        duration: float = 120.0, seed: int = 1234,
                        tracer=None, metrics=None, sampler=None,
                        faults=None, retry_policy=None,
                        station_scales: dict | None = None,
                        live=None, bounded=False, prof=None):
        """Re-measure one figure point with the discrete-event simulator.

        The cluster and client population are scaled down by ``scale`` (the
        stations keep their service times, so utilizations are preserved),
        which keeps the event count tractable while validating the MVA
        numbers and producing the window-to-window standard errors the
        analytic model cannot.  Returns ``(CurvePoint, EventSimResult)``.

        ``tracer``/``metrics`` (see :mod:`repro.obs`) are forwarded to the
        event simulation: every completed request becomes a latency span and
        every station (cpu/disk/log/hotlock/...) emits hold and wait spans —
        which is how the workload A latency gap shows up as hot-lock waits.
        The cache model's verdict (miss rate, bytes fetched per miss — the
        8 KB-vs-32 KB differentiator) is recorded as gauges.

        ``station_scales`` maps station names to service-time multipliers
        (``{"hotlock": 0.5}`` halves the hot-lock demand).  It is the
        cost-model knob the what-if engine's predictions are validated
        against: exponential service draws scale linearly with their mean,
        so a scaled run consumes the identical RNG sequence.  ``None``
        leaves the code path (and output) byte-identical.
        """
        from repro.ycsb.eventsim import simulate_closed_loop

        point = self.evaluate(system_name, workload_name, target)
        system = self.systems[system_name]
        workload = WORKLOADS[workload_name]
        stations, mix = self.sim_stations(system_name, workload_name,
                                          scale=scale,
                                          station_scales=station_scales)
        clients = max(4, round(self.params.client_threads * scale))
        scaled_target = max(1.0, target * scale)
        # Think time from the response-time law at the scaled population.
        think = max(0.0, clients / scaled_target - point.latency.get("read", 0.001))
        if metrics:
            metrics.gauge("oltp.cache.miss_rate").set(
                self.miss_rate(system, workload)
            )
            metrics.gauge("oltp.cache.read_io_bytes").set(system.read_io_bytes)
            metrics.gauge("oltp.target").set(target)
            metrics.gauge("oltp.mva.achieved").set(point.achieved)
        sim = simulate_closed_loop(
            stations, mix, clients=clients, think_time=think,
            duration=duration, seed=seed,
            tracer=tracer, metrics=metrics, sampler=sampler,
            faults=faults, retry_policy=retry_policy,
            live=live, bounded=bounded, prof=prof,
        )
        if metrics:
            metrics.gauge("oltp.sim.throughput").set(sim.throughput)
        return point, sim

    # -- open-loop frontier (capacity planning beyond the paper's protocol) --------

    def open_loop_point(self, system_name: str, workload_name: str,
                        rate: float, scale: float = 1.0,
                        duration: float = 30.0, warmup: float = 5.0,
                        seed: int = 1234, workers: int | None = None,
                        tracer=None, metrics=None, sampler=None,
                        faults=None, retry_policy=None,
                        station_scales: dict | None = None,
                        live=None, bounded=False, prof=None,
                        overload=None):
        """Measure one *open-loop* point: Poisson arrivals at ``rate`` ops/s.

        ``rate`` is the cluster-scale target; arrivals and stations are both
        scaled down by ``scale``.  The default is the **full** cluster:
        unlike the closed-loop figures, a frontier run must saturate in the
        right place, and the bottlenecks here are serialization points (the
        global lock, the hot row, the group-committed log) whose one-server
        stations cannot shrink — ``scale < 1`` inflates their relative
        capacity and pushes the knee far past the real peak.  Use small
        scales only for latency shape, never for capacity.  ``workers``
        defaults to the paper's 800 client threads scaled — the finite
        dispatch pool whose slips the intended-start-time accounting
        charges back to the operations (no coordinated omission).  Returns
        the :class:`~repro.ycsb.eventsim.OpenLoopResult` with **unscaled**
        ``offered_rate``/``throughput`` so the numbers compose with the MVA
        figures.
        """
        from repro.ycsb.eventsim import simulate_open_loop

        stations, mix = self.sim_stations(system_name, workload_name,
                                          scale=scale,
                                          station_scales=station_scales)
        if workers is None:
            workers = max(4, round(self.params.client_threads * scale))
        scaled_rate = max(1e-9, rate * scale)
        if metrics:
            metrics.gauge("frontier.scale").set(scale)
            metrics.gauge("frontier.workers").set(workers)
        result = simulate_open_loop(
            stations, mix, rate=scaled_rate, workers=workers,
            duration=duration, warmup=warmup, seed=seed,
            tracer=tracer, metrics=metrics, sampler=sampler,
            faults=faults, retry_policy=retry_policy,
            live=live, bounded=bounded, prof=prof, overload=overload,
        )
        # Report at cluster scale: rates scale back up, latencies are
        # scale-invariant by construction.
        result.offered_rate = rate
        result.throughput = result.throughput / scale
        result.window_throughputs = [x / scale for x in result.window_throughputs]
        return result

    def frontier_report(self, systems=None, workloads=None, *,
                        slo_ms: float = 250.0, seed: int = 42,
                        scale: float = 1.0, measure_ops: int = 40000,
                        warmup_ops: int = 10000, min_window_s: float = 2.0,
                        concern: str | None = None, faults=None,
                        overload=None) -> dict:
        """Open-loop latency-throughput frontier (``repro-frontier/1``).

        Delegates to :func:`repro.ycsb.frontier.frontier_report`; see there
        for the sweep, the knee search, and the row fields.
        """
        from repro.ycsb.frontier import frontier_report

        return frontier_report(
            systems=systems, workloads=workloads, slo_ms=slo_ms, seed=seed,
            scale=scale, measure_ops=measure_ops, warmup_ops=warmup_ops,
            min_window_s=min_window_s, concern=concern, faults=faults,
            overload=overload,
            params=self.params, isolation=self.isolation,
        )

    def overload_report(self, policy=None, **kwargs) -> dict:
        """The metastable-failure demonstration (``repro-overload/1``).

        Delegates to :func:`repro.overload.report.overload_report`; see
        there for the scenario, the two arms, and the contrast verdict.
        """
        from repro.overload.report import overload_report

        return overload_report(policy, **kwargs)

    # Service stations that model a serialization point inside one process
    # rather than a pool of cluster hardware; the bottleneck report gives
    # each its own row with the mechanism it stands for.
    _LOCK_STATIONS = {
        "hotlock": ("mongod (hot shard)", "global-lock"),
        "hotrow": ("sql (hot row)", "row-lock"),
        "appendhot": ("append hot spot (last chunk)", "append-lock"),
    }

    def _attribute_point(self, system_name: str, workload_name: str,
                         target: float, utils: dict, source: str,
                         start: float = 0.0, end: float = 0.0) -> list:
        """Attributions from a station->busy-fraction map (MVA or measured)."""
        from repro.obs.bottleneck import Attribution, lock_band_note

        attributions = []
        shared = {k: v for k, v in utils.items() if k not in self._LOCK_STATIONS}
        if shared:
            top = max(sorted(shared), key=lambda k: shared[k])
            attributions.append(Attribution(
                phase=(f"{system_name} workload {workload_name} "
                       f"@ {target:g} ops/s [{source}]"),
                start=start, end=end,
                bottleneck=top, busy=shared[top],
                utilizations=dict(utils),
            ))
        for station, (phase, resource) in self._LOCK_STATIONS.items():
            if station not in utils:
                continue
            note = lock_band_note(utils[station]) if resource == "global-lock" else ""
            attributions.append(Attribution(
                phase=f"{phase} [{source}]", start=start, end=end,
                bottleneck=resource, busy=utils[station],
                utilizations={resource: utils[station]},
                note=note,
            ))
        return attributions

    def bottlenecks(self, system_name: str, workload_name: str, target: float,
                    sim: bool = False, duration: float = 30.0,
                    warmup: float = 10.0, seed: int = 1234,
                    interval: float = 0.5, scale: float = 1.0):
        """Bottleneck attributions for one figure point.

        Returns ``(CurvePoint, attributions, sampler)``.  By default the
        busy fractions come from the analytic MVA solution (cluster scale,
        instant).  With ``sim=True`` the point is re-measured on the event
        simulator with a :class:`~repro.obs.timeseries.UtilizationSampler`
        attached and the fractions are the post-warmup window means of the
        sampled station series — the full-scale (``scale=1.0``) default
        matters because capacity-1 serialization points such as the mongod
        global lock cannot be scaled down with the rest of the cluster.

        Either way, serialization-point stations (the global lock, the hot
        row, the append hot spot) get their own report rows; the global-lock
        row is annotated against the paper's 25-45%% mongostat band via
        :func:`repro.obs.bottleneck.lock_band_note`.

        Note the measured disk busy fraction excludes the deferred
        write-back traffic the MVA folds in as ``disk.background`` — the
        sim reports foreground service only, so its disk row reads lower
        than the analytic one by design.
        """
        point = self.evaluate(system_name, workload_name, target)
        if not sim:
            return point, self._attribute_point(
                system_name, workload_name, target, point.utilization, "mva"
            ), None
        from repro.obs.timeseries import UtilizationSampler

        sampler = UtilizationSampler(interval=interval)
        self.event_sim_point(
            system_name, workload_name, target, scale=scale,
            duration=duration, seed=seed, sampler=sampler,
        )
        measured = {
            s.node: s.window_mean(warmup, duration)
            for s in sampler.series(metric="busy")
        }
        attributions = self._attribute_point(
            system_name, workload_name, target, measured, "event-sim",
            start=warmup, end=duration,
        )
        return point, attributions, sampler

    # -- causal analysis: critical path & what-if ---------------------------------------

    def traced_point(self, system_name: str, workload_name: str, target: float,
                     scale: float = 0.02, duration: float = 120.0,
                     seed: int = 1234, station_scales: dict | None = None):
        """One event-sim point with a tracer attached.

        Returns ``(CurvePoint, EventSimResult, Tracer)`` — the raw material
        for critical-path extraction and what-if replay.
        """
        from repro.obs import Tracer

        tracer = Tracer()
        point, sim = self.event_sim_point(
            system_name, workload_name, target, scale=scale,
            duration=duration, seed=seed, tracer=tracer,
            station_scales=station_scales,
        )
        return point, sim, tracer

    def critical_path(self, system_name: str, workload_name: str, target: float,
                      scale: float = 0.02, duration: float = 120.0,
                      seed: int = 1234, warmup: float = 10.0):
        """Critical path of the slowest measured request at one figure point.

        An OLTP trace has no single query root, so the representative unit
        of work is the worst post-warmup request — the one whose station
        visits, lock waits and retries explain the latency tail.  Returns
        ``(CurvePoint, EventSimResult, Tracer, CriticalPath)``.
        """
        from repro.obs import critical_path as extract_path

        point, sim, tracer = self.traced_point(
            system_name, workload_name, target, scale=scale,
            duration=duration, seed=seed,
        )
        requests = [
            span for span in tracer.find(cat="request")
            if span.end >= warmup and not span.args.get("error")
        ]
        if not requests:
            raise WorkloadError(
                f"{system_name} workload {workload_name} @ {target:g}: "
                "no measured requests to extract a critical path from"
            )
        root = max(requests, key=lambda s: (s.duration, -s.span_id))
        return point, sim, tracer, extract_path(tracer, root=root)

    def whatif(self, system_name: str, workload_name: str, target: float,
               scales: dict, scale: float = 0.02, duration: float = 120.0,
               seed: int = 1234, warmup: float = 10.0):
        """What-if replay of one figure point with mechanisms scaled.

        ``scales`` comes from :func:`repro.obs.parse_whatif` (e.g.
        ``{"lock-wait": 0.5}``).  Returns ``(CurvePoint, EventSimResult,
        Tracer, WhatIfReport)``; the report's prediction is validated in the
        tests against re-running this simulator with the corresponding
        ``station_scales`` cost-model knob.
        """
        from repro.obs import oltp_whatif_report

        point, sim, tracer = self.traced_point(
            system_name, workload_name, target, scale=scale,
            duration=duration, seed=seed,
        )
        report = oltp_whatif_report(
            tracer, scales, warmup=warmup,
            target={"system": system_name, "workload": workload_name,
                    "target_ops": target},
        )
        return point, sim, tracer, report

    # -- replication & chaos (beyond the paper's bare deployments) ----------------------

    def availability_report(self, systems=None, concerns=None, *,
                            chaos=None, workload: str = "A",
                            shard_count: int = 4, record_count: int = 300,
                            operations: int = 500, replicas: int = 3,
                            seed: int = 11, replication=None,
                            tracer=None) -> dict:
        """Chaos-verified durability sweep (``repro-availability/1``).

        The paper ran MongoDB without replica sets and SQL Server without
        mirroring (§3.4.1), so a dead node simply took its key range down.
        This report measures the configurations the vendors actually ship:
        each (system, write-concern) cell runs the functional YCSB cluster
        under a seeded chaos schedule — member kills, partitions, lag
        spikes — and audits every *acknowledged* write after recovery.  The
        safety invariant: nothing acknowledged at ``journaled``/``majority``
        (or on a mirrored SQL Server) may be lost, ever; ``safe``-mode
        losses must sit inside the 100 ms journal flush window of a fault.

        Delegates to :func:`repro.faults.availability.availability_report`;
        see there for the row fields.
        """
        from repro.faults.availability import availability_report

        return availability_report(
            systems, concerns, chaos=chaos, workload=workload,
            shard_count=shard_count, record_count=record_count,
            operations=operations, replicas=replicas, seed=seed,
            replication=replication, tracer=tracer,
        )

    def live_report(self, system: str = "mongo-as", *,
                    concern="safe", workload: str = "A",
                    slo_rules="p99<=25ms@100ms,200ms",
                    slice_s: float = 0.1, chaos=None,
                    shard_count: int = 4, record_count: int = 300,
                    operations: int = 500, replicas: int = 3,
                    seed: int = 11, replication=None,
                    span_sample=None, prof=None) -> dict:
        """Watch one seeded chaos run live (``repro-live/1``).

        Runs a single (system, write-concern) chaos scenario — the same
        machinery as :meth:`availability_report` — with a
        :class:`~repro.obs.LiveTelemetry` collector attached: windowed
        latency digests, online multi-window burn-rate SLO evaluation on
        the virtual clock, and fault/election events noted for alert
        attribution.  A primary kill shows up as a burn-rate alert
        *attributed to the kill*, then clears after failover.

        ``slo_rules`` is the ``;``-separated grammar of
        :func:`repro.obs.parse_slo_rules` (or an already-parsed list);
        ``span_sample`` optionally attaches a tail-biased
        :class:`~repro.obs.SamplingTracer` (``RATE[,slow_ms=N]`` spec or a
        :class:`~repro.obs.SpanSamplePolicy`).  The defaults use short
        windows because the chaos runs live on a compressed virtual
        clock: ops take ~1 ms, elections ~250 ms.
        """
        from repro.faults.availability import availability_row
        from repro.faults.chaos import ChaosConfig
        from repro.obs import (
            LiveTelemetry,
            SamplingTracer,
            SpanSamplePolicy,
            build_live_report,
            parse_slo_rules,
        )
        from repro.replication.writeconcern import WriteConcern

        rules = (parse_slo_rules(slo_rules)
                 if isinstance(slo_rules, str) else list(slo_rules or []))
        if isinstance(chaos, str):
            chaos = ChaosConfig.parse(chaos)
        chaos = chaos or ChaosConfig()
        tracer = None
        if span_sample is not None:
            policy = (SpanSamplePolicy.parse(span_sample)
                      if isinstance(span_sample, str) else span_sample)
            tracer = SamplingTracer(policy)
        live = LiveTelemetry(slice_s=slice_s, rules=rules)
        concern_obj = None
        if system != "sql-cs":
            concern_obj = (WriteConcern.parse(concern)
                           if isinstance(concern, str) else concern)
        row = availability_row(
            system, concern_obj, chaos=chaos, workload=workload,
            shard_count=shard_count, record_count=record_count,
            operations=operations, replicas=replicas, seed=seed,
            replication=replication, tracer=tracer, live=live, prof=prof,
        )
        scenario = {
            "kind": "chaos",
            "system": system,
            "concern": row["concern"],
            "workload": workload,
            "operations": operations,
            "seed": seed,
            "chaos": chaos.spec_string(),
            "plan": row["plan"],
        }
        return build_live_report(live, scenario, sampler=tracer)

    # -- load phase (Section 3.4.2) -----------------------------------------------------

    def load_time_minutes(self, system_name: str, pre_split: bool = True) -> float:
        """Load 640M records; reproduces the 114 / 146 / 45 minute split.

        * Mongo-CS: batched inserts, CPU-bound across 128 mongods.
        * SQL-CS: one transaction per row — every insert forces the log.
        * Mongo-AS: Mongo-CS work plus mongos routing and (without the
          pre-split) chunk splits and balancer migrations.
        """
        p = self.params
        n = p.record_count
        if system_name == "sql-cs":
            # Log-force bound: ~1 ms per group commit, ~9 rows per group
            # (each insert is its own transaction, §3.4.2), one log disk
            # per node.
            per_insert = 0.001 / 9.1 / p.server_nodes
            return n * per_insert / 60.0
        if system_name == "mongo-cs":
            # Batched client inserts: ~0.35 ms of CPU per document across
            # 128 cores at ~65% efficiency.
            per_insert = 0.00035 / 0.65 / p.total_cores
            return n * per_insert / 60.0
        if system_name == "mongo-as":
            base = self.load_time_minutes("mongo-cs")
            routing = n * 0.0009 / p.total_cores / 60.0  # mongos + config hops
            if pre_split:
                return base + routing
            # Balancer-driven loading: roughly half the data is migrated
            # once; each migrated document goes through the normal insert
            # and delete paths (global write lock included), sustaining only
            # ~10 MB/s per node.
            migrated = 0.5 * p.dataset_bytes
            migration = migrated / (10e6 * p.server_nodes) / 60.0
            return base + routing + migration
        raise WorkloadError(f"unknown system {system_name!r}")

"""The DSS study: Hive vs PDW on TPC-H (Tables 2-5, Figure 1).

``DssStudy`` wires together the calibrated volumes, the two engine models,
and the paper's methodology:

* each query's per-row CPU weight is fitted **only at SF 250**; the other
  three scale factors are model predictions;
* Hive's Q9 at 16 TB is checked against HDFS capacity — with 3-way
  replicated intermediates it exceeds the cluster's 38.4 TB of raw disk,
  reproducing the paper's "did not complete due to lack of disk space";
* AM-9/GM-9 aggregate all queries but Q9, exactly as Table 3 does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.stats import arithmetic_mean, geometric_mean
from repro.core import paper_data
from repro.hive.engine import LZO_RATIO, HiveEngine
from repro.pdw.engine import PdwEngine
from repro.simcluster.profile import HardwareProfile, paper_testbed
from repro.tpch.plans import spec_for
from repro.tpch.queries import QUERY_NUMBERS
from repro.tpch.volumes import Calibration, calibrate

HDFS_REPLICATION = 3
FIT_SCALE_FACTOR = 250

# Queries whose HIVE-600 scripts are split into sub-queries that materialize
# temp tables (3-way replicated, alive until the script finishes).  The other
# queries run as one pipeline whose scratch is per-job shuffle spill only.
SPLIT_SCRIPT_QUERIES = frozenset({2, 9, 11, 15, 16, 18, 20, 21, 22})

# Column-pruning factor of each split script's temp tables relative to the
# kernel's fully-merged row widths.  Q9's script materializes the whole
# denormalized profit row (every joined column); Q21's temps are key-only
# projections; the rest keep roughly half the merged columns.
TEMP_WIDTH_FACTOR = {9: 1.0, 21: 0.12}
DEFAULT_TEMP_WIDTH_FACTOR = 0.5

# Map output carries only the columns later stages need.
SHUFFLE_PROJECTION = 0.5


def fit_weight(target: float, evaluate, lo: float = 0.05, hi: float = 25.0) -> float:
    """Solve ``evaluate(w) == target`` for the CPU weight by secant iteration.

    The cost models are monotone and near-linear in the weight, so a couple
    of secant steps from (1, 2) converge; the result is clamped to a sane
    range so a structurally-mismatched query cannot produce a absurd fit.
    """
    w1, w2 = 1.0, 2.0
    t1, t2 = evaluate(w1), evaluate(w2)
    for _ in range(4):
        if abs(t2 - t1) < 1e-9:
            break
        w = w2 + (target - t2) * (w2 - w1) / (t2 - t1)
        w = min(max(w, lo), hi)
        if abs(w - w2) < 1e-4:
            w2 = w
            break
        w1, t1 = w2, t2
        w2, t2 = w, evaluate(w)
    return w2


@dataclass
class QueryRow:
    """One row of the reproduced Table 3."""

    query: int
    hive: list  # seconds per SF; None = did not finish
    pdw: list

    @property
    def speedups(self) -> list:
        return [
            (h / p if h is not None else None) for h, p in zip(self.hive, self.pdw)
        ]

    def scaling(self, series: str) -> list:
        values = self.hive if series == "hive" else self.pdw
        factors = []
        for a, b in zip(values, values[1:]):
            factors.append(b / a if a is not None and b is not None else None)
        return factors


@dataclass
class Table3:
    """The full reproduced Table 3 with the paper's summary statistics."""

    scale_factors: tuple
    rows: list[QueryRow] = field(default_factory=list)

    def row(self, query: int) -> QueryRow:
        for r in self.rows:
            if r.query == query:
                return r
        raise KeyError(f"no row for query {query}")

    def _columns(self, series: str, exclude: tuple = ()) -> list[list[float]]:
        columns = []
        for i in range(len(self.scale_factors)):
            col = []
            for r in self.rows:
                if r.query in exclude:
                    continue
                value = (r.hive if series == "hive" else r.pdw)[i]
                if value is not None:
                    col.append(value)
            columns.append(col)
        return columns

    def am(self, series: str, exclude: tuple = ()) -> list[float]:
        return [arithmetic_mean(c) for c in self._columns(series, exclude)]

    def gm(self, series: str, exclude: tuple = ()) -> list[float]:
        return [geometric_mean(c) for c in self._columns(series, exclude)]

    def am9(self, series: str) -> list[float]:
        return self.am(series, exclude=(9,))

    def gm9(self, series: str) -> list[float]:
        return self.gm(series, exclude=(9,))


class DssStudy:
    """Reproduces the paper's Hive-vs-PDW evaluation end to end."""

    def __init__(
        self,
        profile: Optional[HardwareProfile] = None,
        calibration: Optional[Calibration] = None,
        calibration_sf: float = 0.01,
        seed: int = 42,
        fit: bool = True,
    ):
        self.profile = profile or paper_testbed()
        self.calibration = calibration or calibrate(calibration_sf, seed)
        self.hive_weights: dict[int, float] = {}
        self.pdw_weights: dict[int, float] = {}
        if fit:
            self._fit_weights()
        self.hive = HiveEngine(
            self.calibration, self.profile, cpu_weights=self.hive_weights
        )
        self.pdw = PdwEngine(
            self.calibration, self.profile, cpu_weights=self.pdw_weights
        )

    def _fit_weights(self) -> None:
        for number in QUERY_NUMBERS:
            hive_target = paper_data.hive_time(number, FIT_SCALE_FACTOR)
            pdw_target = paper_data.pdw_time(number, FIT_SCALE_FACTOR)

            def hive_eval(w, n=number):
                engine = HiveEngine(self.calibration, self.profile, cpu_weights={n: w})
                return engine.query_time(n, FIT_SCALE_FACTOR)

            def pdw_eval(w, n=number):
                engine = PdwEngine(self.calibration, self.profile, cpu_weights={n: w})
                return engine.query_time(n, FIT_SCALE_FACTOR)

            self.hive_weights[number] = fit_weight(hive_target, hive_eval)
            self.pdw_weights[number] = fit_weight(pdw_target, pdw_eval)

    # -- Hive disk-capacity check (Q9 at 16 TB) ---------------------------------

    def hive_scratch_bytes(self, number: int, scale_factor: float) -> float:
        """Peak scratch space a query demands while it runs.

        Split scripts hold all their temp tables (3x replicated) until the
        end; single-pipeline queries only ever hold one job's shuffle spill
        (map output on local disk plus the reducers' copy).
        """
        spec = spec_for(number)
        volumes = self.calibration.volumes
        stage_bytes = []
        for join in spec.effective_hive_joins():
            if join.out:
                stage_bytes.append(
                    volumes.bytes(join.out, scale_factor) * LZO_RATIO * SHUFFLE_PROJECTION
                )
        for agg in spec.aggs:
            if agg.out:
                stage_bytes.append(
                    volumes.bytes(agg.out, scale_factor) * LZO_RATIO * SHUFFLE_PROJECTION
                )
        if not stage_bytes:
            return 0.0
        if number in SPLIT_SCRIPT_QUERIES:
            width = TEMP_WIDTH_FACTOR.get(number, DEFAULT_TEMP_WIDTH_FACTOR)
            # Temp widths are relative to the merged rows, not the pruned
            # shuffle projection, so undo the shuffle projection first.
            return sum(stage_bytes) / SHUFFLE_PROJECTION * width * HDFS_REPLICATION
        return 2.0 * max(stage_bytes)

    def hive_free_capacity(self, scale_factor: float) -> float:
        """Raw disk left after the text staging copy and the RCFile tables."""
        base = scale_factor * 1e9  # text staging copy
        stored = (
            scale_factor * 1e9
            * self.hive.metastore.default_compression
            * HDFS_REPLICATION
        )
        return self.profile.cluster_disk_capacity - base - stored

    def hive_out_of_space(self, number: int, scale_factor: float) -> bool:
        demand = self.hive_scratch_bytes(number, scale_factor)
        return demand > self.hive_free_capacity(scale_factor)

    # -- query times -------------------------------------------------------------

    def hive_time(self, number: int, scale_factor: float) -> Optional[float]:
        if self.hive_out_of_space(number, scale_factor):
            return None
        return self.hive.query_time(number, scale_factor)

    def pdw_time(self, number: int, scale_factor: float) -> float:
        return self.pdw.query_time(number, scale_factor)

    def trace_query(self, number: int, scale_factor: float, engine: str = "hive",
                    tracer=None, metrics=None, sampler=None, prof=None):
        """Run one query with observability attached.

        Returns ``(result, tracer, metrics)``; fresh collectors are created
        when none are passed in (``sampler`` stays off unless supplied).
        The trace's root query span equals the reported query time exactly
        (spans are emitted after every cost adjustment), so exporters and
        the invariant suite can reconcile them; the sampler's series share
        the same cursor layout as the phase spans.  ``prof`` (a
        :class:`~repro.obs.prof.ProfiledRun`) charges the engine's host
        time to ``hive.query``/``pdw.query`` and its span construction to
        ``span.construct`` without touching the simulated result.
        """
        from repro.obs import MetricsRegistry, Tracer

        tracer = tracer if tracer is not None else Tracer()
        metrics = metrics if metrics is not None else MetricsRegistry()
        if engine == "hive":
            result = self.hive.run_query(
                number, scale_factor, tracer=tracer, metrics=metrics,
                sampler=sampler, prof=prof,
            )
        elif engine == "pdw":
            result = self.pdw.run_query(
                number, scale_factor, tracer=tracer, metrics=metrics,
                sampler=sampler, prof=prof,
            )
        else:
            raise ConfigurationError(f"unknown engine {engine!r}")
        metrics.gauge(f"dss.{engine}.q{number}.seconds").set(result.total_time)
        return result, tracer, metrics

    def bottleneck_report(self, number: int, scale_factor: float,
                          engine: str = "hive", interval: float = 1.0):
        """Per-phase bottleneck attributions for one query.

        Runs the query with both a tracer and a
        :class:`~repro.obs.timeseries.UtilizationSampler` attached, then
        intersects the busy series with the phase spans (Hive map/shuffle/
        reduce phases, PDW plan steps).  Returns
        ``(result, attributions, sampler, tracer)``.

        For Hive this mechanizes the paper's Section 4.3 argument: during a
        full map wave every task slot decodes RCFile at the CPU-bound scan
        rate (70 MB/s per node) while HDFS could deliver 400 MB/s, so the
        map phase attributes to ``cpu`` with disk far from saturated.
        """
        from dataclasses import replace as _replace

        from repro.common.units import MB
        from repro.obs import UtilizationSampler, attribute_phases

        sampler = UtilizationSampler(interval=interval)
        result, tracer, _ = self.trace_query(
            number, scale_factor, engine=engine, sampler=sampler
        )
        profile = self.hive.profile
        rcfile = profile.rcfile_scan_bandwidth / MB
        hdfs = profile.hdfs_seq_read_bandwidth / MB
        notes = {
            "cpu": (f"RCFile decode is CPU-bound at ~{rcfile:.0f} MB/s per "
                    f"node; HDFS could deliver {hdfs:.0f} MB/s (Section 4.3)")
            if engine == "hive" else "",
            "network": "shuffle/DMS traffic saturates the effective NIC share",
            "disk": "sequential scan bound by spindle bandwidth",
        }
        cat = "phase" if engine == "hive" else "step"
        # Phases shorter than one sampling bucket are below the series
        # resolution; attributing them would just echo neighbouring phases.
        attributions = attribute_phases(
            tracer, sampler, cat=cat, node=engine, notes=notes,
            min_duration=interval,
        )
        if engine == "hive":
            # The RCFile-decode note only explains *map* phases; a reduce
            # phase pegging its slots is agg/join work, not decode.
            attributions = [
                _replace(att, note="")
                if att.bottleneck == "cpu" and not att.phase.endswith(".map")
                else att
                for att in attributions
            ]
        return result, attributions, sampler, tracer

    # -- causal analysis: critical path, what-if, decomposition -------------------

    def critical_path(self, number: int, scale_factor: float,
                      engine: str = "hive"):
        """Critical path and per-span slack of one traced query.

        Returns ``(result, tracer, CriticalPath)``.  The path tiles the root
        query span exactly — every second of end-to-end time is claimed by a
        task chain, a shuffle barrier, a DSQL step or a container gap — and
        the slack map ranks what could slip without moving the finish line.
        """
        from repro.obs import critical_path as extract_path

        result, tracer, _ = self.trace_query(number, scale_factor, engine=engine)
        return result, tracer, extract_path(tracer)

    def whatif_query(self, number: int, scale_factor: float, scales: dict,
                     engine: str = "hive"):
        """What-if replay of one traced query with mechanisms scaled.

        ``scales`` comes from :func:`repro.obs.parse_whatif` (e.g.
        ``{"map-startup": 0.0}``).  Returns ``(result, tracer,
        WhatIfReport)``; the prediction is validated in the tests against
        re-running the engine with the corresponding cost-model parameter.
        """
        from repro.obs import dss_whatif_report

        result, tracer, _ = self.trace_query(number, scale_factor, engine=engine)
        report = dss_whatif_report(
            tracer, engine, scales,
            target={"query": number, "scale_factor": float(scale_factor)},
        )
        return result, tracer, report

    def decomposition(self, numbers, engines=("hive", "pdw"),
                      scale_factors=paper_data.SCALE_FACTORS):
        """Fixed-vs-variable overhead decomposition across scale factors.

        Traces every requested query at every SF, fits each phase to
        ``t = fixed + per_sf * sf``, and returns a
        :class:`~repro.obs.decompose.DecompositionReport` — the mechanical
        form of the paper's growth-factor table.  SFs a query cannot finish
        at (Hive out of scratch space, e.g. Q9 at 16 TB) are recorded as
        skipped rather than fitted.
        """
        from repro.obs import DecompositionReport, decompose_query

        report = DecompositionReport(sfs=[float(sf) for sf in scale_factors])
        for number in numbers:
            for engine in engines:
                runs = {}
                for sf in scale_factors:
                    sf = float(sf)
                    if engine == "hive" and self.hive_out_of_space(number, sf):
                        runs[sf] = None
                        continue
                    _, tracer, _ = self.trace_query(number, sf, engine=engine)
                    runs[sf] = tracer
                report.queries.append(decompose_query(engine, number, runs))
        return report

    # -- paper artifacts -----------------------------------------------------------

    def table3(self, scale_factors=paper_data.SCALE_FACTORS) -> Table3:
        table = Table3(scale_factors=tuple(scale_factors))
        for number in QUERY_NUMBERS:
            table.rows.append(
                QueryRow(
                    query=number,
                    hive=[self.hive_time(number, sf) for sf in scale_factors],
                    pdw=[self.pdw_time(number, sf) for sf in scale_factors],
                )
            )
        return table

    def table2(self, scale_factors=paper_data.SCALE_FACTORS) -> dict[str, list[float]]:
        """Load times in minutes, Hive and PDW."""
        return {
            "hive": [self.hive.load_time(sf) / 60.0 for sf in scale_factors],
            "pdw": [self.pdw.load_time(sf) / 60.0 for sf in scale_factors],
        }

    def figure1(self, table: Optional[Table3] = None) -> dict[str, list[float]]:
        """Normalized AM-9 and GM-9 series (normalized to PDW at SF 250)."""
        table = table or self.table3()
        hive_am, pdw_am = table.am9("hive"), table.am9("pdw")
        hive_gm, pdw_gm = table.gm9("hive"), table.gm9("pdw")
        return {
            "hive_am": [v / pdw_am[0] for v in hive_am],
            "pdw_am": [v / pdw_am[0] for v in pdw_am],
            "hive_gm": [v / pdw_gm[0] for v in hive_gm],
            "pdw_gm": [v / pdw_gm[0] for v in pdw_gm],
        }

    def table4(self, scale_factors=paper_data.SCALE_FACTORS) -> list[float]:
        """Q1's total map-phase time per scale factor."""
        times = []
        for sf in scale_factors:
            result = self.hive.run_query(1, sf)
            times.append(result.job("agg.q1.agg").map_time)
        return times

    def table5(self, scale_factors=paper_data.SCALE_FACTORS) -> dict[int, list[float]]:
        """Q22's four sub-query times per scale factor."""
        breakdown: dict[int, list[float]] = {1: [], 2: [], 3: [], 4: []}
        for sf in scale_factors:
            result = self.hive.run_query(22, sf)
            by_name = {j.name: j.total_time for j in result.jobs}

            def take(prefix_list):
                return sum(
                    t for n, t in by_name.items()
                    if any(n.startswith(p) for p in prefix_list)
                )

            breakdown[1].append(take(["mat.q22.candidates", "fs."]))
            breakdown[2].append(take(["agg.q22.avg"]))
            breakdown[3].append(take(["agg.q22.orders"]))
            breakdown[4].append(
                take(["join.q22.anti", "agg.q22.anti", "sort", "extra."])
            )
        return breakdown

"""Sensitivity analysis: how the paper's conclusions move with the hardware.

The paper benchmarked one cluster (2011-era disks, 1 GbE, 32 GB nodes) and
speculated about the future ("revisit the performance differences in a few
years").  This module sweeps hardware knobs through both studies and reports
how the headline metrics respond — which conclusions are robust and which
are artifacts of the testbed.

Swept metrics:

* DSS: the AM-9 Hive/PDW speedup at a scale factor;
* OLTP: each system's peak throughput on a workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigurationError
from repro.core.oltp import OltpParams, OltpStudy
from repro.simcluster.profile import paper_testbed


@dataclass(frozen=True)
class SweepPoint:
    """One knob setting and the metrics measured there."""

    value: float
    metrics: dict


@dataclass
class SweepResult:
    knob: str
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, metric: str) -> list[tuple[float, float]]:
        return [(p.value, p.metrics[metric]) for p in self.points]

    def direction(self, metric: str) -> str:
        """'increasing', 'decreasing', or 'mixed' across the sweep."""
        values = [p.metrics[metric] for p in self.points]
        if all(b >= a for a, b in zip(values, values[1:])):
            return "increasing"
        if all(b <= a for a, b in zip(values, values[1:])):
            return "decreasing"
        return "mixed"


# -- DSS sweeps ---------------------------------------------------------------------


def sweep_dss_speedup(
    knob: str,
    values: list[float],
    scale_factor: int = 4000,
    calibration=None,
) -> SweepResult:
    """Sweep one HardwareProfile field; metric: AM-9 Hive/PDW speedup.

    The per-query CPU weights are fitted once on the paper's testbed and
    held fixed, so the sweep isolates the hardware effect.
    """
    from repro.core.dss import DssStudy
    from repro.hive.engine import HiveEngine
    from repro.pdw.engine import PdwEngine
    from repro.tpch.queries import QUERY_NUMBERS
    from repro.tpch.volumes import calibrate

    if not values:
        raise ConfigurationError("need at least one knob value")
    calibration = calibration or calibrate(0.01, 42)
    baseline = DssStudy(calibration=calibration)

    result = SweepResult(knob=knob)
    for value in values:
        profile = paper_testbed().with_(**{knob: value})
        hive = HiveEngine(calibration, profile, cpu_weights=baseline.hive_weights)
        pdw = PdwEngine(calibration, profile, cpu_weights=baseline.pdw_weights)
        hive_times, pdw_times = [], []
        for number in QUERY_NUMBERS:
            if number == 9:
                continue
            hive_times.append(hive.query_time(number, scale_factor))
            pdw_times.append(pdw.query_time(number, scale_factor))
        speedup = sum(hive_times) / sum(pdw_times)
        result.points.append(
            SweepPoint(
                value=value,
                metrics={
                    "speedup": speedup,
                    "hive_am": sum(hive_times) / len(hive_times),
                    "pdw_am": sum(pdw_times) / len(pdw_times),
                },
            )
        )
    return result


# -- OLTP sweeps --------------------------------------------------------------------


def sweep_oltp_peaks(
    knob: str,
    values: list[float],
    workload: str = "C",
) -> SweepResult:
    """Sweep one OltpParams field; metrics: per-system peak throughput."""
    if not values:
        raise ConfigurationError("need at least one knob value")
    result = SweepResult(knob=knob)
    for value in values:
        params = replace(OltpParams(), **{knob: value})
        study = OltpStudy(params)
        metrics = {
            name: study.peak_throughput(name, workload)
            for name in ("sql-cs", "mongo-as", "mongo-cs")
        }
        metrics["sql_advantage"] = metrics["sql-cs"] / metrics["mongo-as"]
        result.points.append(SweepPoint(value=value, metrics=metrics))
    return result


def render_sweep(result: SweepResult, metrics: list[str]) -> str:
    """Tabular rendering of a sweep."""
    header = f"{result.knob:>24} " + "".join(f"{m:>16}" for m in metrics)
    lines = [header]
    for point in result.points:
        cells = "".join(f"{point.metrics[m]:>16,.2f}" for m in metrics)
        lines.append(f"{point.value:>24,.3g} " + cells)
    for metric in metrics:
        lines.append(f"  {metric}: {result.direction(metric)} in {result.knob}")
    return "\n".join(lines)

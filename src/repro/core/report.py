"""Renders study results in the shape of the paper's tables and figures.

Each ``render_*`` function returns a plain-text block whose rows/series match
the corresponding artifact in the paper, with the published values printed
alongside for comparison.  The benchmark harness writes these to stdout so
``pytest benchmarks/`` regenerates every table and figure in one run.
"""

from __future__ import annotations

from typing import Optional

from repro.core import paper_data
from repro.core.dss import DssStudy, Table3
from repro.core.oltp import OltpStudy


def _fmt(value: Optional[float], width: int = 7) -> str:
    if value is None:
        return "--".rjust(width)
    if value >= 100:
        return f"{value:,.0f}".rjust(width)
    return f"{value:.1f}".rjust(width)


def render_table2(study: DssStudy) -> str:
    """Table 2: load times (minutes) for Hive and PDW at the four SFs."""
    model = study.table2()
    lines = ["Table 2. Load times for Hive and PDW (minutes, model/paper)",
             "         " + "".join(f"{sf:>16}" for sf in paper_data.SCALE_FACTORS)]
    for name in ("hive", "pdw"):
        cells = []
        for i, sf in enumerate(paper_data.SCALE_FACTORS):
            cells.append(f"{model[name][i]:>8.0f}/{paper_data.LOAD_TIMES_MIN[name][i]:<6}")
        lines.append(f"{name.upper():8} " + "".join(f"{c:>16}" for c in cells))
    return "\n".join(lines)


def render_table3(table: Table3) -> str:
    """Table 3: per-query Hive/PDW times, speedups, and summary means."""
    header = (
        f"{'Q':>3} "
        + "".join(f"{'H' + str(sf):>9}{'P' + str(sf):>8}{'spd':>6}" for sf in table.scale_factors)
    )
    lines = ["Table 3. TPC-H query times (seconds) and PDW speedup", header]
    for row in table.rows:
        cells = []
        for h, p, s in zip(row.hive, row.pdw, row.speedups):
            cells.append(
                ("--".rjust(9) if h is None else f"{h:9,.0f}")
                + f"{p:8,.0f}"
                + ("--".rjust(6) if s is None else f"{s:6.1f}")
            )
        lines.append(f"Q{row.query:<2} " + "".join(cells))

    summaries = (
        ("AM-9", table.am9("hive"), table.am9("pdw")),
        ("GM-9", table.gm9("hive"), table.gm9("pdw")),
    )
    for label, hive_vals, pdw_vals in summaries:
        cells = "".join(
            f"{h:9,.0f}{p:8,.0f}{h / p:6.1f}" for h, p in zip(hive_vals, pdw_vals)
        )
        lines.append(f"{label:>3} " + cells)
    return "\n".join(lines)


def render_figure1(study: DssStudy, table: Optional[Table3] = None) -> str:
    """Figure 1: normalized AM/GM series (normalized to PDW at SF 250)."""
    fig = study.figure1(table)
    paper = {
        "hive_am": (22, 48, 148, 500),
        "pdw_am": (1, 4, 17, 72),
        "hive_gm": (26, 52, 144, 474),
        "pdw_gm": (1, 5, 18, 72),
    }
    lines = ["Figure 1. Normalized means (model/paper), normalized to PDW@250",
             "            " + "".join(f"{sf:>14}" for sf in paper_data.SCALE_FACTORS)]
    for series, values in fig.items():
        cells = [f"{v:>7.0f}/{p:<5}" for v, p in zip(values, paper[series])]
        lines.append(f"{series:>10}  " + "".join(f"{c:>14}" for c in cells))
    return "\n".join(lines)


def render_table4(study: DssStudy) -> str:
    times = study.table4()
    lines = ["Table 4. Total map-phase time for Query 1 (seconds, model/paper)"]
    cells = [
        f"{t:>8.0f}/{p:<6}" for t, p in zip(times, paper_data.Q1_MAP_PHASE_SEC)
    ]
    lines.append("   " + "".join(f"{c:>16}" for c in cells))
    return "\n".join(lines)


def render_table5(study: DssStudy) -> str:
    breakdown = study.table5()
    lines = ["Table 5. Q22 sub-query breakdown (seconds, model/paper)",
             "            " + "".join(f"{sf:>16}" for sf in paper_data.SCALE_FACTORS)]
    for sub in (1, 2, 3, 4):
        cells = [
            f"{t:>8.0f}/{p:<6}"
            for t, p in zip(breakdown[sub], paper_data.Q22_SUBQUERY_SEC[sub])
        ]
        lines.append(f"Sub-query {sub} " + "".join(f"{c:>16}" for c in cells))
    return "\n".join(lines)


def render_ycsb_figure(
    study: OltpStudy,
    workload: str,
    targets: list[float],
    op_classes: list[str],
) -> str:
    """Figures 2-6: latency-vs-throughput series for the three systems."""
    lines = [f"Figure: YCSB workload {workload} "
             f"({', '.join(op_classes)} latency, ms, at achieved kops/s)"]
    figure = study.figure(workload, targets)
    header = f"{'system':>9} " + "".join(f"{t / 1000:>13.0f}k" for t in targets)
    lines.append(header)
    for op_class in op_classes:
        lines.append(f"-- {op_class} latency --")
        for system, points in figure.items():
            cells = []
            for point in points:
                if point is None:
                    cells.append("CRASH".rjust(14))
                elif op_class not in point.latency:
                    cells.append("-".rjust(14))
                else:
                    cells.append(
                        f"{point.achieved / 1000:6.1f}k/{point.latency_ms(op_class):6.1f}"
                    )
            lines.append(f"{system:>9} " + "".join(cells))
    return "\n".join(lines)


def render_oltp_load_times(study: OltpStudy) -> str:
    lines = ["YCSB load phase (minutes, model/paper)"]
    for system, paper_minutes in (("mongo-as", 114), ("sql-cs", 146), ("mongo-cs", 45)):
        model = study.load_time_minutes(system)
        lines.append(f"  {system:>9}: {model:6.0f} / {paper_minutes}")
    no_split = study.load_time_minutes("mongo-as", pre_split=False)
    lines.append(f"  mongo-as without pre-split chunks: {no_split:.0f} min")
    return "\n".join(lines)

"""EXPLAIN-style renderings of the engine models' physical plans.

``explain_pdw`` prints a DSQL-plan-like step list (scan / shuffle /
replicate / local join, with DMS volumes), and ``explain_hive`` prints the
MR job chain (map tasks and waves, shuffle volumes, join strategies,
map-join failures).  These are the textual counterparts of the plan
narratives in the paper's Section 3.3.4.1.
"""

from __future__ import annotations

from repro.common.units import fmt_bytes, fmt_seconds
from repro.hive.engine import HiveQueryResult
from repro.pdw.engine import PdwQueryResult


def explain_pdw(result: PdwQueryResult) -> str:
    """Render a PDW plan the way the appliance's EXPLAIN would."""
    lines = [
        f"PDW plan for Q{result.number} at SF {result.scale_factor:g} "
        f"(total {fmt_seconds(result.total_time)})"
    ]
    for i, step in enumerate(result.steps, start=1):
        timing = (
            f"io={step.io_time:.1f}s cpu={step.cpu_time:.1f}s "
            f"net={step.net_time:.1f}s"
        )
        lines.append(f"  {i:>2}. [{step.kind:<14}] {step.name:<24} {timing}")
        if step.moved_bytes > 0:
            lines.append(
                f"       DMS moved {fmt_bytes(step.moved_bytes)}"
                + (f" — {step.note}" if step.note else "")
            )
        elif step.note:
            lines.append(f"       {step.note}")
    lines.append(
        f"  total network traffic: {fmt_bytes(result.network_bytes)}"
    )
    return "\n".join(lines)


def explain_hive(result: HiveQueryResult) -> str:
    """Render the MR job DAG Hive would submit, with per-phase timing."""
    lines = [
        f"Hive plan for Q{result.number} at SF {result.scale_factor:g} "
        f"(total {fmt_seconds(result.total_time)}, {len(result.jobs)} MR jobs)"
    ]
    for i, job in enumerate(result.jobs, start=1):
        lines.append(
            f"  {i:>2}. {job.name:<28} "
            f"map={job.map_time:8.1f}s shuffle={job.shuffle_time:7.1f}s "
            f"reduce={job.reduce_time:7.1f}s"
        )
        details = []
        if job.map_tasks:
            details.append(f"{job.map_tasks} map tasks in {job.map_waves} wave(s)")
        if job.reduce_tasks:
            details.append(f"{job.reduce_tasks} reducers")
        if job.failed_mapjoin:
            details.append("MAP JOIN FAILED -> backup common join")
        details.extend(job.notes)
        if details:
            lines.append(f"       {'; '.join(details)}")
    return "\n".join(lines)


def explain_query(number: int, scale_factor: float, calibration=None) -> str:
    """Both engines' plans for one query, side by side."""
    from repro.hive.engine import HiveEngine
    from repro.pdw.engine import PdwEngine
    from repro.tpch.volumes import calibrate

    calibration = calibration or calibrate(0.01, 42)
    hive = HiveEngine(calibration).run_query(number, scale_factor)
    pdw = PdwEngine(calibration).run_query(number, scale_factor)
    return explain_hive(hive) + "\n\n" + explain_pdw(pdw)

"""ASCII renderings of the paper's figures for terminal output.

``plot_xy`` draws latency-vs-throughput curves (Figures 2-6) and
``plot_bars`` draws grouped bars (Figure 1) using plain characters, so the
CLI and the benchmark artifacts can show *shapes*, not just tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError

_MARKERS = "ox+*#@"


@dataclass(frozen=True)
class Series:
    """One plotted line: a label plus (x, y) points (None = absent/crash)."""

    label: str
    points: tuple

    @staticmethod
    def of(label: str, points) -> "Series":
        return Series(label, tuple(points))


def plot_xy(
    series: list[Series],
    width: int = 64,
    height: int = 16,
    x_label: str = "throughput",
    y_label: str = "latency",
    title: str = "",
) -> str:
    """Scatter/line plot on a character grid, linear axes."""
    if not series:
        raise ConfigurationError("nothing to plot")
    xs = [p[0] for s in series for p in s.points if p is not None]
    ys = [p[1] for s in series for p in s.points if p is not None]
    if not xs:
        raise ConfigurationError("all points are absent")
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = 0.0, max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, s in enumerate(series):
        marker = _MARKERS[index % len(_MARKERS)]
        for point in s.points:
            if point is None:
                continue
            x, y = point
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (max {y_max:,.1f})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:,.0f} .. {x_max:,.0f}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={s.label}" for i, s in enumerate(series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def plot_bars(
    groups: list[str],
    series: dict[str, list[float]],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal grouped bars (used for the Figure 1 normalized means)."""
    if not series:
        raise ConfigurationError("nothing to plot")
    for label, values in series.items():
        if len(values) != len(groups):
            raise ConfigurationError(f"series {label!r} has wrong length")
    peak = max(v for values in series.values() for v in values) or 1.0
    lines = [title] if title else []
    label_width = max(len(label) for label in series)
    for gi, group in enumerate(groups):
        lines.append(f"{group}:")
        for label, values in series.items():
            bar = "#" * max(1, int(values[gi] / peak * width))
            lines.append(f"  {label:>{label_width}} {bar} {values[gi]:,.1f}")
    return "\n".join(lines)


def figure_to_ascii(figure: dict, op_class: str, title: str = "") -> str:
    """Convert an OltpStudy.figure() result into an ASCII latency plot."""
    series = []
    for system, points in figure.items():
        pts = []
        for point in points:
            if point is None or op_class not in point.latency:
                pts.append(None)
            else:
                pts.append((point.achieved, point.latency_ms(op_class)))
        series.append(Series.of(system, pts))
    return plot_xy(
        series,
        x_label="achieved ops/s",
        y_label=f"{op_class} latency ms",
        title=title,
    )

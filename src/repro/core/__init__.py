"""The paper's study harness: DSS (Hive vs PDW) and OLTP (YCSB) studies."""

from repro.core.dss import DssStudy, QueryRow, Table3, fit_weight
from repro.core.scorecard import Scorecard, build_scorecard
from repro.core.sensitivity import sweep_dss_speedup, sweep_oltp_peaks
from repro.core.oltp import (
    SYSTEMS,
    CurvePoint,
    OltpParams,
    OltpStudy,
    SystemModel,
    closed_mva,
)
from repro.core.explain import explain_hive, explain_pdw, explain_query
from repro.core.figures import Series, figure_to_ascii, plot_bars, plot_xy
from repro.core.report import (
    render_figure1,
    render_oltp_load_times,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_ycsb_figure,
)

__all__ = [
    "DssStudy",
    "Scorecard",
    "build_scorecard",
    "sweep_dss_speedup",
    "sweep_oltp_peaks",
    "explain_hive",
    "explain_pdw",
    "explain_query",
    "Series",
    "figure_to_ascii",
    "plot_bars",
    "plot_xy",
    "QueryRow",
    "Table3",
    "fit_weight",
    "SYSTEMS",
    "CurvePoint",
    "OltpParams",
    "OltpStudy",
    "SystemModel",
    "closed_mva",
    "render_figure1",
    "render_oltp_load_times",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_ycsb_figure",
]

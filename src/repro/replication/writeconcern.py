"""The write-concern spectrum the paper collapsed to a single point.

Section 3.4.1: "For our experiments, we elected to run MongoDB without
logging" — i.e. the paper benchmarked exactly one durability configuration
(safe-mode acks, journal off, no replica sets).  This module makes that
choice one point on a measurable spectrum:

* ``unacked``   — fire-and-forget (``w=0``): no server round trip at all;
* ``safe``      — ``getLastError`` w=1, no journal ack: the paper's config.
  The ack races the 100 ms journal flush, so a crash can lose up to one
  flush window of acknowledged writes;
* ``journaled`` — ``j:1``: the ack waits for the journal's group flush.
  Nothing acknowledged is ever lost to a crash, at the cost of up to one
  flush interval of added write latency;
* ``replicated``— ``w=N`` / ``w=majority`` (with ``j:1`` on the ack set,
  today's defaults): the ack additionally waits for N members to have the
  write durable, surviving failovers as well as crashes.

Parsed from the CLI as ``unacked | safe | journaled | majority | w:N``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError

#: Worst-case age (seconds) of an acknowledged-but-lost write at ``safe``.
JOURNAL_LOSS_WINDOW = 0.1


@dataclass(frozen=True)
class WriteConcern:
    """One point on the durability spectrum.

    ``w`` is the number of members that must hold the write before the ack
    (0 = fire and forget, 1 = primary only); ``majority`` makes ``w`` a
    function of the replica-set size; ``journal`` means those members must
    have it *durable* (journal-flushed), not just applied in memory.
    """

    name: str
    w: int = 1
    majority: bool = False
    journal: bool = False

    def __post_init__(self):
        if self.w < 0:
            raise ConfigurationError(f"write concern needs w >= 0, got {self.w}")
        if self.majority and self.w > 1:
            raise ConfigurationError("write concern is majority or w=N, not both")

    def required_members(self, member_count: int) -> int:
        """How many members must hold the write for a set of this size."""
        if self.majority:
            return member_count // 2 + 1
        return min(self.w, member_count)

    @property
    def acked(self) -> bool:
        return self.w > 0 or self.majority

    @property
    def durable_on_crash(self) -> bool:
        """An acked write survives any crash of the members that acked it."""
        return self.journal

    @property
    def loss_window(self) -> float:
        """Worst-case seconds of acked writes one crash can lose."""
        return 0.0 if self.journal else JOURNAL_LOSS_WINDOW

    def spec_string(self) -> str:
        return self.name

    @classmethod
    def parse(cls, text: str) -> "WriteConcern":
        """Parse a CLI concern name; raises ConfigurationError on bad input."""
        spec = text.strip().lower()
        if spec in CONCERNS:
            return CONCERNS[spec]
        if spec.startswith("w:"):
            try:
                w = int(spec[2:])
            except ValueError:
                raise ConfigurationError(
                    f"malformed write concern {text!r}: expected w:<count>"
                ) from None
            if w < 2:
                raise ConfigurationError(
                    f"w:{w} is not a replication concern; use unacked/safe/"
                    "journaled for w<=1"
                )
            return cls(name=spec, w=w, journal=True)
        raise ConfigurationError(
            f"unknown write concern {text!r}; expected one of "
            f"{', '.join(CONCERNS)} or w:N"
        )


UNACKED = WriteConcern(name="unacked", w=0)
SAFE = WriteConcern(name="safe", w=1)
JOURNALED = WriteConcern(name="journaled", w=1, journal=True)
MAJORITY = WriteConcern(name="majority", w=1, majority=True, journal=True)
#: ``replicated`` is an alias for the modern default, w=majority with j:1.
CONCERNS: dict[str, WriteConcern] = {
    "unacked": UNACKED,
    "safe": SAFE,
    "journaled": JOURNALED,
    "majority": MAJORITY,
    "replicated": MAJORITY,
}

#: The sweep order availability reports use (weakest to strongest).
SPECTRUM = (UNACKED, SAFE, JOURNALED, MAJORITY)


def parse_concern_list(text: str) -> list[WriteConcern]:
    """Parse ``"safe,journaled,majority"`` (or ``"all"``) into concerns."""
    if text.strip().lower() == "all":
        return list(SPECTRUM)
    concerns: list[WriteConcern] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        concern = WriteConcern.parse(chunk)
        if concern not in concerns:
            concerns.append(concern)
    if not concerns:
        raise ConfigurationError("empty write-concern list")
    return concerns

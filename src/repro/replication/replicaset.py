"""Mongo replica sets on the virtual clock: oplog, elections, failover.

The paper ran every mongod bare (§3.4.1: no journaling, no replica sets), so
PR 3's fault layer could only show the fragile baseline — a dead shard is
simply gone until the client gives up.  This module adds the production
counterpart: a :class:`ReplicaSet` of journaled mongods where the primary
ships an oplog to secondaries with configurable lag, a seeded election
replaces a dead primary after an election timeout, and the write-concern
spectrum (:mod:`repro.replication.writeconcern`) decides how much of that
pipeline an acknowledgement waits for.

Everything runs on the caller's logical clock: the YCSB runner advances time
op by op and calls :meth:`ReplicaSet.tick`, which (in order) delivers due
oplog entries to secondaries, offers each member's journal its group flush,
and runs an election if the primary has been unreachable past the timeout.
That deliver-then-flush-then-fault ordering is what makes the acknowledged
write safety invariant checkable: by the time a kill fires at time ``t``,
every write whose analytic ack time was ``<= t`` really is as durable as its
concern promised.

Failure semantics (the part chaos tests lean on):

* **kill** — the process dies; the journal keeps only its flushed prefix,
  the member's applied history is truncated to match (safe-mode writes
  inside the 100 ms window are the casualties, exactly as in
  ``docstore/journal.py``).
* **election** — needs a quorum of reachable members; the winner is the
  reachable member with the longest applied history (seeded tie-break).
  Oplog entries beyond the winner's history are *rolled back*.
* **rollback files** — a rolled-back entry that some member still holds
  durably is re-applied through the new primary once that member comes back
  (MongoDB's "operator re-applies the rollback files" procedure), so
  journaled/replicated acks survive failover chains end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigurationError, ReplicaSetUnavailable
from repro.common.rng import SeedStream
from repro.docstore import bson
from repro.docstore.journal import FLUSH_INTERVAL, Journal, JournalOp
from repro.docstore.mongod import Mongod
from repro.replication.writeconcern import SAFE, WriteConcern

#: Default one-way replication lag, primary -> secondary (seconds).
DEFAULT_LAG = 0.05
#: How long the primary must be unreachable before an election runs.
DEFAULT_ELECTION_TIMEOUT = 0.25


@dataclass(frozen=True)
class OplogEntry:
    """One replicated write, stamped with the primary's clock and term."""

    seq: int
    term: int
    time: float
    op: JournalOp
    collection: str
    key: str
    document: bytes | None = None  # full after-image (None for removes)
    fieldname: str | None = None   # set for updates
    value: object = None
    orig_seq: int = 0  # original seq for rollback-file re-applications

    @property
    def origin(self) -> int:
        """The seq that identifies this write across re-applications."""
        return self.orig_seq or self.seq


@dataclass
class LastWrite:
    """What the runner's acknowledged-write ledger records per write."""

    seq: int
    op: str
    collection: str
    key: str
    fieldname: str | None
    value: object
    write_time: float
    ack_time: float
    concern: str


@dataclass
class RolledBack:
    """A write removed from the official history by a failover."""

    entry: OplogEntry
    lost_at: float      # when the member holding it became unreachable
    recovered: bool = False


class ReplicaMember:
    """One mongod in a replica set: process + journal + applied history."""

    def __init__(self, name: str, lag: float, flush_interval: float):
        self.name = name
        self.base_lag = lag
        self.mongod = Mongod(name)
        self.journal = Journal(flush_interval=flush_interval)
        self.flush_interval = flush_interval
        self.applied: list[int] = []  # oplog seqs, in application order
        self.alive = True
        self.partitioned = False
        self.killed_at: float | None = None
        self.lag_factor = 1.0
        self.lag_until = 0.0

    @property
    def reachable(self) -> bool:
        return self.alive and not self.partitioned

    @property
    def applied_seq(self) -> int:
        return self.applied[-1] if self.applied else 0

    def effective_lag(self, now: float) -> float:
        if now < self.lag_until:
            return self.base_lag * self.lag_factor
        return self.base_lag

    # -- state machine -----------------------------------------------------------

    def apply(self, entry: OplogEntry, now: float) -> None:
        """Journal the entry (write-ahead) then apply it to the mongod."""
        self.journal.append(
            max(now, self.journal._last_flush_time), entry.op,
            entry.collection, entry.key, entry.document,
        )
        if entry.op is JournalOp.INSERT:
            if self.mongod.find_one(entry.collection, entry.key) is None:
                self.mongod.insert(entry.collection, bson.decode(entry.document))
        elif entry.op is JournalOp.UPDATE:
            if not self.mongod.update(
                entry.collection, entry.key, entry.fieldname, entry.value
            ):
                # The base insert is always earlier in the same history, but
                # be robust: fall back to the full after-image.
                self.mongod.insert(entry.collection, bson.decode(entry.document))
        else:
            self.mongod.remove(entry.collection, entry.key)
        self.applied.append(entry.seq)

    def kill(self, now: float) -> None:
        """Process death: unflushed journal tail (and its writes) are gone."""
        if not self.alive:
            return
        self.alive = False
        self.killed_at = now
        self.journal.crash()
        self.applied = self.applied[: self.journal.durable_sequence]
        self.mongod.kill()

    def rebuild(self, entries: list[OplogEntry], now: float) -> None:
        """Resync from scratch: fresh process + journal holding ``entries``."""
        self.mongod = Mongod(self.name)
        self.journal = Journal(flush_interval=self.flush_interval)
        self.applied = []
        self.alive = True
        for entry in entries:
            self.apply(entry, now)
        self.journal.flush(now)


class ReplicaSet:
    """A primary/secondary mongod group with a Mongod-compatible surface.

    Presents the same op methods as a bare :class:`Mongod` (``insert``,
    ``find_one``, ``update``, ``scan``, ``remove``, ``collection``, ``kill``,
    ``restart``) so the existing Mongo-AS/Mongo-CS clusters can swap one in
    per shard.  Additionally exposes the replication-only controls the chaos
    harness drives: ``tick``, ``kill_member``/``restart_member``,
    ``partition_member``/``heal_member``, ``lag_spike``, and the
    acknowledged-write bookkeeping (``take_last_write``,
    ``consume_ack_delay``, ``rolled_back``).
    """

    def __init__(
        self,
        name: str,
        members: int = 3,
        *,
        lag: float = DEFAULT_LAG,
        election_timeout: float = DEFAULT_ELECTION_TIMEOUT,
        flush_interval: float = FLUSH_INTERVAL,
        concern: WriteConcern = SAFE,
        seed: int = 0,
        tracer=None,
    ):
        if members < 1:
            raise ConfigurationError("replica set needs at least 1 member")
        if lag < 0 or election_timeout <= 0:
            raise ConfigurationError(
                "replica set needs lag >= 0 and election_timeout > 0"
            )
        self.name = name
        self.members = [
            ReplicaMember(f"{name}.m{i}", lag, flush_interval)
            for i in range(members)
        ]
        self.primary_index: Optional[int] = 0
        self.term = 1
        self.election_timeout = election_timeout
        self.concern = concern
        self.tracer = tracer
        self.now = 0.0
        self._rng = SeedStream(seed).rng_for("replicaset", name)
        self.oplog: list[OplogEntry] = []
        self._next_seq = 1
        self.rolled_back: list[RolledBack] = []
        self._recovery_queue: list[OplogEntry] = []
        self.elections = 0
        self.stale_reads = 0
        self.downtime: list[tuple[float, float]] = []
        self._down_since: Optional[float] = None
        self.last_failover: Optional[tuple[float, float, int]] = None
        self._last_ack_delay = 0.0
        self._last_write: Optional[LastWrite] = None

    # -- helpers -----------------------------------------------------------------

    def _primary(self) -> Optional[ReplicaMember]:
        if self.primary_index is None:
            return None
        return self.members[self.primary_index]

    def _require_primary(self) -> ReplicaMember:
        primary = self._primary()
        if primary is None or not primary.reachable:
            raise ReplicaSetUnavailable(
                f"replica set {self.name} has no reachable primary"
            )
        return primary

    @property
    def quorum(self) -> int:
        return len(self.members) // 2 + 1

    @property
    def alive(self) -> bool:
        primary = self._primary()
        return primary is not None and primary.reachable

    def _oplog_seqs(self) -> set[int]:
        return {entry.seq for entry in self.oplog}

    def _entries_for(self, seqs: list[int]) -> list[OplogEntry]:
        by_seq = {entry.seq: entry for entry in self.oplog}
        return [by_seq[s] for s in seqs if s in by_seq]

    def _current_max_origin(self, collection: str, key,
                            fieldname: str | None = None) -> int:
        """Latest surviving write (by origin seq) touching this key/field."""
        latest = 0
        for entry in self.oplog:
            if entry.collection != collection or entry.key != key:
                continue
            if (
                fieldname is None
                or entry.fieldname is None
                or entry.fieldname == fieldname
                or entry.op is not JournalOp.UPDATE
            ):
                latest = max(latest, entry.origin)
        return latest

    # -- the clock ---------------------------------------------------------------

    def tick(self, now: float) -> None:
        """Advance to ``now``: ship oplog, flush journals, maybe elect."""
        if now < self.now:
            return
        self.now = now
        self._deliver(now)
        for member in self.members:
            if member.alive:
                member.journal.maybe_flush(now)
        primary = self._primary()
        if primary is None or not primary.reachable:
            if self._down_since is None:
                self._down_since = now
            if now - self._down_since >= self.election_timeout:
                self._elect(now)
        self._drain_recovery_queue()

    def _deliver(self, now: float) -> None:
        for i, member in enumerate(self.members):
            if i == self.primary_index or not member.reachable:
                continue
            lag = member.effective_lag(now)
            for entry in self.oplog:
                if entry.seq <= member.applied_seq:
                    continue
                if entry.time + lag > now:
                    break
                if not self._shippable(entry, member):
                    break  # the only holders are unreachable: wait for them
                member.apply(entry, now)

    def _shippable(self, entry: OplogEntry, target: ReplicaMember) -> bool:
        """An entry can only ship from a reachable member that holds it."""
        return any(
            m is not target and m.reachable and m.applied_seq >= entry.seq
            for m in self.members
        )

    # -- elections and rollback --------------------------------------------------

    def _elect(self, now: float) -> None:
        candidates = [
            (i, m) for i, m in enumerate(self.members) if m.reachable
        ]
        if len(candidates) < self.quorum:
            return  # no quorum: the set stays unavailable
        best_seq = max(m.applied_seq for _, m in candidates)
        leaders = [i for i, m in candidates if m.applied_seq == best_seq]
        winner = leaders[0] if len(leaders) == 1 else self._rng.choice(leaders)
        lost_at = self._down_since if self._down_since is not None else now
        self._rollback(best_seq, lost_at)
        self.primary_index = winner
        self.term += 1
        self.elections += 1
        start = self._down_since if self._down_since is not None else now
        self.downtime.append((start, now))
        self._down_since = None
        self.last_failover = (start, now, self.term)
        if self.tracer:
            self.tracer.add(
                "election.failover", start, now, cat="election",
                node=self.name, lane="election",
                term=self.term, winner=self.members[winner].name,
                rolled_back=len([r for r in self.rolled_back
                                 if r.lost_at == lost_at]),
            )

    def _rollback(self, keep_seq: int, lost_at: float) -> None:
        """Drop oplog entries beyond ``keep_seq``; stash them for recovery."""
        dropped = [e for e in self.oplog if e.seq > keep_seq]
        if not dropped:
            return
        self.oplog = [e for e in self.oplog if e.seq <= keep_seq]
        for entry in dropped:
            self.rolled_back.append(RolledBack(entry=entry, lost_at=lost_at))

    def _queue_rollback_recovery(self, seqs: list[int]) -> None:
        """A returning member durably holds rolled-back writes: re-apply them."""
        for record in self.rolled_back:
            if record.entry.seq in seqs and not record.recovered:
                record.recovered = True
                self._recovery_queue.append(record.entry)
        self._recovery_queue.sort(key=lambda e: e.origin)

    def _drain_recovery_queue(self) -> None:
        primary = self._primary()
        if primary is None or not primary.reachable or not self._recovery_queue:
            return
        queue, self._recovery_queue = self._recovery_queue, []
        for entry in queue:
            self._reapply(entry)

    def _reapply(self, entry: OplogEntry) -> None:
        """Re-apply a recovered rollback-file entry unless it was superseded."""
        primary = self._primary()
        if entry.op is JournalOp.INSERT:
            if primary.mongod.find_one(entry.collection, entry.key) is not None:
                return
        else:
            latest = self._current_max_origin(
                entry.collection, entry.key,
                entry.fieldname if entry.op is JournalOp.UPDATE else None,
            )
            if entry.origin <= latest:
                return
            if (
                entry.op is JournalOp.UPDATE
                and primary.mongod.find_one(entry.collection, entry.key) is None
            ):
                return  # the base document itself was unrecoverable
        replayed = OplogEntry(
            seq=self._next_seq, term=self.term, time=self.now, op=entry.op,
            collection=entry.collection, key=entry.key,
            document=entry.document, fieldname=entry.fieldname,
            value=entry.value, orig_seq=entry.origin,
        )
        self._next_seq += 1
        primary.apply(replayed, self.now)
        self.oplog.append(replayed)

    # -- membership faults -------------------------------------------------------

    def kill_member(self, index: int) -> None:
        member = self.members[index]
        if not member.alive:
            return
        member.kill(self.now)  # truncates its history to the durable prefix
        if index == self.primary_index:
            # Oplog entries no member holds any more — the dead primary's
            # unflushed tail, minus whatever secondaries already applied or
            # other members hold durably — are gone for good.  This is the
            # safe-mode loss window: everything dropped here was written
            # within one journal flush interval of the kill.
            self._rollback(
                max(m.applied_seq for m in self.members), self.now
            )
            if self._down_since is None:
                self._down_since = self.now

    def restart_member(self, index: int) -> None:
        member = self.members[index]
        if member.alive:
            return
        restored_primary = (
            index == self.primary_index and self._down_since is not None
        )
        self._resync(member)
        if restored_primary and member.reachable:
            # The primary came back before any election ran: close the
            # outage window, it simply resumes in its old term.
            self.downtime.append((self._down_since, self.now))
            self._down_since = None

    def partition_member(self, index: int) -> None:
        member = self.members[index]
        member.partitioned = True
        if index == self.primary_index and self._down_since is None:
            self._down_since = self.now

    def heal_member(self, index: int) -> None:
        member = self.members[index]
        if not member.partitioned:
            return
        member.partitioned = False
        if not member.alive:
            return
        if index == self.primary_index and self._down_since is not None:
            if self._primary() is member:
                # Healed before any election: the old primary resumes.
                self.downtime.append((self._down_since, self.now))
                self._down_since = None
        self._resync(member)

    def lag_spike(self, index: int, factor: float, until: float) -> None:
        member = self.members[index]
        member.lag_factor = max(1.0, factor)
        member.lag_until = until

    def _resync(self, member: ReplicaMember) -> None:
        """Reconcile a returning member's history with the official oplog."""
        official = self._oplog_seqs()
        keep = [s for s in member.applied if s in official]
        orphans = [s for s in member.applied if s not in official]
        member.rebuild(self._entries_for(keep), self.now)
        if orphans:
            self._queue_rollback_recovery(orphans)
        self._drain_recovery_queue()

    # -- write path --------------------------------------------------------------

    def _ack_secondaries(self, needed: int) -> list[ReplicaMember]:
        eligible = [
            m for i, m in enumerate(self.members)
            if i != self.primary_index and m.reachable
        ]
        if len(eligible) < needed:
            raise ReplicaSetUnavailable(
                f"replica set {self.name}: write concern "
                f"{self.concern.name} needs {needed} reachable secondaries, "
                f"have {len(eligible)}"
            )
        eligible.sort(key=lambda m: (m.effective_lag(self.now), m.name))
        return eligible[:needed]

    def _write(self, op: JournalOp, collection: str, key,
               document: bytes | None, fieldname: str | None = None,
               value=None) -> None:
        primary = self._require_primary()
        entry = OplogEntry(
            seq=self._next_seq, term=self.term, time=self.now, op=op,
            collection=collection, key=key, document=document,
            fieldname=fieldname, value=value,
        )
        concern = self.concern
        needed = concern.required_members(len(self.members)) - 1
        ack_set = self._ack_secondaries(needed) if needed > 0 else []
        self._next_seq += 1
        primary.apply(entry, self.now)
        self.oplog.append(entry)
        # The ack set receives the write eagerly (state-wise) so a majority
        # ack really means a majority holds it; the latency cost of shipping
        # and flushing is charged analytically below.
        ack_times = []
        if concern.acked:
            if concern.journal:
                ack_times.append(
                    max(self.now, primary.journal.next_flush_time)
                )
            else:
                ack_times.append(self.now)
        for member in ack_set:
            member.apply(entry, self.now)
            durable = self.now + member.effective_lag(self.now)
            if concern.journal:
                durable = max(durable, member.journal.next_flush_time)
            ack_times.append(durable)
        delay = max(0.0, max(ack_times) - self.now) if ack_times else 0.0
        self._last_ack_delay = delay
        self._last_write = LastWrite(
            seq=entry.seq, op=op.value, collection=collection, key=key,
            fieldname=fieldname, value=value, write_time=self.now,
            ack_time=self.now + delay, concern=concern.name,
        )

    def insert(self, collection: str, document: dict) -> None:
        self._write(
            JournalOp.INSERT, collection, document["_id"],
            bson.encode(document),
        )

    def update(self, collection: str, key, fieldname: str, value) -> bool:
        primary = self._require_primary()
        before = primary.mongod.find_one(collection, key)
        if before is None:
            return False
        after = dict(before)
        after[fieldname] = value
        self._write(
            JournalOp.UPDATE, collection, key, bson.encode(after),
            fieldname=fieldname, value=value,
        )
        return True

    def remove(self, collection: str, key) -> bool:
        primary = self._require_primary()
        if primary.mongod.find_one(collection, key) is None:
            return False
        self._write(JournalOp.REMOVE, collection, key, None)
        return True

    # -- read path ---------------------------------------------------------------

    def find_one(self, collection: str, key, *, prefer_secondary: bool = False):
        if not prefer_secondary:
            return self._require_primary().mongod.find_one(collection, key)
        secondaries = [
            m for i, m in enumerate(self.members)
            if i != self.primary_index and m.reachable
        ]
        if not secondaries:
            return self._require_primary().mongod.find_one(collection, key)
        member = secondaries[self._rng.random_int(0, len(secondaries) - 1)]
        fresh = self._current_max_origin(collection, key)
        behind = any(
            e.seq > member.applied_seq
            for e in self.oplog
            if e.collection == collection and e.key == key
        )
        if fresh and behind:
            self.stale_reads += 1
        return member.mongod.find_one(collection, key)

    def scan(self, collection: str, start_key, count: int) -> list[dict]:
        return self._require_primary().mongod.scan(collection, start_key, count)

    def collection(self, name: str):
        primary = self._primary()
        if primary is not None and primary.alive:
            return primary.mongod.collection(name)
        for member in self.members:
            if member.alive:
                return member.mongod.collection(name)
        raise ReplicaSetUnavailable(
            f"replica set {self.name} has no live member"
        )

    # -- cluster-facing process controls ----------------------------------------

    def kill(self) -> None:
        """Cluster-level 'kill this shard': kill the current primary."""
        if self.primary_index is not None:
            self.kill_member(self.primary_index)

    def restart(self) -> None:
        """Cluster-level 'restart this shard': restart every dead member."""
        for i, member in enumerate(self.members):
            if not member.alive:
                self.restart_member(i)

    # -- runner hooks ------------------------------------------------------------

    def consume_ack_delay(self) -> float:
        delay, self._last_ack_delay = self._last_ack_delay, 0.0
        return delay

    def take_last_write(self) -> Optional[LastWrite]:
        write, self._last_write = self._last_write, None
        return write

    # -- audit surface -----------------------------------------------------------

    def lost_records(self) -> list[RolledBack]:
        """Rolled-back writes that were never recovered — real data loss."""
        return [r for r in self.rolled_back if not r.recovered]

    def unavailable_seconds(self, now: float | None = None) -> float:
        total = sum(end - start for start, end in self.downtime)
        if self._down_since is not None:
            total += (now if now is not None else self.now) - self._down_since
        return total

    def settle(self, now: float) -> None:
        """Run the clock forward until replication fully quiesces."""
        horizon = now
        for _ in range(1000):
            self.tick(horizon)
            lagging = any(
                m.reachable and m.applied_seq < (self.oplog[-1].seq
                                                 if self.oplog else 0)
                for i, m in enumerate(self.members)
                if i != self.primary_index
            )
            if self.alive and not lagging and not self._recovery_queue:
                return
            horizon += max(
                self.election_timeout,
                max(m.effective_lag(horizon) for m in self.members),
            )
        raise ReplicaSetUnavailable(
            f"replica set {self.name} failed to settle (no quorum?)"
        )

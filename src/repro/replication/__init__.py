"""Server-side redundancy the paper left out: replica sets + write concerns.

The paper benchmarked every system in its most fragile configuration —
MongoDB with "no logging" and no replica sets (§3.4.1).  This package turns
that single point into a spectrum: :mod:`writeconcern` names the durability
levels, :mod:`replicaset` models primary/secondary mongods with oplog
shipping, seeded elections, and rollback-file recovery on the virtual
clock, and :mod:`repro.sqlstore.mirroring` gives SQL Server its synchronous
log-shipping counterpart.
"""

from repro.replication.config import ReplicationConfig
from repro.replication.replicaset import (
    DEFAULT_ELECTION_TIMEOUT,
    DEFAULT_LAG,
    LastWrite,
    OplogEntry,
    ReplicaMember,
    ReplicaSet,
    RolledBack,
)
from repro.replication.writeconcern import (
    CONCERNS,
    JOURNAL_LOSS_WINDOW,
    JOURNALED,
    MAJORITY,
    SAFE,
    SPECTRUM,
    UNACKED,
    WriteConcern,
    parse_concern_list,
)

__all__ = [
    "CONCERNS",
    "DEFAULT_ELECTION_TIMEOUT",
    "DEFAULT_LAG",
    "JOURNALED",
    "JOURNAL_LOSS_WINDOW",
    "LastWrite",
    "MAJORITY",
    "OplogEntry",
    "ReplicaMember",
    "ReplicaSet",
    "ReplicationConfig",
    "RolledBack",
    "SAFE",
    "SPECTRUM",
    "UNACKED",
    "WriteConcern",
    "parse_concern_list",
]

"""Replication topology configuration, parsed from the CLI.

``--replication replicas=3,lag=0.05,timeout=0.25`` turns every Mongo shard
into a :class:`~repro.replication.replicaset.ReplicaSet` of that shape (and
``--replication mirrored`` gives each SQL-CS shard a synchronous mirror).
``--replication off`` — the default — is the paper-faithful configuration:
bare processes, no failover, exactly PR 3's error accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError
from repro.replication.replicaset import (
    DEFAULT_ELECTION_TIMEOUT,
    DEFAULT_LAG,
    ReplicaSet,
)
from repro.replication.writeconcern import SAFE, WriteConcern


@dataclass(frozen=True)
class ReplicationConfig:
    """How much server-side redundancy each shard gets."""

    replicas: int = 3
    lag: float = DEFAULT_LAG
    election_timeout: float = DEFAULT_ELECTION_TIMEOUT
    concern: WriteConcern = SAFE

    def __post_init__(self):
        if self.replicas < 1:
            raise ConfigurationError("replication needs replicas >= 1")
        if self.lag < 0:
            raise ConfigurationError("replication lag must be >= 0")
        if self.election_timeout <= 0:
            raise ConfigurationError("election timeout must be > 0")
        needed = self.concern.required_members(self.replicas)
        if self.concern.w > self.replicas:
            raise ConfigurationError(
                f"write concern {self.concern.name} needs {self.concern.w} "
                f"members but the set has {self.replicas}"
            )
        if needed > self.replicas:
            raise ConfigurationError(
                f"write concern {self.concern.name} needs {needed} members "
                f"but the set has {self.replicas}"
            )

    def with_concern(self, concern: WriteConcern) -> "ReplicationConfig":
        return replace(self, concern=concern)

    def build_shard(self, name: str, seed: int = 0, tracer=None) -> ReplicaSet:
        return ReplicaSet(
            name,
            self.replicas,
            lag=self.lag,
            election_timeout=self.election_timeout,
            concern=self.concern,
            seed=seed,
            tracer=tracer,
        )

    def spec_string(self) -> str:
        return (
            f"replicas={self.replicas},lag={self.lag:g},"
            f"timeout={self.election_timeout:g}"
        )

    @classmethod
    def parse(cls, text: str) -> "ReplicationConfig | None":
        """Parse the CLI value; ``off``/``none`` -> None (paper-faithful)."""
        spec = text.strip().lower()
        if spec in ("off", "none", ""):
            return None
        if spec in ("on", "mirrored"):
            return cls()
        kwargs: dict = {}
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" not in chunk:
                raise ConfigurationError(
                    f"bad replication option {chunk!r}; expected key=value "
                    "(replicas=N, lag=S, timeout=S)"
                )
            key, _, value = chunk.partition("=")
            key = key.strip()
            try:
                if key == "replicas":
                    kwargs["replicas"] = int(value)
                elif key == "lag":
                    kwargs["lag"] = float(value)
                elif key == "timeout":
                    kwargs["election_timeout"] = float(value)
                else:
                    raise ConfigurationError(
                        f"unknown replication option {key!r}; expected "
                        "replicas, lag, or timeout"
                    )
            except ValueError:
                raise ConfigurationError(
                    f"bad replication value {chunk!r}"
                ) from None
        return cls(**kwargs)

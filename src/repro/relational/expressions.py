"""Scalar expression trees evaluated against dict rows.

Expressions support Python operator overloading so query definitions read
close to SQL::

    (col("l_shipdate") <= lit("1998-09-01")) & (col("l_discount") > lit(0.05))

``Expr.eval(row)`` computes the value; the tree form also lets planners
inspect predicates (e.g. which columns a filter touches).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import date, timedelta
from typing import Any, Callable

from repro.common.errors import PlanError


class Expr:
    """Base class for all scalar expressions."""

    def eval(self, row: dict) -> Any:
        raise NotImplementedError

    # -- comparison operators ------------------------------------------------
    def __eq__(self, other):  # type: ignore[override]
        return BinOp("==", self, _wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return BinOp("!=", self, _wrap(other))

    def __lt__(self, other):
        return BinOp("<", self, _wrap(other))

    def __le__(self, other):
        return BinOp("<=", self, _wrap(other))

    def __gt__(self, other):
        return BinOp(">", self, _wrap(other))

    def __ge__(self, other):
        return BinOp(">=", self, _wrap(other))

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other):
        return BinOp("+", self, _wrap(other))

    def __sub__(self, other):
        return BinOp("-", self, _wrap(other))

    def __mul__(self, other):
        return BinOp("*", self, _wrap(other))

    def __truediv__(self, other):
        return BinOp("/", self, _wrap(other))

    # -- boolean combinators (SQL AND/OR/NOT) --------------------------------
    def __and__(self, other):
        return BinOp("and", self, _wrap(other))

    def __or__(self, other):
        return BinOp("or", self, _wrap(other))

    def __invert__(self):
        return NotOp(self)

    # Hashability is required because __eq__ is overloaded.
    def __hash__(self):
        return id(self)

    # -- SQL-flavoured helpers ------------------------------------------------
    def like(self, pattern: str) -> "LikeOp":
        return LikeOp(self, pattern)

    def not_like(self, pattern: str) -> "NotOp":
        return NotOp(LikeOp(self, pattern))

    def in_(self, values) -> "InList":
        return InList(self, tuple(values))

    def between(self, low, high) -> "BinOp":
        return (self >= _wrap(low)) & (self <= _wrap(high))

    def substr(self, start: int, length: int) -> "Substr":
        return Substr(self, start, length)

    def year(self) -> "YearOf":
        return YearOf(self)


def _wrap(value) -> Expr:
    return value if isinstance(value, Expr) else Lit(value)


@dataclass(frozen=True, eq=False)
class Col(Expr):
    """A column reference."""

    name: str

    def eval(self, row: dict) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise PlanError(f"row has no column {self.name!r}; has {sorted(row)}")

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Lit(Expr):
    """A literal constant."""

    value: Any

    def eval(self, row: dict) -> Any:
        return self.value

    def __repr__(self) -> str:
        return repr(self.value)


_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class BinOp(Expr):
    """Binary operator; ``and``/``or`` short-circuit like SQL's two-valued logic."""

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _OPS and op not in ("and", "or"):
            raise PlanError(f"unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, row: dict) -> Any:
        if self.op == "and":
            return bool(self.left.eval(row)) and bool(self.right.eval(row))
        if self.op == "or":
            return bool(self.left.eval(row)) or bool(self.right.eval(row))
        return _OPS[self.op](self.left.eval(row), self.right.eval(row))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class NotOp(Expr):
    def __init__(self, inner: Expr):
        self.inner = inner

    def eval(self, row: dict) -> bool:
        return not bool(self.inner.eval(row))

    def __repr__(self) -> str:
        return f"(not {self.inner!r})"


class LikeOp(Expr):
    """SQL LIKE with ``%`` (any run) and ``_`` (any one character)."""

    def __init__(self, inner: Expr, pattern: str):
        self.inner = inner
        self.pattern = pattern
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        self._compiled = re.compile(f"^{regex}$", re.DOTALL)

    def eval(self, row: dict) -> bool:
        value = self.inner.eval(row)
        return bool(self._compiled.match(str(value)))

    def __repr__(self) -> str:
        return f"({self.inner!r} LIKE {self.pattern!r})"


class InList(Expr):
    def __init__(self, inner: Expr, values: tuple):
        self.inner = inner
        self.values = frozenset(values)

    def eval(self, row: dict) -> bool:
        return self.inner.eval(row) in self.values

    def __repr__(self) -> str:
        return f"({self.inner!r} IN {sorted(self.values)!r})"


class Substr(Expr):
    """SQL SUBSTRING with 1-based ``start``."""

    def __init__(self, inner: Expr, start: int, length: int):
        if start < 1 or length < 0:
            raise PlanError("substr uses 1-based start and non-negative length")
        self.inner = inner
        self.start = start
        self.length = length

    def eval(self, row: dict) -> str:
        value = str(self.inner.eval(row))
        return value[self.start - 1 : self.start - 1 + self.length]

    def __repr__(self) -> str:
        return f"substr({self.inner!r}, {self.start}, {self.length})"


class YearOf(Expr):
    """EXTRACT(YEAR FROM date-string)."""

    def __init__(self, inner: Expr):
        self.inner = inner

    def eval(self, row: dict) -> int:
        return int(str(self.inner.eval(row))[:4])

    def __repr__(self) -> str:
        return f"year({self.inner!r})"


class CaseWhen(Expr):
    """``CASE WHEN cond THEN value ... ELSE default END``."""

    def __init__(self, branches: list[tuple[Expr, Expr]], default: Expr):
        if not branches:
            raise PlanError("CASE needs at least one WHEN branch")
        self.branches = [(cond, _wrap(value)) for cond, value in branches]
        self.default = _wrap(default)

    def eval(self, row: dict) -> Any:
        for cond, value in self.branches:
            if cond.eval(row):
                return value.eval(row)
        return self.default.eval(row)

    def __repr__(self) -> str:
        parts = " ".join(f"WHEN {c!r} THEN {v!r}" for c, v in self.branches)
        return f"CASE {parts} ELSE {self.default!r} END"


# -- public constructors -------------------------------------------------------


def col(name: str) -> Col:
    """Reference a column."""
    return Col(name)


def lit(value) -> Lit:
    """A literal constant."""
    return Lit(value)


def case(branches: list[tuple[Expr, Any]], default=0) -> CaseWhen:
    """Build a CASE expression; values are auto-wrapped literals."""
    return CaseWhen(branches, default)


def date_add(iso_date: str, days: int = 0, months: int = 0, years: int = 0) -> str:
    """Date arithmetic on ISO strings: ``date '1994-01-01' + interval ...``."""
    d = date.fromisoformat(iso_date)
    if days:
        d = d + timedelta(days=days)
    if months or years:
        total = d.month - 1 + months + 12 * years
        year = d.year + total // 12
        month = total % 12 + 1
        # Clamp the day like SQL engines do (Jan 31 + 1 month -> Feb 28/29).
        for day in (d.day, 30, 29, 28):
            try:
                d = date(year, month, day)
                break
            except ValueError:
                continue
    return d.isoformat()

"""Schemas, tables, and the in-memory database the kernel executes against.

Rows are plain dicts keyed by column name.  Dates are ISO-8601 strings
(``"1994-01-01"``), which order correctly under string comparison and keep
the generator and the operators simple.  Each column carries a byte-width
estimate so intermediate results can be costed for shuffles and scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import PlanError


class ColumnType(Enum):
    """Logical column types used by TPC-H and YCSB schemas."""

    INT = "int"
    FLOAT = "float"  # TPC-H decimals are modelled as floats
    STR = "str"
    DATE = "date"  # ISO-8601 string


@dataclass(frozen=True)
class Column:
    """One column: name, type, and an average stored width in bytes."""

    name: str
    ctype: ColumnType
    width: int = 8

    @staticmethod
    def int_(name: str) -> "Column":
        return Column(name, ColumnType.INT, 8)

    @staticmethod
    def float_(name: str) -> "Column":
        return Column(name, ColumnType.FLOAT, 8)

    @staticmethod
    def str_(name: str, width: int) -> "Column":
        return Column(name, ColumnType.STR, width)

    @staticmethod
    def date(name: str) -> "Column":
        return Column(name, ColumnType.DATE, 10)


@dataclass(frozen=True)
class Schema:
    """An ordered list of columns with name lookup."""

    columns: tuple[Column, ...]

    def __post_init__(self):
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise PlanError(f"duplicate column names in schema: {names}")

    @staticmethod
    def of(*columns: Column) -> "Schema":
        return Schema(tuple(columns))

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        for c in self.columns:
            if c.name == name:
                return c
        raise PlanError(f"unknown column {name!r}; have {self.names}")

    def __contains__(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    @property
    def row_width(self) -> int:
        """Average stored bytes per row (used by the cost models)."""
        return sum(c.width for c in self.columns)


@dataclass
class TableData:
    """A named table: schema plus materialized rows."""

    name: str
    schema: Schema
    rows: list[dict] = field(default_factory=list)

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @property
    def byte_size(self) -> int:
        return self.row_count * self.schema.row_width

    def append(self, row: dict) -> None:
        self.rows.append(row)


class Database:
    """A collection of tables addressed by name."""

    def __init__(self):
        self._tables: dict[str, TableData] = {}

    def add(self, table: TableData) -> None:
        if table.name in self._tables:
            raise PlanError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name: str) -> TableData:
        if name not in self._tables:
            raise PlanError(f"unknown table {name!r}; have {sorted(self._tables)}")
        return self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)


def estimate_row_width(row: dict) -> int:
    """Rough stored width of an arbitrary row (for unplanned intermediates)."""
    width = 0
    for value in row.values():
        if isinstance(value, str):
            width += len(value)
        else:
            width += 8
    return width

"""Physical operators: scan, filter, project, hash join, aggregate, sort.

Operators form a tree; ``run(plan, db)`` executes it bottom-up and returns a
list of dict rows.  Any operator can carry a ``tag``: tagged operators record
their output cardinality and byte volume into the :class:`ExecutionContext`,
which is how the engine cost models learn the true intermediate sizes of each
TPC-H query (Section 3.3.4 of the paper reasons entirely in terms of these
volumes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import PlanError
from repro.relational.expressions import Expr, _wrap
from repro.relational.schema import Database, estimate_row_width


@dataclass
class StageStat:
    """Cardinality and size of one tagged operator's output."""

    rows: int
    bytes: int

    @property
    def avg_width(self) -> float:
        return self.bytes / self.rows if self.rows else 0.0


class ExecutionContext:
    """Carries the database and collects tagged operator statistics."""

    def __init__(self, db: Database):
        self.db = db
        self.stats: dict[str, StageStat] = {}

    def record(self, tag: str, rows: list[dict]) -> None:
        width = estimate_row_width(rows[0]) if rows else 0
        self.stats[tag] = StageStat(rows=len(rows), bytes=len(rows) * width)


class Operator:
    """Base class; subclasses implement ``_execute``."""

    tag: Optional[str] = None

    def execute(self, ctx: ExecutionContext) -> list[dict]:
        rows = self._execute(ctx)
        if self.tag is not None:
            ctx.record(self.tag, rows)
        return rows

    def _execute(self, ctx: ExecutionContext) -> list[dict]:
        raise NotImplementedError


class Scan(Operator):
    """Full scan of a base table, optionally filtering and projecting inline."""

    def __init__(
        self,
        table: str,
        predicate: Optional[Expr] = None,
        columns: Optional[list[str]] = None,
        tag: Optional[str] = None,
    ):
        self.table = table
        self.predicate = predicate
        self.columns = columns
        self.tag = tag

    def _execute(self, ctx: ExecutionContext) -> list[dict]:
        rows = ctx.db.table(self.table).rows
        if self.predicate is not None:
            pred = self.predicate
            rows = [r for r in rows if pred.eval(r)]
        if self.columns is not None:
            cols = self.columns
            rows = [{c: r[c] for c in cols} for r in rows]
        else:
            rows = list(rows)
        return rows


class Rows(Operator):
    """Wrap an already-materialized row list as a plan input."""

    def __init__(self, rows: list[dict], tag: Optional[str] = None):
        self._rows = rows
        self.tag = tag

    def _execute(self, ctx: ExecutionContext) -> list[dict]:
        return self._rows


class Filter(Operator):
    def __init__(self, child: Operator, predicate: Expr, tag: Optional[str] = None):
        self.child = child
        self.predicate = predicate
        self.tag = tag

    def _execute(self, ctx: ExecutionContext) -> list[dict]:
        pred = self.predicate
        return [r for r in self.child.execute(ctx) if pred.eval(r)]


class Project(Operator):
    """Compute output columns; values may be column names or expressions."""

    def __init__(self, child: Operator, outputs: dict, tag: Optional[str] = None):
        self.child = child
        self.outputs = {name: _as_expr(spec) for name, spec in outputs.items()}
        self.tag = tag

    def _execute(self, ctx: ExecutionContext) -> list[dict]:
        outputs = self.outputs
        return [
            {name: expr.eval(row) for name, expr in outputs.items()}
            for row in self.child.execute(ctx)
        ]


def _as_expr(spec) -> Expr:
    from repro.relational.expressions import Col

    if isinstance(spec, Expr):
        return spec
    if isinstance(spec, str):
        return Col(spec)
    return _wrap(spec)


class HashJoin(Operator):
    """Equi-join on key column lists; supports inner/left/semi/anti.

    The build side is ``right``; output rows merge left columns with right
    columns (left values win on a name clash, which TPC-H never has).
    ``semi`` emits each left row with at least one match; ``anti`` emits each
    left row with none (NOT EXISTS).  ``left`` outer fills unmatched right
    columns with ``None``.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: list[str],
        right_keys: list[str],
        how: str = "inner",
        tag: Optional[str] = None,
    ):
        if how not in ("inner", "left", "semi", "anti"):
            raise PlanError(f"unknown join type {how!r}")
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("join key lists must be non-empty and equal length")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.how = how
        self.tag = tag

    def _execute(self, ctx: ExecutionContext) -> list[dict]:
        left_rows = self.left.execute(ctx)
        right_rows = self.right.execute(ctx)
        rkeys = self.right_keys
        table: dict[tuple, list[dict]] = {}
        for row in right_rows:
            table.setdefault(tuple(row[k] for k in rkeys), []).append(row)

        lkeys = self.left_keys
        out: list[dict] = []
        if self.how == "semi":
            return [r for r in left_rows if tuple(r[k] for k in lkeys) in table]
        if self.how == "anti":
            return [r for r in left_rows if tuple(r[k] for k in lkeys) not in table]

        right_cols: list[str] = []
        if self.how == "left" and right_rows:
            right_cols = [c for c in right_rows[0] if c not in set(lkeys)]
        for row in left_rows:
            matches = table.get(tuple(row[k] for k in lkeys))
            if matches:
                for match in matches:
                    merged = {**match, **row}
                    out.append(merged)
            elif self.how == "left":
                merged = dict(row)
                for c in right_cols:
                    merged.setdefault(c, None)
                out.append(merged)
        return out


@dataclass(frozen=True)
class Agg:
    """One aggregate: function name plus input expression (None for COUNT(*))."""

    func: str
    expr: Optional[Expr] = None

    def __post_init__(self):
        valid = ("sum", "count", "avg", "min", "max", "count_distinct")
        if self.func not in valid:
            raise PlanError(f"unknown aggregate {self.func!r}; valid: {valid}")
        if self.func != "count" and self.expr is None:
            raise PlanError(f"{self.func} requires an input expression")


class Aggregate(Operator):
    """Hash group-by.  ``keys=[]`` produces a single global-aggregate row."""

    def __init__(
        self,
        child: Operator,
        keys: list[str],
        aggs: dict[str, Agg],
        tag: Optional[str] = None,
    ):
        self.child = child
        self.keys = keys
        self.aggs = aggs
        self.tag = tag

    def _execute(self, ctx: ExecutionContext) -> list[dict]:
        rows = self.child.execute(ctx)
        keys = self.keys
        groups: dict[tuple, list[dict]] = {}
        for row in rows:
            groups.setdefault(tuple(row[k] for k in keys), []).append(row)
        if not keys and not groups:
            groups[()] = []  # global aggregate over empty input still emits one row

        out = []
        for key, members in groups.items():
            result = dict(zip(keys, key))
            for name, agg in self.aggs.items():
                result[name] = _apply_agg(agg, members)
            out.append(result)
        return out


def _apply_agg(agg: Agg, rows: list[dict]):
    if agg.func == "count":
        return len(rows)
    values = [agg.expr.eval(r) for r in rows]
    if agg.func == "count_distinct":
        return len(set(values))
    if not values:
        return None
    if agg.func == "sum":
        return sum(values)
    if agg.func == "avg":
        return sum(values) / len(values)
    if agg.func == "min":
        return min(values)
    if agg.func == "max":
        return max(values)
    raise PlanError(f"unhandled aggregate {agg.func}")


class Sort(Operator):
    """ORDER BY a list of ``(column_or_expr, descending)`` pairs."""

    def __init__(self, child: Operator, keys: list[tuple], tag: Optional[str] = None):
        self.child = child
        self.keys = [(_as_expr(k), bool(desc)) for k, desc in keys]
        self.tag = tag

    def _execute(self, ctx: ExecutionContext) -> list[dict]:
        rows = self.child.execute(ctx)
        # Stable sort applied from the least-significant key backwards.
        for expr, desc in reversed(self.keys):
            rows = sorted(rows, key=lambda r, e=expr: e.eval(r), reverse=desc)
        return rows


class Limit(Operator):
    def __init__(self, child: Operator, n: int, tag: Optional[str] = None):
        if n < 0:
            raise PlanError("LIMIT must be non-negative")
        self.child = child
        self.n = n
        self.tag = tag

    def _execute(self, ctx: ExecutionContext) -> list[dict]:
        return self.child.execute(ctx)[: self.n]


class Distinct(Operator):
    """Row-level DISTINCT over selected columns (or all columns)."""

    def __init__(self, child: Operator, columns: Optional[list[str]] = None, tag=None):
        self.child = child
        self.columns = columns
        self.tag = tag

    def _execute(self, ctx: ExecutionContext) -> list[dict]:
        seen = set()
        out = []
        for row in self.child.execute(ctx):
            cols = self.columns if self.columns is not None else sorted(row)
            key = tuple(row[c] for c in cols)
            if key not in seen:
                seen.add(key)
                out.append({c: row[c] for c in cols} if self.columns else row)
        return out


def run(plan: Operator, db: Database, ctx: Optional[ExecutionContext] = None) -> list[dict]:
    """Execute a plan against a database, returning materialized rows."""
    if ctx is None:
        ctx = ExecutionContext(db)
    return plan.execute(ctx)

"""Logical plan rewrites: predicate pushdown and early projection.

The relational kernel executes plans exactly as written; this module adds
the two classic rewrites every cost-based system performs (and the paper's
Hive 0.7 mostly did not):

* **predicate pushdown** — conjuncts of a :class:`Filter` that reference
  only one side of a join move below the join, shrinking build/probe inputs;
* **projection pruning** — a :class:`Scan` asked only for some columns
  materializes only those columns.

``optimize(plan, required_columns)`` rewrites bottom-up and is
answer-preserving: the optimizer tests prove rewritten plans return the same
rows while the tagged operator statistics show strictly less data flowing.
"""

from __future__ import annotations

from typing import Optional

from repro.relational.expressions import BinOp, Col, Expr
from repro.relational.operators import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    Operator,
    Project,
    Rows,
    Scan,
    Sort,
)


def split_conjuncts(expr: Expr) -> list[Expr]:
    """Flatten a tree of ANDs into its conjuncts."""
    if isinstance(expr, BinOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def and_together(conjuncts: list[Expr]) -> Optional[Expr]:
    """Rebuild a conjunction; None for an empty list."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = result & conjunct
    return result


def columns_of(expr: Expr) -> set[str]:
    """Every column name an expression references."""
    if isinstance(expr, Col):
        return {expr.name}
    found: set[str] = set()
    for attr in ("left", "right", "inner", "default"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expr):
            found |= columns_of(child)
    for branch in getattr(expr, "branches", []) or []:
        cond, value = branch
        found |= columns_of(cond) | columns_of(value)
    return found


def output_columns(plan: Operator) -> Optional[set[str]]:
    """The column set a subplan produces, or None when unknown."""
    if isinstance(plan, Scan):
        if plan.columns is not None:
            return set(plan.columns)
        return None  # depends on the table schema at execution time
    if isinstance(plan, Project):
        return set(plan.outputs)
    if isinstance(plan, Aggregate):
        return set(plan.keys) | set(plan.aggs)
    if isinstance(plan, HashJoin):
        left = output_columns(plan.left)
        right = output_columns(plan.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(plan, (Filter, Sort, Limit, Distinct)):
        return output_columns(plan.child)
    if isinstance(plan, Rows):
        return None
    return None


def _push_into(plan: Operator, conjuncts: list[Expr]) -> tuple[Operator, list[Expr]]:
    """Try to sink conjuncts into ``plan``; returns (new plan, leftovers)."""
    if not conjuncts:
        return plan, []
    if isinstance(plan, Scan):
        predicate = and_together(
            ([plan.predicate] if plan.predicate is not None else []) + conjuncts
        )
        return (
            Scan(plan.table, predicate=predicate, columns=plan.columns,
                 tag=plan.tag),
            [],
        )
    if isinstance(plan, Filter):
        inner, leftovers = _push_into(plan.child, conjuncts)
        return Filter(inner, plan.predicate, tag=plan.tag), leftovers
    if isinstance(plan, HashJoin):
        left_cols = output_columns(plan.left)
        right_cols = output_columns(plan.right)
        push_left, push_right, stay = [], [], []
        for conjunct in conjuncts:
            needed = columns_of(conjunct)
            if left_cols is not None and needed <= left_cols:
                push_left.append(conjunct)
            elif right_cols is not None and needed <= right_cols:
                push_right.append(conjunct)
            # Join keys are always available on their own side too.
            elif needed <= set(plan.left_keys):
                push_left.append(conjunct)
            elif needed <= set(plan.right_keys):
                push_right.append(conjunct)
            else:
                stay.append(conjunct)
        new_left, left_rest = _push_into(plan.left, push_left)
        new_right, right_rest = _push_into(plan.right, push_right)
        rewritten = HashJoin(
            new_left, new_right, plan.left_keys, plan.right_keys,
            how=plan.how, tag=plan.tag,
        )
        return rewritten, stay + left_rest + right_rest
    # Anything else: cannot push further.
    return plan, conjuncts


def optimize(plan: Operator) -> Operator:
    """Rewrite a plan bottom-up; answer-preserving."""
    # Recurse first so inner filters sink before outer ones.
    if isinstance(plan, Filter):
        child = optimize(plan.child)
        conjuncts = split_conjuncts(plan.predicate)
        pushed, leftovers = _push_into(child, conjuncts)
        remainder = and_together(leftovers)
        if remainder is None:
            if plan.tag is not None:
                return Filter(pushed, _TRUE, tag=plan.tag)
            return pushed
        return Filter(pushed, remainder, tag=plan.tag)
    if isinstance(plan, HashJoin):
        return HashJoin(
            optimize(plan.left), optimize(plan.right),
            plan.left_keys, plan.right_keys, how=plan.how, tag=plan.tag,
        )
    if isinstance(plan, Project):
        return Project(optimize(plan.child), plan.outputs, tag=plan.tag)
    if isinstance(plan, Aggregate):
        return Aggregate(optimize(plan.child), plan.keys, plan.aggs, tag=plan.tag)
    if isinstance(plan, Sort):
        rewritten = Sort(optimize(plan.child), [])
        rewritten.keys = plan.keys
        rewritten.tag = plan.tag
        return rewritten
    if isinstance(plan, Limit):
        return Limit(optimize(plan.child), plan.n, tag=plan.tag)
    if isinstance(plan, Distinct):
        return Distinct(optimize(plan.child), plan.columns, tag=plan.tag)
    return plan


class _AlwaysTrue(Expr):
    def eval(self, row: dict) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE"


_TRUE = _AlwaysTrue()

"""A HiveQL-subset parser and compiler targeting the relational kernel.

Hive's defining property in the paper is that it executes declarative text
with *no cost-based optimization*: "The order of the joins is determined by
the way the user ... wrote the query" (Section 3.3.4.1).  This module makes
that concrete: it parses a useful HiveQL/SQL-92 subset and compiles it to a
kernel plan whose joins follow the written order, literally.

Supported grammar::

    SELECT expr [AS name] (, expr [AS name])*
    FROM table [alias]
      (JOIN table [alias] ON col = col)*
    [WHERE expr]
    [GROUP BY col (, col)*]
    [HAVING expr]
    [ORDER BY expr [ASC|DESC] (, ...)*]
    [LIMIT n]

Expressions: AND/OR/NOT, comparisons, + - * /, LIKE, NOT LIKE, IN (...),
BETWEEN x AND y, aggregates SUM/COUNT/AVG/MIN/MAX, literals, and (qualified)
column references.  Qualified names (``l.l_orderkey``) drop their alias —
TPC-H column names are globally unique.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import PlanError
from repro.relational.expressions import CaseWhen, Col, Expr, Lit
from repro.relational.operators import (
    Agg,
    Aggregate,
    Filter,
    HashJoin,
    Limit,
    Operator,
    Project,
    Scan,
    Sort,
)
from repro.relational.schema import Database

KEYWORDS = {
    "select", "from", "join", "on", "where", "group", "by", "having",
    "order", "limit", "as", "and", "or", "not", "like", "in", "between",
    "asc", "desc", "sum", "count", "avg", "min", "max", "case", "when",
    "then", "else", "end", "distinct",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|<>|!=|=|<|>|\+|-|\*|/|\(|\)|,|\.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "string" | "ident" | "keyword" | "op"
    text: str


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(sql):
        m = _TOKEN_RE.match(sql, pos)
        if m is None:
            raise PlanError(f"cannot tokenize at ...{sql[pos:pos + 20]!r}")
        pos = m.end()
        if m.lastgroup == "ws":
            continue
        text = m.group()
        kind = m.lastgroup
        if kind == "ident" and text.lower() in KEYWORDS:
            tokens.append(Token("keyword", text.lower()))
        else:
            tokens.append(Token(kind, text))
    return tokens


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------------

    def peek(self, offset: int = 0) -> Optional[Token]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise PlanError("unexpected end of query")
        self.pos += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token and token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            got = self.peek()
            raise PlanError(f"expected {text or kind}, got {got}")
        return token

    # -- expressions (precedence climbing) ----------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept("keyword", "or"):
            left = left | self._parse_and()
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.accept("keyword", "and"):
            left = left & self._parse_not()
        return left

    def _parse_not(self) -> Expr:
        if self.accept("keyword", "not"):
            return ~self._parse_not()
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        token = self.peek()
        if token is None:
            return left
        if token.kind == "op" and token.text in ("=", "<", ">", "<=", ">=", "<>", "!="):
            self.next()
            right = self._parse_additive()
            op = {"=": "==", "<>": "!=", "!=": "!="}.get(token.text, token.text)
            from repro.relational.expressions import BinOp

            return BinOp(op, left, right)
        if token.kind == "keyword" and token.text == "like":
            self.next()
            pattern = self._string_literal()
            return left.like(pattern)
        if (
            token.kind == "keyword" and token.text == "not"
            and self.peek(1) is not None
            and self.peek(1).kind == "keyword"
        ):
            follower = self.peek(1).text
            if follower == "like":
                self.next(), self.next()
                return left.not_like(self._string_literal())
            if follower == "in":
                self.next(), self.next()
                return ~left.in_(self._parse_in_list())
            if follower == "between":
                self.next(), self.next()
                low = self._parse_additive()
                self.expect("keyword", "and")
                high = self._parse_additive()
                return ~left.between(low, high)
        if token.kind == "keyword" and token.text == "in":
            self.next()
            return left.in_(self._parse_in_list())
        if token.kind == "keyword" and token.text == "between":
            self.next()
            low = self._parse_additive()
            self.expect("keyword", "and")
            high = self._parse_additive()
            return left.between(low, high)
        return left

    def _parse_in_list(self) -> list:
        self.expect("op", "(")
        values = [self._literal_value()]
        while self.accept("op", ","):
            values.append(self._literal_value())
        self.expect("op", ")")
        return values

    def _string_literal(self) -> str:
        token = self.expect("string")
        return token.text[1:-1].replace("''", "'")

    def _literal_value(self):
        token = self.next()
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        raise PlanError(f"expected a literal, got {token}")

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token and token.kind == "op" and token.text in ("+", "-"):
                self.next()
                right = self._parse_multiplicative()
                left = left + right if token.text == "+" else left - right
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_primary()
        while True:
            token = self.peek()
            if token and token.kind == "op" and token.text in ("*", "/"):
                self.next()
                right = self._parse_primary()
                left = left * right if token.text == "*" else left / right
            else:
                return left

    def _parse_primary(self) -> Expr:
        token = self.peek()
        if token is None:
            raise PlanError("unexpected end of expression")
        if token.kind == "op" and token.text == "(":
            self.next()
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        if token.kind == "number":
            self.next()
            value = float(token.text) if "." in token.text else int(token.text)
            return Lit(value)
        if token.kind == "string":
            self.next()
            return Lit(token.text[1:-1].replace("''", "'"))
        if token.kind == "keyword" and token.text == "case":
            return self._parse_case()
        if token.kind == "keyword" and token.text in ("sum", "count", "avg", "min", "max"):
            raise PlanError(
                f"aggregate {token.text.upper()} only allowed in the SELECT list"
            )
        if token.kind == "ident":
            return Col(self._column_name())
        raise PlanError(f"unexpected token {token}")

    def _parse_case(self) -> Expr:
        self.expect("keyword", "case")
        branches = []
        while self.accept("keyword", "when"):
            cond = self.parse_expr()
            self.expect("keyword", "then")
            value = self.parse_expr()
            branches.append((cond, value))
        default: Expr = Lit(0)
        if self.accept("keyword", "else"):
            default = self.parse_expr()
        self.expect("keyword", "end")
        return CaseWhen(branches, default)

    def _column_name(self) -> str:
        first = self.expect("ident").text
        if self.accept("op", "."):
            return self.expect("ident").text  # qualified: drop the alias
        return first

    # -- SELECT items ---------------------------------------------------------------

    def parse_select_item(self):
        """Returns (name, expr_or_agg); aggregates become Agg specs."""
        token = self.peek()
        if token and token.kind == "keyword" and token.text in (
            "sum", "count", "avg", "min", "max",
        ):
            func = self.next().text
            self.expect("op", "(")
            if func == "count" and self.accept("op", "*"):
                agg = Agg("count")
            else:
                distinct = bool(self.accept("keyword", "distinct"))
                inner = self.parse_expr()
                agg = Agg("count_distinct" if distinct and func == "count"
                          else func, inner)
            self.expect("op", ")")
            name = self._alias(default=func)
            return name, agg
        expr = self.parse_expr()
        default = expr.name if isinstance(expr, Col) else "expr"
        return self._alias(default=default), expr

    def _alias(self, default: str) -> str:
        if self.accept("keyword", "as"):
            return self.expect("ident").text
        token = self.peek()
        if token and token.kind == "ident":
            return self.next().text
        return default


@dataclass
class ParsedQuery:
    """The parsed form of a HiveQL statement."""

    select: list  # (name, Expr | Agg) in written order
    tables: list[str]  # FROM + JOINs, in written order
    join_conditions: list[tuple[str, str]]  # (left_col, right_col) per JOIN
    where: Optional[Expr]
    group_by: list[str]
    having: Optional[Expr]
    order_by: list[tuple]
    limit: Optional[int]

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(item, Agg) for _, item in self.select)


def parse(sql: str) -> ParsedQuery:
    """Parse a HiveQL statement."""
    p = _Parser(tokenize(sql))
    p.expect("keyword", "select")
    select = [p.parse_select_item()]
    while p.accept("op", ","):
        select.append(p.parse_select_item())

    p.expect("keyword", "from")
    tables = [p.expect("ident").text]
    p.accept("ident")  # optional alias
    join_conditions: list[tuple[str, str]] = []
    while p.accept("keyword", "join"):
        tables.append(p.expect("ident").text)
        p.accept("ident")  # optional alias
        p.expect("keyword", "on")
        left = p._column_name()
        p.expect("op", "=")
        right = p._column_name()
        join_conditions.append((left, right))

    where = None
    if p.accept("keyword", "where"):
        where = p.parse_expr()

    group_by: list[str] = []
    if p.accept("keyword", "group"):
        p.expect("keyword", "by")
        group_by.append(p._column_name())
        while p.accept("op", ","):
            group_by.append(p._column_name())

    having = None
    if p.accept("keyword", "having"):
        having = p.parse_expr()

    order_by: list[tuple] = []
    if p.accept("keyword", "order"):
        p.expect("keyword", "by")
        while True:
            expr = p.parse_expr()
            desc = bool(p.accept("keyword", "desc"))
            if not desc:
                p.accept("keyword", "asc")
            order_by.append((expr, desc))
            if not p.accept("op", ","):
                break

    limit = None
    if p.accept("keyword", "limit"):
        limit = int(p.expect("number").text)

    if p.peek() is not None:
        raise PlanError(f"trailing tokens starting at {p.peek()}")
    return ParsedQuery(
        select=select,
        tables=tables,
        join_conditions=join_conditions,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=limit,
    )


def compile_plan(query: ParsedQuery) -> Operator:
    """Lower a parsed query to a kernel plan — joins in written order."""
    plan: Operator = Scan(query.tables[0])
    for table, (left_col, right_col) in zip(query.tables[1:], query.join_conditions):
        plan = HashJoin(plan, Scan(table), [left_col], [right_col])
    if query.where is not None:
        plan = Filter(plan, query.where)

    if query.has_aggregates or query.group_by:
        aggs = {name: item for name, item in query.select if isinstance(item, Agg)}
        plan = Aggregate(plan, keys=list(query.group_by), aggs=aggs)
        if query.having is not None:
            plan = Filter(plan, query.having)
        # Non-aggregate select items must be group keys.
        for name, item in query.select:
            if not isinstance(item, Agg) and not (
                isinstance(item, Col) and item.name in query.group_by
            ):
                raise PlanError(f"{name!r} is neither aggregated nor grouped")
    else:
        plan = Project(plan, {name: item for name, item in query.select})

    if query.order_by:
        plan = Sort(plan, query.order_by)
    if query.limit is not None:
        plan = Limit(plan, query.limit)
    return plan


def execute(sql: str, db: Database) -> list[dict]:
    """Parse, compile, and run a HiveQL statement against a database."""
    from repro.relational.operators import run

    return run(compile_plan(parse(sql)), db)

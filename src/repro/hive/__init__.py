"""Hive model: metastore layouts, RCFile storage, and the MR query engine."""

from repro.hive.engine import (
    JAVA_HASH_OVERHEAD,
    LZO_RATIO,
    HiveEngine,
    HiveQueryResult,
)
from repro.hive.hiveql import execute as execute_hiveql
from repro.hive.hiveql import parse as parse_hiveql
from repro.hive.metastore import TPCH_LAYOUTS, HiveTableLayout, Metastore
from repro.hive.rcfile import decode, encode, measure_compression_ratio, read_column

__all__ = [
    "JAVA_HASH_OVERHEAD",
    "LZO_RATIO",
    "HiveEngine",
    "HiveQueryResult",
    "TPCH_LAYOUTS",
    "HiveTableLayout",
    "Metastore",
    "decode",
    "encode",
    "measure_compression_ratio",
    "read_column",
    "execute_hiveql",
    "parse_hiveql",
]

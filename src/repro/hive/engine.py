"""The Hive query engine model: lowers plan specs to MapReduce jobs.

Given a :class:`~repro.tpch.plans.QuerySpec`, a calibrated
:class:`~repro.tpch.volumes.VolumeModel`, and the cluster profile, the engine
produces the job sequence Hive 0.7 would run — joins in as-written order,
map joins only where hinted and only when the hash table fits, common joins
shuffling both inputs, one reduce round (reducers = total slots, per Section
3.2.1) — and costs each job with the MapReduce scheduler model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigurationError, PlanError
from repro.hdfs.filesystem import DEFAULT_BLOCK_SIZE
from repro.hive.metastore import Metastore
from repro.mapreduce.jobs import (
    HadoopParams,
    JobResult,
    JobTracker,
    MapPhase,
    schedule_tasks,
    schedule_tasks_recovering,
    task_waves,
)
from repro.simcluster.profile import HardwareProfile, paper_testbed
from repro.tpch.plans import QuerySpec, spec_for
from repro.tpch.volumes import Calibration, VolumeModel

# Map outputs and intermediate tables are LZO-compressed (Section 3.2.1).
LZO_RATIO = 0.5
# Intermediate tables keep only the columns later stages need; the kernel's
# measured widths carry every merged column, so prune them for costing.
INTERMEDIATE_PROJECTION = 0.5
# In-heap expansion of a Java hash table relative to raw bytes.
JAVA_HASH_OVERHEAD = 6.0


@dataclass
class HiveQueryResult:
    """Per-job breakdown of one simulated Hive query execution."""

    number: int
    scale_factor: float
    jobs: list[JobResult] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(j.total_time for j in self.jobs)

    def job(self, name: str) -> JobResult:
        for j in self.jobs:
            if j.name == name or j.name == f"{name}.backup":
                return j
        raise KeyError(f"no job {name!r} in {[j.name for j in self.jobs]}")

    @property
    def map_time(self) -> float:
        return sum(j.map_time for j in self.jobs)


@dataclass
class FaultedHiveResult:
    """Healthy-vs-faulted comparison of one Hive query under a node fault.

    Hive inherits MapReduce's task-granular recovery: a crash costs only the
    lost tasks' re-execution (plus degraded capacity afterwards), never a
    query restart — the contrast :class:`repro.pdw.engine.PdwEngine` makes.
    """

    number: int
    scale_factor: float
    healthy: HiveQueryResult
    faulted_total: float
    fault: dict = field(default_factory=dict)
    killed_attempts: int = 0
    reexecuted_tasks: int = 0
    speculative_copies: int = 0
    wasted_task_seconds: float = 0.0
    affected_jobs: list[str] = field(default_factory=list)

    @property
    def delay(self) -> float:
        return self.faulted_total - self.healthy.total_time


class HiveEngine:
    """Cost model for Hive-on-Hadoop over the calibrated TPC-H volumes."""

    def __init__(
        self,
        calibration: Calibration,
        profile: HardwareProfile | None = None,
        params: HadoopParams | None = None,
        cpu_weights: dict[int, float] | None = None,
        index_support: bool = False,
    ):
        self.profile = profile or paper_testbed()
        self.base_params = params or HadoopParams()
        self.volumes: VolumeModel = calibration.volumes
        self.metastore = Metastore(compression_ratios=calibration.rcfile_ratios)
        self.cpu_weights = dict(cpu_weights or {})
        # The paper's future-work scenario (Section 3.3.2): a Hive whose
        # optimizer exploits indexes, letting selective scans skip data.
        self.index_support = index_support

    # -- volume resolution ------------------------------------------------------

    def _params_for(self, number: int) -> HadoopParams:
        weight = self.cpu_weights.get(number, 1.0)
        if weight == 1.0:
            return self.base_params
        return replace(
            self.base_params,
            map_scan_rate=self.base_params.map_scan_rate / weight,
            reduce_rate=self.base_params.reduce_rate / weight,
        )

    def _map_phase(self, spec: QuerySpec, ref: str, sf: float, params) -> MapPhase:
        """Files the map phase of a job reading ``ref`` must process."""
        scan = spec.scan_for(ref)
        if scan is not None:
            files = self.metastore.file_sizes(scan.table, sf)
            if self.index_support and scan.out is not None:
                # Index-assisted scan: read only the qualifying fraction of
                # each file (plus a 2% index-probe floor).
                fraction = max(
                    0.02,
                    min(1.0, self.volumes.rows(scan.out, sf)
                        / max(1.0, self.volumes.rows(scan.table, sf))),
                )
                files = [size * fraction for size in files]
            return MapPhase(files, params).split_for_blocks(DEFAULT_BLOCK_SIZE)
        # Intermediate table: projected columns, stored LZO-compressed,
        # split by HDFS block.
        size = self.volumes.bytes(ref, sf) * INTERMEDIATE_PROJECTION * LZO_RATIO
        blocks = max(1, math.ceil(size / DEFAULT_BLOCK_SIZE))
        return MapPhase([size / blocks] * blocks, params)

    def _stream_bytes(self, ref: str, sf: float) -> float:
        """Post-filter volume of ``ref`` as it flows through a shuffle (LZO)."""
        factor = LZO_RATIO
        if not self.volumes.is_base_table(ref):
            factor *= INTERMEDIATE_PROJECTION
        return self.volumes.bytes(ref, sf) * factor

    def _hashtable_bytes(self, ref: str, sf: float) -> float:
        return self.volumes.bytes(ref, sf) * JAVA_HASH_OVERHEAD

    def _hdfs_write_time(self, raw_bytes: float) -> float:
        """Writing a job's output with 3x replication (2 remote copies)."""
        network = self.profile.nodes * self.profile.network_bandwidth
        return 2.0 * raw_bytes * LZO_RATIO / network

    # -- job construction --------------------------------------------------------

    def _join_job(self, tracker, spec, join, sf, params) -> JobResult:
        out_bytes = self.volumes.bytes(join.out, sf) if join.out else 0.0

        both_base = (
            spec.scan_for(join.left) is not None and spec.scan_for(join.right) is not None
        )
        if join.bucket_join_ok and both_base:
            left_table = spec.scan_for(join.left).table
            right_table = spec.scan_for(join.right).table
            if self.metastore.buckets_compatible(left_table, right_table):
                small_table = min(
                    (left_table, right_table),
                    key=lambda t: self.volumes.bytes(t, sf),
                )
                buckets = self.metastore.layout(small_table).bucket_count
                bucket_bytes = (
                    self.volumes.bytes(small_table, sf) / buckets * JAVA_HASH_OVERHEAD
                )
                budget = params.task_heap_bytes * params.hashtable_memory_fraction
                if bucket_bytes <= budget:
                    big = join.left if small_table == right_table else join.right
                    phase = self._map_phase(spec, big, sf, params)
                    result = tracker.run_map_only(f"join.{join.out}", phase)
                    result.map_time += bucket_bytes / self.profile.aggregate_disk_bandwidth
                    result.notes.append("bucketed map join")
                    result.reduce_time += self._hdfs_write_time(out_bytes)
                    return result

        left_bytes = self.volumes.bytes(join.left, sf)
        right_bytes = self.volumes.bytes(join.right, sf)
        small, big = (
            (join.right, join.left) if right_bytes <= left_bytes else (join.left, join.right)
        )

        if join.try_map_join:
            big_phase = self._map_phase(spec, big, sf, params)
            backup_shuffle = self._stream_bytes(big, sf) + self._stream_bytes(small, sf)
            result = tracker.run_map_join(
                f"join.{join.out}",
                big_phase,
                self._hashtable_bytes(small, sf),
                backup_shuffle_bytes=backup_shuffle,
                backup_reduce_bytes=backup_shuffle,
            )
            result.reduce_time += self._hdfs_write_time(out_bytes)
            return result

        # Common join: scan both inputs in the map phase, shuffle both.
        big_phase = self._map_phase(spec, big, sf, params)
        small_phase = self._map_phase(spec, small, sf, params)
        phase = MapPhase(big_phase.file_bytes + small_phase.file_bytes, params)
        shuffle = self._stream_bytes(big, sf) + self._stream_bytes(small, sf)
        result = tracker.run_map_reduce(f"join.{join.out}", phase, shuffle, shuffle)
        result.reduce_time += self._hdfs_write_time(out_bytes)
        result.notes.append("common join")
        return result

    def _agg_job(self, tracker, spec, agg, sf, params) -> JobResult:
        phase = self._map_phase(spec, agg.input, sf, params)
        # Map-side aggregation is enabled: the shuffle carries only the
        # partially aggregated output, not the scanned input.
        out_ref = agg.out
        out_bytes = self.volumes.bytes(out_ref, sf) if out_ref else 64.0 * 2**20
        shuffle = out_bytes * LZO_RATIO
        result = tracker.run_map_reduce(
            f"agg.{out_ref or agg.input}", phase, shuffle, shuffle
        )
        result.reduce_time += self._hdfs_write_time(out_bytes)
        result.notes.append("map-side aggregation")
        return result

    def _small_job(self, name: str, params, work: float = 10.0) -> JobResult:
        return JobResult(
            name=name,
            map_time=work,
            shuffle_time=0.0,
            reduce_time=0.0,
            overhead=params.job_overhead,
        )

    # -- tracing ------------------------------------------------------------------

    def _emit_trace(self, result: HiveQueryResult, tracer, metrics,
                    params=None) -> None:
        """Lay the finished job sequence out as spans on one query timeline.

        Jobs run back to back (Hive 0.7 submits each stage after the last),
        so the cursor advances by each job's total; per-job phase spans and
        per-attempt task spans nest inside.  Emitted *after* all cost
        adjustments, so span totals reconcile exactly with the reported
        simulated times.

        Causal links make the implicit schedule explicit for the critical
        path and what-if layers: ``stage`` chains consecutive jobs,
        ``barrier``/``shuffle-barrier`` chain a job's phases, and ``slot``
        chains the back-to-back task attempts sharing one slot.  Map/reduce
        phase spans also carry the per-task ``startup`` cost so a replay can
        subtract it (``--whatif map-startup=0``).
        """
        params = params or self.base_params
        query = tracer.add(
            f"hive.q{result.number}", 0.0, result.total_time,
            cat="query", node="hive", lane="query",
            sf=result.scale_factor,
        )
        cursor = 0.0
        prev_job_span = None
        for job in result.jobs:
            job_span = tracer.add(
                f"job.{job.name}", cursor, cursor + job.total_time,
                cat="job", node="hive", lane="jobs", parent=query.span_id,
                failed_mapjoin=job.failed_mapjoin,
            )
            if prev_job_span is not None:
                tracer.link(prev_job_span, job_span, "stage")
            prev_job_span = job_span
            t = cursor
            prev_phase_span = None
            for phase, length, extra in (
                ("map", job.map_time,
                 {"tasks": job.map_tasks, "waves": job.map_waves,
                  "startup": params.map_task_startup}),
                ("shuffle", job.shuffle_time, {"bytes": job.shuffle_bytes}),
                ("reduce", job.reduce_time,
                 {"tasks": job.reduce_tasks,
                  "startup": params.reduce_task_startup}),
                ("overhead", job.overhead, {}),
            ):
                if length <= 0.0:
                    continue
                phase_span = tracer.add(
                    f"{job.name}.{phase}", t, t + length,
                    cat="phase", node="hive", lane=phase,
                    parent=job_span.span_id, **extra,
                )
                if prev_phase_span is not None:
                    kind = ("shuffle-barrier" if "shuffle" in
                            (phase, prev_phase_span.lane) else "barrier")
                    tracer.link(prev_phase_span, phase_span, kind)
                prev_phase_span = phase_span
                task_spans = (
                    job.map_task_spans if phase == "map"
                    else job.reduce_task_spans if phase == "reduce" else ()
                )
                last_in_slot: dict = {}
                for slot, start, end in task_spans:
                    task_span = tracer.add(
                        f"{phase}-task", t + start, t + end,
                        cat="task", node="hive", lane=f"{phase}-slot-{slot:03d}",
                        parent=phase_span.span_id,
                    )
                    prev_task = last_in_slot.get(slot)
                    if prev_task is not None:
                        tracer.link(prev_task, task_span, "slot")
                    last_in_slot[slot] = task_span
                t += length
            cursor += job.total_time
        if metrics:
            metrics.counter("hive.jobs").inc(len(result.jobs))
            metrics.counter("hive.map_tasks").inc(
                sum(j.map_tasks for j in result.jobs)
            )
            metrics.counter("hive.reduce_tasks").inc(
                sum(j.reduce_tasks for j in result.jobs)
            )
            metrics.counter("hive.shuffle_bytes").inc(
                sum(j.shuffle_bytes for j in result.jobs)
            )
            metrics.counter("hive.failed_mapjoins").inc(
                sum(1 for j in result.jobs if j.failed_mapjoin)
            )

    def _emit_utilization(self, result: HiveQueryResult, params, sampler) -> None:
        """Feed the finished job layout into a utilization sampler.

        Walks the same back-to-back job/phase cursor as :meth:`_emit_trace`
        so the series align with the phase spans.  Per phase:

        * ``map-slots`` / ``reduce-slots`` — fraction of configured task
          slots occupied, from the per-attempt spans;
        * ``cpu`` — active tasks against the map-slot count (each task
          saturates one decode/agg core; this is what makes Q1's map phase
          read as CPU-bound);
        * ``disk`` — each map task pulls ``map_scan_rate`` compressed
          bytes/s against the cluster's sequential HDFS read bandwidth
          (70 MB/s per node consumed vs 400 MB/s deliverable — the paper's
          Section 4.3 headroom argument);
        * ``network`` — shuffles achieve ``shuffle_efficiency`` of the
          aggregate NIC bandwidth while they run.
        """
        from repro.mapreduce.jobs import feed_task_occupancy

        profile = self.profile
        map_slots = params.map_slots(profile)
        reduce_slots = params.reduce_slots(profile)
        hdfs_read_capacity = profile.nodes * profile.hdfs_seq_read_bandwidth
        nic_capacity = profile.nodes * profile.network_bandwidth
        cursor = 0.0
        for job in result.jobs:
            t = cursor
            if job.map_time > 0.0:
                feed_task_occupancy(sampler, "hive", "map-slots",
                                    job.map_task_spans, map_slots, offset=t)
                feed_task_occupancy(sampler, "hive", "cpu",
                                    job.map_task_spans, map_slots, offset=t)
                feed_task_occupancy(sampler, "hive", "disk",
                                    job.map_task_spans, hdfs_read_capacity,
                                    offset=t, level=params.map_scan_rate)
                t += job.map_time
            if job.shuffle_time > 0.0:
                sampler.accumulate(
                    "hive", "network", t, t + job.shuffle_time,
                    level=params.shuffle_bandwidth(profile),
                    capacity=nic_capacity,
                )
                t += job.shuffle_time
            if job.reduce_time > 0.0:
                feed_task_occupancy(sampler, "hive", "reduce-slots",
                                    job.reduce_task_spans, reduce_slots, offset=t)
                feed_task_occupancy(sampler, "hive", "cpu",
                                    job.reduce_task_spans, map_slots, offset=t)
            cursor += job.total_time
        sampler.finish(result.total_time)

    # -- public API ---------------------------------------------------------------

    def run_query(self, number: int, scale_factor: float,
                  spec: QuerySpec | None = None,
                  tracer=None, metrics=None, sampler=None,
                  prof=None) -> HiveQueryResult:
        """Simulate one TPC-H query, returning the per-job time breakdown.

        ``spec`` overrides the stock plan spec (used by ablations, e.g.
        forcing a different join order).  ``tracer``/``metrics``/``sampler``
        (see :mod:`repro.obs`) record the mechanism breakdown; ``prof``
        charges the engine's host time to the ``hive.query`` subsystem
        counter (span construction nests under ``span.construct``).  All
        default to off and do not perturb the costing.
        """
        if prof is not None:
            with prof.section("hive.query"):
                return self._run_query_inner(
                    number, scale_factor, spec, tracer, metrics, sampler,
                    prof)
        return self._run_query_inner(
            number, scale_factor, spec, tracer, metrics, sampler, None)

    def _run_query_inner(self, number, scale_factor, spec, tracer, metrics,
                         sampler, prof) -> HiveQueryResult:
        if spec is None:
            spec = spec_for(number)
        params = self._params_for(number)
        tracker = JobTracker(
            self.profile, params,
            trace_tasks=bool(tracer) or bool(sampler),
        )
        result = HiveQueryResult(number=number, scale_factor=scale_factor)

        for ref in spec.hive_materialize_scans:
            phase = self._map_phase(spec, ref, scale_factor, params)
            job = tracker.run_map_only(f"mat.{ref}", phase)
            job.reduce_time += self._hdfs_write_time(
                self.volumes.bytes(ref, scale_factor)
            )
            result.jobs.append(job)
        for i in range(spec.hive_fs_jobs):
            result.jobs.append(self._small_job(f"fs.{i}", params, params.fs_job_time))

        for join in spec.effective_hive_joins():
            result.jobs.append(self._join_job(tracker, spec, join, scale_factor, params))
        for agg in spec.aggs:
            result.jobs.append(self._agg_job(tracker, spec, agg, scale_factor, params))
        if spec.has_order_by:
            result.jobs.append(self._small_job("sort", params))
        for i in range(spec.hive_extra_jobs):
            result.jobs.append(self._small_job(f"extra.{i}", params))
        if tracer:
            if prof is not None:
                with prof.section("span.construct"):
                    self._emit_trace(result, tracer, metrics, params=params)
            else:
                self._emit_trace(result, tracer, metrics, params=params)
        if sampler:
            self._emit_utilization(result, params, sampler)
        return result

    # -- fault injection ----------------------------------------------------------

    def _degraded_reduce_time(self, job: JobResult, params,
                              surviving_nodes: int, scale: float) -> float:
        """Reduce-phase time with the wave count recomputed on fewer slots.

        The span-derived part re-schedules into waves over the surviving
        reduce slots; the remainder (the HDFS output write folded into
        ``reduce_time`` after the tracker ran) scales with lost network
        capacity.
        """
        if not job.reduce_task_spans:
            return job.reduce_time * scale
        task_time = job.reduce_task_spans[0][2] - job.reduce_task_spans[0][1]
        old_slots = params.reduce_slots(self.profile)
        span_time = task_waves(len(job.reduce_task_spans), old_slots) * task_time
        extra = max(0.0, job.reduce_time - span_time)
        new_slots = surviving_nodes * params.reduce_slots_per_node
        return task_waves(len(job.reduce_task_spans), new_slots) * task_time + extra * scale

    def run_query_faulted(self, number: int, scale_factor: float, fault,
                          spec: QuerySpec | None = None,
                          tracer=None, metrics=None,
                          sampler=None) -> FaultedHiveResult:
        """Re-cost one query under a node fault, with MapReduce recovery.

        ``fault`` is a :class:`repro.faults.plan.FaultSpec` (duck-typed) of
        kind ``crash`` or ``straggler`` targeting node ``nK``.  ``fault.at``
        <= 1 is a fraction of the healthy runtime, else absolute seconds on
        the healthy timeline.

        Recovery semantics (Section 2's fault-tolerance contrast):

        * **crash** — the wave active at the crash re-executes the dead
          node's in-flight *and* completed map tasks on surviving slots
          (map output lived on the node's disks); every later phase runs on
          ``n-1`` nodes (fewer slots, less shuffle bandwidth).  A crash
          mid-shuffle/reduce degrades the job's remaining time by the lost
          capacity fraction.
        * **straggler** — map waves overlapping the fault window run with
          the slow node stretched ``fault.magnitude`` x and speculative
          backup copies on healthy slots.

        The healthy run is simulated internally with task tracing; the
        caller's ``tracer``/``sampler`` receive only the *faulted* timeline
        (fault marker, degraded-job spans, degraded-capacity series).
        """
        if fault.kind not in ("crash", "straggler"):
            raise ConfigurationError(
                f"hive fault injection handles crash/straggler, not {fault.kind!r}"
            )
        node = fault.target_index()
        nodes = self.profile.nodes
        if not 0 <= node < nodes:
            raise ConfigurationError(
                f"fault targets node {node}, cluster has {nodes}"
            )
        if nodes < 2:
            raise ConfigurationError("need >= 2 nodes to survive a node fault")

        from repro.obs.trace import Tracer

        params = self._params_for(number)
        healthy = self.run_query(number, scale_factor, spec=spec, tracer=Tracer())
        total = healthy.total_time
        at = fault.at * total if fault.at <= 1.0 else fault.at
        window_end = at + fault.duration if fault.duration else total
        scale = nodes / (nodes - 1)
        slots_per_node = params.map_slots_per_node
        map_slots = params.map_slots(self.profile)

        out = FaultedHiveResult(
            number=number, scale_factor=scale_factor, healthy=healthy,
            faulted_total=0.0,
            fault={"kind": fault.kind, "target": fault.target, "at": at},
        )

        def map_durations(job: JobResult) -> list[float]:
            return [end - start for _slot, start, end in job.map_task_spans]

        healthy_cursor = 0.0
        faulted_cursor = 0.0
        for job in healthy.jobs:
            job_start = healthy_cursor
            job_end = job_start + job.total_time
            healthy_cursor = job_end
            new_total = job.total_time
            affected = False

            if fault.kind == "crash":
                if job_end <= at:
                    pass  # finished before the crash
                elif job_start >= at:
                    # Whole job runs on the surviving n-1 nodes.
                    affected = True
                    durations = map_durations(job)
                    new_map = (
                        schedule_tasks(durations, (nodes - 1) * slots_per_node)
                        if durations else job.map_time
                    )
                    new_total = (
                        new_map + job.shuffle_time * scale
                        + self._degraded_reduce_time(job, params, nodes - 1, scale)
                        + job.overhead
                    )
                else:
                    # The job active at the crash.
                    affected = True
                    map_end = job_start + job.map_time
                    if at < map_end and job.map_task_spans:
                        recovered = schedule_tasks_recovering(
                            map_durations(job), map_slots, slots_per_node,
                            crash_node=node, crash_time=at - job_start,
                        )
                        out.killed_attempts += recovered.killed_attempts
                        out.reexecuted_tasks += recovered.reexecuted_tasks
                        out.wasted_task_seconds += recovered.wasted_time
                        new_total = (
                            recovered.makespan + job.shuffle_time * scale
                            + self._degraded_reduce_time(job, params, nodes - 1, scale)
                            + job.overhead
                        )
                    else:
                        # Mid-shuffle/reduce (or an untraced small job): the
                        # remaining work degrades by the lost capacity.
                        done = at - job_start
                        new_total = done + (job.total_time - done) * scale
            else:  # straggler
                map_start, map_end = job_start, job_start + job.map_time
                durations = map_durations(job)
                if durations and map_start < window_end and map_end > at:
                    affected = True
                    recovered = schedule_tasks_recovering(
                        durations, map_slots, slots_per_node,
                        straggler_node=node, slow_factor=fault.magnitude,
                    )
                    out.speculative_copies += recovered.speculative_copies
                    out.wasted_task_seconds += recovered.wasted_time
                    new_total = job.total_time - job.map_time + recovered.makespan

            if affected:
                out.affected_jobs.append(job.name)
                if tracer:
                    tracer.add(
                        f"degraded.{job.name}", faulted_cursor,
                        faulted_cursor + new_total,
                        cat="fault", node="hive", lane="degraded",
                        healthy_time=job.total_time,
                    )
                if sampler:
                    sampler.accumulate(
                        "hive", "fault-degraded", faulted_cursor,
                        faulted_cursor + new_total, level=1.0, capacity=1.0,
                    )
            faulted_cursor += new_total

        out.faulted_total = faulted_cursor
        if tracer:
            tracer.add(
                f"fault.{fault.kind}", at, at, cat="fault", node="hive",
                lane="faults", target=fault.target,
            )
        if metrics:
            metrics.counter("hive.faults.injected").inc()
            metrics.counter("hive.faults.reexecuted_tasks").inc(out.reexecuted_tasks)
            metrics.counter("hive.faults.speculative_copies").inc(out.speculative_copies)
        if sampler:
            sampler.finish(max(out.faulted_total, total))
        return out

    def query_time(self, number: int, scale_factor: float) -> float:
        return self.run_query(number, scale_factor).total_time

    def load_time(self, scale_factor: float) -> float:
        """Table 2's Hive load: parallel HDFS copy + RCFile conversion job.

        Lumped linear model calibrated to the measured 250 GB point: the
        cluster sustains ~116 MB/s end-to-end (the GZIP conversion writers
        are the bottleneck, not the disks).
        """
        nominal_bytes = scale_factor * 1e9
        return 120.0 + nominal_bytes / 116e6

    def validate_spec(self, number: int, scale_factor: float = 250.0) -> None:
        """Resolve every ref in a spec; raises PlanError on a missing volume."""
        spec = spec_for(number)
        for ref in spec.all_refs():
            self.volumes.volume(ref, scale_factor)
        if spec.hive_joins is not None and not spec.joins:
            raise PlanError(f"q{number}: hive_joins without a base join order")

"""The Hive query engine model: lowers plan specs to MapReduce jobs.

Given a :class:`~repro.tpch.plans.QuerySpec`, a calibrated
:class:`~repro.tpch.volumes.VolumeModel`, and the cluster profile, the engine
produces the job sequence Hive 0.7 would run — joins in as-written order,
map joins only where hinted and only when the hash table fits, common joins
shuffling both inputs, one reduce round (reducers = total slots, per Section
3.2.1) — and costs each job with the MapReduce scheduler model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.common.errors import PlanError
from repro.hdfs.filesystem import DEFAULT_BLOCK_SIZE
from repro.hive.metastore import Metastore
from repro.mapreduce.jobs import HadoopParams, JobResult, JobTracker, MapPhase
from repro.simcluster.profile import HardwareProfile, paper_testbed
from repro.tpch.plans import QuerySpec, spec_for
from repro.tpch.volumes import Calibration, VolumeModel

# Map outputs and intermediate tables are LZO-compressed (Section 3.2.1).
LZO_RATIO = 0.5
# Intermediate tables keep only the columns later stages need; the kernel's
# measured widths carry every merged column, so prune them for costing.
INTERMEDIATE_PROJECTION = 0.5
# In-heap expansion of a Java hash table relative to raw bytes.
JAVA_HASH_OVERHEAD = 6.0


@dataclass
class HiveQueryResult:
    """Per-job breakdown of one simulated Hive query execution."""

    number: int
    scale_factor: float
    jobs: list[JobResult] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(j.total_time for j in self.jobs)

    def job(self, name: str) -> JobResult:
        for j in self.jobs:
            if j.name == name or j.name == f"{name}.backup":
                return j
        raise KeyError(f"no job {name!r} in {[j.name for j in self.jobs]}")

    @property
    def map_time(self) -> float:
        return sum(j.map_time for j in self.jobs)


class HiveEngine:
    """Cost model for Hive-on-Hadoop over the calibrated TPC-H volumes."""

    def __init__(
        self,
        calibration: Calibration,
        profile: HardwareProfile | None = None,
        params: HadoopParams | None = None,
        cpu_weights: dict[int, float] | None = None,
        index_support: bool = False,
    ):
        self.profile = profile or paper_testbed()
        self.base_params = params or HadoopParams()
        self.volumes: VolumeModel = calibration.volumes
        self.metastore = Metastore(compression_ratios=calibration.rcfile_ratios)
        self.cpu_weights = dict(cpu_weights or {})
        # The paper's future-work scenario (Section 3.3.2): a Hive whose
        # optimizer exploits indexes, letting selective scans skip data.
        self.index_support = index_support

    # -- volume resolution ------------------------------------------------------

    def _params_for(self, number: int) -> HadoopParams:
        weight = self.cpu_weights.get(number, 1.0)
        if weight == 1.0:
            return self.base_params
        return replace(
            self.base_params,
            map_scan_rate=self.base_params.map_scan_rate / weight,
            reduce_rate=self.base_params.reduce_rate / weight,
        )

    def _map_phase(self, spec: QuerySpec, ref: str, sf: float, params) -> MapPhase:
        """Files the map phase of a job reading ``ref`` must process."""
        scan = spec.scan_for(ref)
        if scan is not None:
            files = self.metastore.file_sizes(scan.table, sf)
            if self.index_support and scan.out is not None:
                # Index-assisted scan: read only the qualifying fraction of
                # each file (plus a 2% index-probe floor).
                fraction = max(
                    0.02,
                    min(1.0, self.volumes.rows(scan.out, sf)
                        / max(1.0, self.volumes.rows(scan.table, sf))),
                )
                files = [size * fraction for size in files]
            return MapPhase(files, params).split_for_blocks(DEFAULT_BLOCK_SIZE)
        # Intermediate table: projected columns, stored LZO-compressed,
        # split by HDFS block.
        size = self.volumes.bytes(ref, sf) * INTERMEDIATE_PROJECTION * LZO_RATIO
        blocks = max(1, math.ceil(size / DEFAULT_BLOCK_SIZE))
        return MapPhase([size / blocks] * blocks, params)

    def _stream_bytes(self, ref: str, sf: float) -> float:
        """Post-filter volume of ``ref`` as it flows through a shuffle (LZO)."""
        factor = LZO_RATIO
        if not self.volumes.is_base_table(ref):
            factor *= INTERMEDIATE_PROJECTION
        return self.volumes.bytes(ref, sf) * factor

    def _hashtable_bytes(self, ref: str, sf: float) -> float:
        return self.volumes.bytes(ref, sf) * JAVA_HASH_OVERHEAD

    def _hdfs_write_time(self, raw_bytes: float) -> float:
        """Writing a job's output with 3x replication (2 remote copies)."""
        network = self.profile.nodes * self.profile.network_bandwidth
        return 2.0 * raw_bytes * LZO_RATIO / network

    # -- job construction --------------------------------------------------------

    def _join_job(self, tracker, spec, join, sf, params) -> JobResult:
        out_bytes = self.volumes.bytes(join.out, sf) if join.out else 0.0

        both_base = (
            spec.scan_for(join.left) is not None and spec.scan_for(join.right) is not None
        )
        if join.bucket_join_ok and both_base:
            left_table = spec.scan_for(join.left).table
            right_table = spec.scan_for(join.right).table
            if self.metastore.buckets_compatible(left_table, right_table):
                small_table = min(
                    (left_table, right_table),
                    key=lambda t: self.volumes.bytes(t, sf),
                )
                buckets = self.metastore.layout(small_table).bucket_count
                bucket_bytes = (
                    self.volumes.bytes(small_table, sf) / buckets * JAVA_HASH_OVERHEAD
                )
                budget = params.task_heap_bytes * params.hashtable_memory_fraction
                if bucket_bytes <= budget:
                    big = join.left if small_table == right_table else join.right
                    phase = self._map_phase(spec, big, sf, params)
                    result = tracker.run_map_only(f"join.{join.out}", phase)
                    result.map_time += bucket_bytes / self.profile.aggregate_disk_bandwidth
                    result.notes.append("bucketed map join")
                    result.reduce_time += self._hdfs_write_time(out_bytes)
                    return result

        left_bytes = self.volumes.bytes(join.left, sf)
        right_bytes = self.volumes.bytes(join.right, sf)
        small, big = (
            (join.right, join.left) if right_bytes <= left_bytes else (join.left, join.right)
        )

        if join.try_map_join:
            big_phase = self._map_phase(spec, big, sf, params)
            backup_shuffle = self._stream_bytes(big, sf) + self._stream_bytes(small, sf)
            result = tracker.run_map_join(
                f"join.{join.out}",
                big_phase,
                self._hashtable_bytes(small, sf),
                backup_shuffle_bytes=backup_shuffle,
                backup_reduce_bytes=backup_shuffle,
            )
            result.reduce_time += self._hdfs_write_time(out_bytes)
            return result

        # Common join: scan both inputs in the map phase, shuffle both.
        big_phase = self._map_phase(spec, big, sf, params)
        small_phase = self._map_phase(spec, small, sf, params)
        phase = MapPhase(big_phase.file_bytes + small_phase.file_bytes, params)
        shuffle = self._stream_bytes(big, sf) + self._stream_bytes(small, sf)
        result = tracker.run_map_reduce(f"join.{join.out}", phase, shuffle, shuffle)
        result.reduce_time += self._hdfs_write_time(out_bytes)
        result.notes.append("common join")
        return result

    def _agg_job(self, tracker, spec, agg, sf, params) -> JobResult:
        phase = self._map_phase(spec, agg.input, sf, params)
        # Map-side aggregation is enabled: the shuffle carries only the
        # partially aggregated output, not the scanned input.
        out_ref = agg.out
        out_bytes = self.volumes.bytes(out_ref, sf) if out_ref else 64.0 * 2**20
        shuffle = out_bytes * LZO_RATIO
        result = tracker.run_map_reduce(
            f"agg.{out_ref or agg.input}", phase, shuffle, shuffle
        )
        result.reduce_time += self._hdfs_write_time(out_bytes)
        result.notes.append("map-side aggregation")
        return result

    def _small_job(self, name: str, params, work: float = 10.0) -> JobResult:
        return JobResult(
            name=name,
            map_time=work,
            shuffle_time=0.0,
            reduce_time=0.0,
            overhead=params.job_overhead,
        )

    # -- tracing ------------------------------------------------------------------

    def _emit_trace(self, result: HiveQueryResult, tracer, metrics) -> None:
        """Lay the finished job sequence out as spans on one query timeline.

        Jobs run back to back (Hive 0.7 submits each stage after the last),
        so the cursor advances by each job's total; per-job phase spans and
        per-attempt task spans nest inside.  Emitted *after* all cost
        adjustments, so span totals reconcile exactly with the reported
        simulated times.
        """
        query = tracer.add(
            f"hive.q{result.number}", 0.0, result.total_time,
            cat="query", node="hive", lane="query",
            sf=result.scale_factor,
        )
        cursor = 0.0
        for job in result.jobs:
            job_span = tracer.add(
                f"job.{job.name}", cursor, cursor + job.total_time,
                cat="job", node="hive", lane="jobs", parent=query.span_id,
                failed_mapjoin=job.failed_mapjoin,
            )
            t = cursor
            for phase, length, extra in (
                ("map", job.map_time,
                 {"tasks": job.map_tasks, "waves": job.map_waves}),
                ("shuffle", job.shuffle_time, {"bytes": job.shuffle_bytes}),
                ("reduce", job.reduce_time, {"tasks": job.reduce_tasks}),
                ("overhead", job.overhead, {}),
            ):
                if length <= 0.0:
                    continue
                phase_span = tracer.add(
                    f"{job.name}.{phase}", t, t + length,
                    cat="phase", node="hive", lane=phase,
                    parent=job_span.span_id, **extra,
                )
                task_spans = (
                    job.map_task_spans if phase == "map"
                    else job.reduce_task_spans if phase == "reduce" else ()
                )
                for slot, start, end in task_spans:
                    tracer.add(
                        f"{phase}-task", t + start, t + end,
                        cat="task", node="hive", lane=f"{phase}-slot-{slot:03d}",
                        parent=phase_span.span_id,
                    )
                t += length
            cursor += job.total_time
        if metrics:
            metrics.counter("hive.jobs").inc(len(result.jobs))
            metrics.counter("hive.map_tasks").inc(
                sum(j.map_tasks for j in result.jobs)
            )
            metrics.counter("hive.reduce_tasks").inc(
                sum(j.reduce_tasks for j in result.jobs)
            )
            metrics.counter("hive.shuffle_bytes").inc(
                sum(j.shuffle_bytes for j in result.jobs)
            )
            metrics.counter("hive.failed_mapjoins").inc(
                sum(1 for j in result.jobs if j.failed_mapjoin)
            )

    def _emit_utilization(self, result: HiveQueryResult, params, sampler) -> None:
        """Feed the finished job layout into a utilization sampler.

        Walks the same back-to-back job/phase cursor as :meth:`_emit_trace`
        so the series align with the phase spans.  Per phase:

        * ``map-slots`` / ``reduce-slots`` — fraction of configured task
          slots occupied, from the per-attempt spans;
        * ``cpu`` — active tasks against the map-slot count (each task
          saturates one decode/agg core; this is what makes Q1's map phase
          read as CPU-bound);
        * ``disk`` — each map task pulls ``map_scan_rate`` compressed
          bytes/s against the cluster's sequential HDFS read bandwidth
          (70 MB/s per node consumed vs 400 MB/s deliverable — the paper's
          Section 4.3 headroom argument);
        * ``network`` — shuffles achieve ``shuffle_efficiency`` of the
          aggregate NIC bandwidth while they run.
        """
        from repro.mapreduce.jobs import feed_task_occupancy

        profile = self.profile
        map_slots = params.map_slots(profile)
        reduce_slots = params.reduce_slots(profile)
        hdfs_read_capacity = profile.nodes * profile.hdfs_seq_read_bandwidth
        nic_capacity = profile.nodes * profile.network_bandwidth
        cursor = 0.0
        for job in result.jobs:
            t = cursor
            if job.map_time > 0.0:
                feed_task_occupancy(sampler, "hive", "map-slots",
                                    job.map_task_spans, map_slots, offset=t)
                feed_task_occupancy(sampler, "hive", "cpu",
                                    job.map_task_spans, map_slots, offset=t)
                feed_task_occupancy(sampler, "hive", "disk",
                                    job.map_task_spans, hdfs_read_capacity,
                                    offset=t, level=params.map_scan_rate)
                t += job.map_time
            if job.shuffle_time > 0.0:
                sampler.accumulate(
                    "hive", "network", t, t + job.shuffle_time,
                    level=params.shuffle_bandwidth(profile),
                    capacity=nic_capacity,
                )
                t += job.shuffle_time
            if job.reduce_time > 0.0:
                feed_task_occupancy(sampler, "hive", "reduce-slots",
                                    job.reduce_task_spans, reduce_slots, offset=t)
                feed_task_occupancy(sampler, "hive", "cpu",
                                    job.reduce_task_spans, map_slots, offset=t)
            cursor += job.total_time
        sampler.finish(result.total_time)

    # -- public API ---------------------------------------------------------------

    def run_query(self, number: int, scale_factor: float,
                  spec: QuerySpec | None = None,
                  tracer=None, metrics=None, sampler=None) -> HiveQueryResult:
        """Simulate one TPC-H query, returning the per-job time breakdown.

        ``spec`` overrides the stock plan spec (used by ablations, e.g.
        forcing a different join order).  ``tracer``/``metrics``/``sampler``
        (see :mod:`repro.obs`) record the mechanism breakdown; all default
        to off and do not perturb the costing.
        """
        if spec is None:
            spec = spec_for(number)
        params = self._params_for(number)
        tracker = JobTracker(
            self.profile, params,
            trace_tasks=bool(tracer) or bool(sampler),
        )
        result = HiveQueryResult(number=number, scale_factor=scale_factor)

        for ref in spec.hive_materialize_scans:
            phase = self._map_phase(spec, ref, scale_factor, params)
            job = tracker.run_map_only(f"mat.{ref}", phase)
            job.reduce_time += self._hdfs_write_time(
                self.volumes.bytes(ref, scale_factor)
            )
            result.jobs.append(job)
        for i in range(spec.hive_fs_jobs):
            result.jobs.append(self._small_job(f"fs.{i}", params, params.fs_job_time))

        for join in spec.effective_hive_joins():
            result.jobs.append(self._join_job(tracker, spec, join, scale_factor, params))
        for agg in spec.aggs:
            result.jobs.append(self._agg_job(tracker, spec, agg, scale_factor, params))
        if spec.has_order_by:
            result.jobs.append(self._small_job("sort", params))
        for i in range(spec.hive_extra_jobs):
            result.jobs.append(self._small_job(f"extra.{i}", params))
        if tracer:
            self._emit_trace(result, tracer, metrics)
        if sampler:
            self._emit_utilization(result, params, sampler)
        return result

    def query_time(self, number: int, scale_factor: float) -> float:
        return self.run_query(number, scale_factor).total_time

    def load_time(self, scale_factor: float) -> float:
        """Table 2's Hive load: parallel HDFS copy + RCFile conversion job.

        Lumped linear model calibrated to the measured 250 GB point: the
        cluster sustains ~116 MB/s end-to-end (the GZIP conversion writers
        are the bottleneck, not the disks).
        """
        nominal_bytes = scale_factor * 1e9
        return 120.0 + nominal_bytes / 116e6

    def validate_spec(self, number: int, scale_factor: float = 250.0) -> None:
        """Resolve every ref in a spec; raises PlanError on a missing volume."""
        spec = spec_for(number)
        for ref in spec.all_refs():
            self.volumes.volume(ref, scale_factor)
        if spec.hive_joins is not None and not spec.joins:
            raise PlanError(f"q{number}: hive_joins without a base join order")

"""A functional RCFile implementation (He et al., ICDE 2011).

RCFile stores a table as a sequence of *row groups*; within each group the
rows are decomposed into per-column byte runs that are compressed
independently.  This module implements a real encoder/decoder (zlib stands in
for GZIP — it is the same DEFLATE stream) so the reproduction can

* verify round-trip correctness on generated TPC-H data, and
* **measure** the compression ratio that the DSS cost model uses, instead of
  hard-coding one.

The paper's observations about RCFile — good compression but high CPU cost to
scan (~70 MB/s/node, Section 3.3.4.1) — are modelled in
:class:`~repro.mapreduce.jobs.HadoopParams.map_scan_rate`.
"""

from __future__ import annotations

import struct
import zlib

from repro.common.errors import StorageError

MAGIC = b"RCF1"
DEFAULT_ROW_GROUP = 4096


def _encode_value(value) -> bytes:
    if value is None:
        return b"\x00N"
    if isinstance(value, bool):
        raise StorageError("RCFile model does not store booleans")
    if isinstance(value, int):
        return b"\x00I" + struct.pack(">q", value)
    if isinstance(value, float):
        return b"\x00F" + struct.pack(">d", value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"\x00S" + struct.pack(">I", len(raw)) + raw
    raise StorageError(f"unsupported value type {type(value).__name__}")


def _decode_values(buf: bytes) -> list:
    values = []
    pos = 0
    n = len(buf)
    while pos < n:
        if buf[pos] != 0:
            raise StorageError("corrupt RCFile column run")
        kind = buf[pos + 1 : pos + 2]
        pos += 2
        if kind == b"N":
            values.append(None)
        elif kind == b"I":
            values.append(struct.unpack_from(">q", buf, pos)[0])
            pos += 8
        elif kind == b"F":
            values.append(struct.unpack_from(">d", buf, pos)[0])
            pos += 8
        elif kind == b"S":
            (length,) = struct.unpack_from(">I", buf, pos)
            pos += 4
            values.append(buf[pos : pos + length].decode("utf-8"))
            pos += length
        else:
            raise StorageError(f"unknown value kind {kind!r}")
    return values


def encode(rows: list[dict], columns: list[str], row_group_size: int = DEFAULT_ROW_GROUP) -> bytes:
    """Serialize rows into RCFile bytes (columnar row groups, DEFLATE)."""
    if row_group_size < 1:
        raise StorageError("row group size must be >= 1")
    out = [MAGIC, struct.pack(">I", len(columns))]
    for name in columns:
        raw = name.encode("utf-8")
        out.append(struct.pack(">I", len(raw)) + raw)

    for start in range(0, len(rows), row_group_size):
        group = rows[start : start + row_group_size]
        out.append(struct.pack(">I", len(group)))
        for name in columns:
            run = b"".join(_encode_value(r[name]) for r in group)
            packed = zlib.compress(run, level=6)
            out.append(struct.pack(">I", len(packed)) + packed)
    return b"".join(out)


def decode(data: bytes) -> tuple[list[str], list[dict]]:
    """Parse RCFile bytes back into ``(columns, rows)``."""
    if data[:4] != MAGIC:
        raise StorageError("not an RCFile (bad magic)")
    pos = 4
    (ncols,) = struct.unpack_from(">I", data, pos)
    pos += 4
    columns = []
    for _ in range(ncols):
        (length,) = struct.unpack_from(">I", data, pos)
        pos += 4
        columns.append(data[pos : pos + length].decode("utf-8"))
        pos += length

    rows: list[dict] = []
    while pos < len(data):
        (nrows,) = struct.unpack_from(">I", data, pos)
        pos += 4
        group_cols = []
        for _ in range(ncols):
            (length,) = struct.unpack_from(">I", data, pos)
            pos += 4
            run = zlib.decompress(data[pos : pos + length])
            pos += length
            values = _decode_values(run)
            if len(values) != nrows:
                raise StorageError("row-group column length mismatch")
            group_cols.append(values)
        for i in range(nrows):
            rows.append({c: group_cols[j][i] for j, c in enumerate(columns)})
    return columns, rows


def read_column(data: bytes, wanted: str) -> list:
    """Read a single column, skipping other columns' compressed runs.

    This is the I/O-elimination property the paper credits RCFile with:
    untouched columns are never decompressed.
    """
    if data[:4] != MAGIC:
        raise StorageError("not an RCFile (bad magic)")
    pos = 4
    (ncols,) = struct.unpack_from(">I", data, pos)
    pos += 4
    columns = []
    for _ in range(ncols):
        (length,) = struct.unpack_from(">I", data, pos)
        pos += 4
        columns.append(data[pos : pos + length].decode("utf-8"))
        pos += length
    if wanted not in columns:
        raise StorageError(f"no column {wanted!r} in {columns}")
    index = columns.index(wanted)

    values: list = []
    while pos < len(data):
        pos += 4  # row count
        for j in range(ncols):
            (length,) = struct.unpack_from(">I", data, pos)
            pos += 4
            if j == index:
                values.extend(_decode_values(zlib.decompress(data[pos : pos + length])))
            pos += length
    return values


def measure_compression_ratio(rows: list[dict], columns: list[str], raw_width: int) -> float:
    """Compressed-bytes / raw-bytes for a sample of rows (used for costing)."""
    if not rows:
        raise StorageError("cannot measure compression of an empty sample")
    encoded = encode(rows, columns)
    return len(encoded) / (len(rows) * raw_width)

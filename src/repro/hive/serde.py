"""Hive's text storage (LazySimpleSerDe): the format RCFile replaced.

The original HIVE-600 TPC-H scripts stored tables as plain text; the paper's
configuration switched to compressed RCFile "since it can eliminate some I/O
operations" (§3.2.1) — the RCFile-vs-text ablation quantifies that.  This
module implements the text format for real: ``\\x01``-delimited fields,
newline-terminated rows, ``\\N`` for NULL, exactly what
``ROW FORMAT DELIMITED FIELDS TERMINATED BY '\\001'`` produces.

The functional comparison with :mod:`repro.hive.rcfile`:

* text is row-oriented — reading one column costs the whole row;
* text carries numeric values as ASCII — usually *larger* than binary;
* text has no compression blocks — a scan pays for every byte.
"""

from __future__ import annotations

from repro.common.errors import StorageError
from repro.relational.schema import ColumnType, Schema

FIELD_DELIMITER = "\x01"
NULL_TOKEN = "\\N"


def encode_rows(rows: list[dict], schema: Schema) -> bytes:
    """Serialize rows in LazySimpleSerDe text format."""
    lines = []
    for row in rows:
        fields = []
        for column in schema.columns:
            value = row.get(column.name)
            if value is None:
                fields.append(NULL_TOKEN)
            elif isinstance(value, float):
                fields.append(repr(value))
            else:
                text = str(value)
                if FIELD_DELIMITER in text or "\n" in text:
                    raise StorageError(
                        f"value for {column.name!r} contains a delimiter"
                    )
                fields.append(text)
        lines.append(FIELD_DELIMITER.join(fields))
    return ("\n".join(lines) + "\n" if lines else "").encode("utf-8")


def decode_rows(data: bytes, schema: Schema) -> list[dict]:
    """Parse text-format bytes back into typed rows."""
    rows: list[dict] = []
    text = data.decode("utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        fields = line.split(FIELD_DELIMITER)
        if len(fields) != len(schema.columns):
            raise StorageError(
                f"line {lineno}: {len(fields)} fields, "
                f"expected {len(schema.columns)}"
            )
        row = {}
        for column, field in zip(schema.columns, fields):
            if field == NULL_TOKEN:
                row[column.name] = None
            elif column.ctype is ColumnType.INT:
                row[column.name] = int(field)
            elif column.ctype is ColumnType.FLOAT:
                row[column.name] = float(field)
            else:
                row[column.name] = field
        rows.append(row)
    return rows


def read_column(data: bytes, schema: Schema, wanted: str) -> list:
    """Read one column from text storage — pays for every byte anyway.

    Returns the column values, but unlike
    :func:`repro.hive.rcfile.read_column` it must parse the full rows: the
    I/O-elimination RCFile provides is structurally impossible here.
    """
    if wanted not in schema:
        raise StorageError(f"no column {wanted!r}")
    return [row[wanted] for row in decode_rows(data, schema)]


def size_ratio_vs_rcfile(rows: list[dict], schema: Schema) -> float:
    """How much bigger the text encoding is than compressed RCFile."""
    from repro.hive.rcfile import encode as rcfile_encode

    if not rows:
        raise StorageError("need sample rows")
    text_bytes = len(encode_rows(rows, schema))
    rcfile_bytes = len(rcfile_encode(rows, schema.names))
    return text_bytes / rcfile_bytes

"""Hive metastore: the Table-1 data layouts (partitions and buckets).

Each table descriptor knows how its data is physically laid out in HDFS —
partition directories, bucket files, and which bucket files are *empty*
because of TPC-H's sparse orderkeys — and can enumerate the compressed file
inventory at any scale factor.  That inventory is what determines Hive's map
task counts (one task per file, or per 256 MB block for bigger files).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.tpch.schema import orderkey_bucket, sparse_orderkey, table_bytes


@dataclass(frozen=True)
class HiveTableLayout:
    """Physical layout of one Hive table (a row of the paper's Table 1)."""

    name: str
    partition_column: Optional[str] = None
    partition_count: int = 1
    bucket_column: Optional[str] = None
    bucket_count: int = 1
    # Fraction of bucket files that actually contain data (sparse keys).
    nonempty_bucket_fraction: float = 1.0

    def __post_init__(self):
        if self.partition_count < 1 or self.bucket_count < 1:
            raise ConfigurationError("partition/bucket counts must be >= 1")
        if not 0.0 < self.nonempty_bucket_fraction <= 1.0:
            raise ConfigurationError("nonempty fraction must be in (0, 1]")

    @property
    def file_count(self) -> int:
        return self.partition_count * self.bucket_count

    def file_sizes(self, scale_factor: float, compression_ratio: float) -> list[float]:
        """Compressed size of every file, in physical (bucket-id) order.

        Empty bucket files appear as explicit zeros, interleaved the way the
        sparse orderkeys leave them (ids ≡ 1..8 mod 32 hold data) so the
        map-task scheduler sees the same mix the paper's cluster saw.
        """
        total = table_bytes(self.name, scale_factor) * compression_ratio
        nonempty = max(1, round(self.file_count * self.nonempty_bucket_fraction))
        per_file = total / nonempty

        if self.nonempty_bucket_fraction >= 1.0:
            return [total / self.file_count] * self.file_count

        # Sparse-orderkey tables: mark which bucket ids ever receive a key.
        occupied = {orderkey_bucket(sparse_orderkey(i), self.bucket_count)
                    for i in range(1, 8 * self.bucket_count + 1)}
        sizes = []
        for bucket_id in range(self.bucket_count):
            sizes.append(per_file if bucket_id in occupied else 0.0)
        return sizes * self.partition_count


# The paper's Table 1.  Lineitem and orders carry 512 buckets on their order
# key; the sparse keys leave 128 of those non-empty (fraction = 0.25).
TPCH_LAYOUTS: dict[str, HiveTableLayout] = {
    "customer": HiveTableLayout(
        "customer",
        partition_column="c_nationkey",
        partition_count=25,
        bucket_column="c_custkey",
        bucket_count=8,
    ),
    "lineitem": HiveTableLayout(
        "lineitem",
        bucket_column="l_orderkey",
        bucket_count=512,
        nonempty_bucket_fraction=0.25,
    ),
    "nation": HiveTableLayout("nation"),
    "orders": HiveTableLayout(
        "orders",
        bucket_column="o_orderkey",
        bucket_count=512,
        nonempty_bucket_fraction=0.25,
    ),
    "part": HiveTableLayout("part", bucket_column="p_partkey", bucket_count=8),
    "partsupp": HiveTableLayout("partsupp", bucket_column="ps_partkey", bucket_count=8),
    "region": HiveTableLayout("region"),
    "supplier": HiveTableLayout(
        "supplier",
        partition_column="s_nationkey",
        partition_count=25,
        bucket_column="s_suppkey",
        bucket_count=8,
    ),
}


class Metastore:
    """Registry of table layouts with per-table compression ratios."""

    def __init__(
        self,
        layouts: dict[str, HiveTableLayout] | None = None,
        compression_ratios: dict[str, float] | None = None,
        default_compression: float = 0.38,
    ):
        self.layouts = dict(layouts if layouts is not None else TPCH_LAYOUTS)
        self.compression_ratios = dict(compression_ratios or {})
        self.default_compression = default_compression

    def layout(self, table: str) -> HiveTableLayout:
        if table not in self.layouts:
            raise ConfigurationError(f"no layout for table {table!r}")
        return self.layouts[table]

    def compression(self, table: str) -> float:
        return self.compression_ratios.get(table, self.default_compression)

    def file_sizes(self, table: str, scale_factor: float) -> list[float]:
        """Compressed file inventory for a table at a scale factor."""
        return self.layout(table).file_sizes(scale_factor, self.compression(table))

    def compressed_bytes(self, table: str, scale_factor: float) -> float:
        return sum(self.file_sizes(table, scale_factor))

    def buckets_compatible(self, left: str, right: str) -> bool:
        """Bucketed map join eligibility: counts must be multiples."""
        a = self.layout(left).bucket_count
        b = self.layout(right).bucket_count
        return a % b == 0 or b % a == 0

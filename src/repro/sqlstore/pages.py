"""8 KB slotted pages and the clustered heap under the B-tree index.

SQL Server reads and writes 8 KB pages — the unit the paper contrasts with
MongoDB's 32 KB reads in workload C.  Rows are serialized with a compact
length-prefixed codec so page occupancy is real (a 1 KB YCSB record fits
7 rows to a page, which matches the paper's I/O arithmetic).
"""

from __future__ import annotations

import struct

from repro.common.errors import StorageError

PAGE_SIZE = 8192
PAGE_HEADER = 96  # slot directory + header, as in SQL Server


def encode_row(row: dict) -> bytes:
    """Length-prefixed (name, value) string pairs."""
    parts = [struct.pack("<H", len(row))]
    for name, value in row.items():
        if not isinstance(value, str):
            raise StorageError(f"sqlstore rows are all-string; got {type(value)}")
        nraw = name.encode("utf-8")
        vraw = value.encode("utf-8")
        parts.append(struct.pack("<HI", len(nraw), len(vraw)))
        parts.append(nraw)
        parts.append(vraw)
    return b"".join(parts)


def decode_row(data: bytes) -> dict:
    (count,) = struct.unpack_from("<H", data, 0)
    pos = 2
    row = {}
    for _ in range(count):
        nlen, vlen = struct.unpack_from("<HI", data, pos)
        pos += 6
        name = data[pos : pos + nlen].decode("utf-8")
        pos += nlen
        row[name] = data[pos : pos + vlen].decode("utf-8")
        pos += vlen
    return row


class Page:
    """One 8 KB page holding serialized rows keyed by their primary key."""

    def __init__(self, page_id: int):
        self.page_id = page_id
        self.rows: dict[str, bytes] = {}
        self.used = PAGE_HEADER
        self.dirty = False

    def fits(self, data: bytes) -> bool:
        return self.used + len(data) + 8 <= PAGE_SIZE

    def put(self, key: str, data: bytes) -> None:
        if key in self.rows:
            self.used -= len(self.rows[key])
        elif not self.fits(data):
            raise StorageError(f"page {self.page_id} full")
        self.rows[key] = data
        self.used += len(data)
        self.dirty = True

    def get(self, key: str) -> bytes | None:
        return self.rows.get(key)

    def delete(self, key: str) -> bool:
        data = self.rows.pop(key, None)
        if data is None:
            return False
        self.used -= len(data)
        self.dirty = True
        return True

    @property
    def row_count(self) -> int:
        return len(self.rows)


class PageManager:
    """Allocates pages and remembers which is the current insertion target."""

    def __init__(self):
        self._pages: dict[int, Page] = {}
        self._next_id = 0
        self._current: Page | None = None

    def allocate(self) -> Page:
        page = Page(self._next_id)
        self._pages[self._next_id] = page
        self._next_id += 1
        self._current = page
        return page

    def get(self, page_id: int) -> Page:
        if page_id not in self._pages:
            raise StorageError(f"no page {page_id}")
        return self._pages[page_id]

    def page_for_insert(self, data: bytes) -> Page:
        """The current fill target, or a fresh page when it is full."""
        if self._current is None or not self._current.fits(data):
            return self.allocate()
        return self._current

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def dirty_pages(self) -> list[Page]:
        return [p for p in self._pages.values() if p.dirty]

"""SQL-CS: the paper's client-side hash-sharded SQL Server deployment.

The client hashes each key to one of the server nodes (the same crc32
routing Mongo-CS uses, so the two are directly comparable); scans must be
broadcast to every node and merged, which is why SQL-CS loses workload E to
the range-partitioned Mongo-AS.

``elastic=True`` (PR 8) swaps mod-N routing for the same consistent-hash
ring Mongo-CS uses, enabling live ``scale_to``/``drain_shard`` through an
attached :class:`~repro.docstore.reshard.MigrationEngine` — each handed-off
arc is copied row by row through real transactions (X locks, WAL DELETE
records on the source), so the elephants pay full ACID freight for their
elasticity.  The default stays byte-identical to the paper's deployment.
"""

from __future__ import annotations

from repro.common.errors import (
    ChunkMoving,
    ConfigurationError,
    ServerCrashed,
    ShardUnavailable,
    ShardingError,
)
from repro.docstore.cluster import hash_shard
from repro.docstore.reshard import Migration, MigrationEngine
from repro.docstore.ring import HashRing, vnode_point
from repro.sqlstore.locks import IsolationLevel
from repro.sqlstore.server import SqlServerNode

_KEY_MAX = "￿"  # sorts after every YCSB key


class SqlCsCluster:
    """Client-side sharded SQL Server (one SqlServerNode per shard)."""

    def __init__(
        self,
        shard_count: int = 8,
        pool_pages: int = 4096,
        isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
        mirrored: bool = False,
        tracer=None,
        metrics=None,
        elastic: bool = False,
    ):
        if shard_count < 1:
            raise ShardingError("need at least one shard")
        self.mirrored = mirrored
        self.pool_pages = pool_pages
        self.isolation = isolation
        self.tracer = tracer
        self.metrics = metrics
        self.shards = [
            self._build_shard(i) for i in range(shard_count)
        ]
        self.ring: HashRing | None = (
            HashRing(range(shard_count)) if elastic else None
        )
        self._engine: MigrationEngine | None = None
        self._retired: set[int] = set()
        self._pending_cleanup: list = []
        self._pending_io = 0.0
        self._now = 0.0

    def _build_shard(self, index: int):
        if self.mirrored:
            from repro.sqlstore.mirroring import MirroredSqlServerNode

            return MirroredSqlServerNode(
                f"sql-{index}", pool_pages=self.pool_pages,
                isolation=self.isolation,
            )
        return SqlServerNode(
            f"sql-{index}", pool_pages=self.pool_pages,
            isolation=self.isolation,
        )

    # -- live resharding ---------------------------------------------------------

    @property
    def reshard_engine(self) -> MigrationEngine | None:
        return self._engine

    @property
    def retired_shards(self) -> set[int]:
        return set(self._retired)

    def attach_reshard(self, throttle: float = 1.0,
                       offered_load: float = 0.7) -> MigrationEngine:
        if self.ring is None:
            raise ConfigurationError(
                "live resharding needs the consistent-hash ring; construct "
                "the cluster with elastic=True"
            )
        self._engine = MigrationEngine(
            self._shard_share, len(self.shards), throttle=throttle,
            offered_load=offered_load, tracer=self.tracer,
            metrics=self.metrics,
        )
        return self._engine

    def _require_engine(self) -> MigrationEngine:
        if self._engine is None:
            raise ConfigurationError(
                "live resharding requires a migration engine "
                "(run with --reshard, or call attach_reshard())"
            )
        return self._engine

    def _shard_share(self, shard: int) -> float:
        if self.ring is None:
            return 1.0 / len(self.shards)
        return self.ring.shares().get(shard, 0.0)

    def scale_to(self, count: int, now: float = 0.0) -> int:
        """Grow to ``count`` shards; ring arcs hand off to the new nodes."""
        self._require_engine()
        if count <= len(self.shards):
            raise ShardingError(
                f"scale target {count} does not grow the {len(self.shards)}-"
                f"shard cluster; use drain_shard to scale down"
            )
        added = list(range(len(self.shards), count))
        for i in added:
            self.shards.append(self._build_shard(i))
        old_ring = self.ring
        self.ring = old_ring.with_nodes(
            [i for i in range(count) if i not in self._retired])
        return self._submit_arc_handoffs(old_ring, self.ring, added,
                                         adding=True, now=now)

    def drain_shard(self, index: int, now: float = 0.0) -> int:
        """Retire one shard; its ring arcs hand off to the survivors."""
        self._require_engine()
        if not 0 <= index < len(self.shards):
            raise ShardingError(f"no shard {index} to drain")
        if index in self._retired:
            raise ShardingError(f"shard {index} is already drained")
        if len(self.shards) - len(self._retired) < 2:
            raise ShardingError("cannot drain the last active shard")
        self._retired.add(index)
        old_ring = self.ring
        self.ring = old_ring.with_nodes(
            [i for i in range(len(self.shards)) if i not in self._retired])
        return self._submit_arc_handoffs(old_ring, self.ring, [index],
                                         adding=False, now=now)

    def _submit_arc_handoffs(self, old_ring: HashRing, new_ring: HashRing,
                             changed: list[int], adding: bool,
                             now: float) -> int:
        """Same storage-free arc-pair planning as elastic Mongo-CS (see
        ``MongoCsCluster._submit_arc_handoffs``): pairs come from ring
        geometry; membership is the pure old-owner/new-owner predicate."""
        pairs: set[tuple[int, int]] = set()
        for node in changed:
            for replica in range(old_ring.vnodes):
                point = vnode_point(node, replica)
                if adding:
                    pairs.add((old_ring.owner_of_hash(point), node))
                else:
                    pairs.add((node, new_ring.owner_of_hash(point)))
        queued = 0
        for source, dest in sorted(p for p in pairs if p[0] != p[1]):
            def covers(key: str, s=source, d=dest) -> bool:
                return (old_ring.node_for(key) == s
                        and new_ring.node_for(key) == d)
            self._engine.submit(Migration(
                source=source, target=dest,
                label=f"arc@{source}->{dest}",
                covers=covers,
                count_docs=lambda s=source, c=covers: len(
                    self._keys_on(s, c)),
                commit=lambda s=source, d=dest, c=covers:
                    self._commit_arc(s, d, c),
            ), now)
            queued += 1
        return queued

    def _keys_on(self, shard: int, covers) -> list[str]:
        try:
            keys = self.shards[shard].keys_in_range("", _KEY_MAX)
        except ServerCrashed:
            return []  # sizing only; the commit path retries until reachable
        return [k for k in keys if covers(k)]

    def _commit_arc(self, source: int, dest: int, covers) -> int:
        """Copy an arc's rows to the new owner; abort-safe, delete-after-flip
        (the ordering rationale is documented on the Mongo-CS twin).  A dead
        source aborts rather than committing an empty snapshot — a vacuous
        flip would strand the rows on the crashed shard."""
        try:
            keys = [k for k in self.shards[source].keys_in_range("", _KEY_MAX)
                    if covers(k)]
        except ServerCrashed as exc:
            raise ShardUnavailable(
                f"arc handoff aborted: source shard {source} is "
                f"unavailable: {exc}", shard=source,
            ) from exc
        copied: list[str] = []
        try:
            for key in keys:
                row = self.shards[source].read(key)
                if row is None:
                    continue
                self.shards[dest].remove(key)
                self.shards[dest].insert(key, row)
                copied.append(key)
        except ServerCrashed as exc:
            try:
                for key in copied:
                    self.shards[dest].remove(key)
            except ServerCrashed:
                pass  # dest died holding strays; the next attempt clears them
            dead = dest if not self._alive(dest) else source
            raise ShardUnavailable(
                f"arc handoff aborted: shard {dead} is unavailable: {exc}",
                shard=dead,
            ) from exc
        finally:
            self._drain_backfill_noise(source, dest)
        if copied:
            self._pending_cleanup.append((source, copied))
        return len(copied)

    def _alive(self, index: int) -> bool:
        return bool(self.shards[index].alive)

    def _drain_backfill_noise(self, *shard_indices: int) -> None:
        """Keep the handoff's mirror traffic out of client ack accounting."""
        if not self.mirrored:
            return
        for index in shard_indices:
            shard = self.shards[index]
            shard.consume_ack_delay()
            while shard.take_last_write() is not None:
                pass

    def _retry_cleanup(self) -> None:
        if not self._pending_cleanup:
            return
        remaining = []
        for shard_index, keys in self._pending_cleanup:
            try:
                for key in keys:
                    self.shards[shard_index].remove(key)
            except ServerCrashed:
                remaining.append((shard_index, keys))
        self._pending_cleanup = remaining

    def _guard_moving(self, key: str) -> None:
        if self._engine is None:
            return
        frozen = self._engine.frozen_shard(key, self._now)
        if frozen is not None:
            raise ChunkMoving(
                f"key {key!r} is inside a migration commit window",
                shard=frozen,
            )

    def _charge_io(self, shard: int) -> None:
        if self._engine is not None:
            self._pending_io += self._engine.op_cost(shard, self._now)

    def _note_write(self, key: str) -> None:
        if self._engine is not None:
            self._engine.note_write(key)

    def consume_io_wait(self) -> float:
        """Disk-queueing + utilization latency owed by the ops since the
        last call (zero unless a migration engine is attached)."""
        owed, self._pending_io = self._pending_io, 0.0
        return owed

    # -- routing ----------------------------------------------------------------

    def _shard_index(self, key: str) -> int:
        if self.ring is None:
            return hash_shard(key, len(self.shards))
        if self._engine is not None and not self._engine.idle:
            override = self._engine.route_override(key)
            if override is not None:
                return override  # mid-handoff keys stay with the old owner
        return self.ring.node_for(key)

    def _shard(self, key: str) -> SqlServerNode:
        return self.shards[self._shard_index(key)]

    def _on_shard(self, index: int, operation):
        """A dead server surfaces as the typed routing failure the client
        driver sees (connection refused -> shard unavailable)."""
        try:
            return operation()
        except ServerCrashed as exc:
            raise ShardUnavailable(
                f"shard {index} ({self.shards[index].name}) is unavailable: {exc}",
                shard=index,
            ) from exc

    def insert(self, key: str, record: dict) -> None:
        self._guard_moving(key)
        index = self._shard_index(key)
        self._charge_io(index)
        self._on_shard(index, lambda: self.shards[index].insert(key, record))
        self._note_write(key)

    def read(self, key: str):
        self._guard_moving(key)
        index = self._shard_index(key)
        self._charge_io(index)
        return self._on_shard(index, lambda: self.shards[index].read(key))

    def update(self, key: str, fieldname: str, value: str) -> bool:
        self._guard_moving(key)
        index = self._shard_index(key)
        self._charge_io(index)
        changed = self._on_shard(
            index, lambda: self.shards[index].update(key, fieldname, value)
        )
        if changed:
            self._note_write(key)
        return changed

    def scan(self, start_key: str, count: int) -> list[dict]:
        """Broadcast the range to every shard and merge (hash sharding)."""
        partials: list[dict] = []
        for index, shard in enumerate(self.shards):
            if index in self._retired and self.ring is not None:
                continue  # a drained shard holds at most already-moved strays
            rows = self._on_shard(
                index, lambda s=shard: s.scan(start_key, count)
            )
            if self.ring is not None:
                # Elastic mode can leave short-lived strays (post-flip,
                # pre-cleanup); ownership filtering keeps scans exact.
                rows = [r for r in rows
                        if self._shard_index(r["_key"]) == index]
            partials.extend(rows)
        partials.sort(key=lambda r: r["_key"])
        return partials[:count]

    def shards_touched_by_scan(self, start_key: str, count: int) -> int:
        return len(self.shards) - len(self._retired)

    def kill_shard(self, index: int) -> None:
        """Fault injection: one server node stops accepting connections."""
        self.shards[index].kill()

    def restart_shard(self, index: int) -> None:
        self.shards[index].restart()

    @property
    def row_count(self) -> int:
        return sum(s.row_count for s in self.shards)

    # -- replication surface (no-ops without mirroring) --------------------------

    def tick(self, now: float) -> None:
        """Advance migrations; mirroring itself is synchronous (no accrual)."""
        self._now = max(self._now, now)
        if self._engine is not None:
            self._engine.advance(self._now)
            self._retry_cleanup()

    def consume_ack_delay(self) -> float:
        if not self.mirrored:
            return 0.0
        return sum(s.consume_ack_delay() for s in self.shards)

    def take_last_write(self):
        if not self.mirrored:
            return None
        for shard in self.shards:
            write = shard.take_last_write()
            if write is not None:
                return write
        return None

"""SQL-CS: the paper's client-side hash-sharded SQL Server deployment.

The client hashes each key to one of the server nodes (the same crc32
routing Mongo-CS uses, so the two are directly comparable); scans must be
broadcast to every node and merged, which is why SQL-CS loses workload E to
the range-partitioned Mongo-AS.
"""

from __future__ import annotations

from repro.common.errors import ServerCrashed, ShardUnavailable, ShardingError
from repro.docstore.cluster import hash_shard
from repro.sqlstore.locks import IsolationLevel
from repro.sqlstore.server import SqlServerNode


class SqlCsCluster:
    """Client-side sharded SQL Server (one SqlServerNode per shard)."""

    def __init__(
        self,
        shard_count: int = 8,
        pool_pages: int = 4096,
        isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
        mirrored: bool = False,
    ):
        if shard_count < 1:
            raise ShardingError("need at least one shard")
        self.mirrored = mirrored
        if mirrored:
            from repro.sqlstore.mirroring import MirroredSqlServerNode

            self.shards = [
                MirroredSqlServerNode(
                    f"sql-{i}", pool_pages=pool_pages, isolation=isolation
                )
                for i in range(shard_count)
            ]
        else:
            self.shards = [
                SqlServerNode(
                    f"sql-{i}", pool_pages=pool_pages, isolation=isolation
                )
                for i in range(shard_count)
            ]

    def _shard_index(self, key: str) -> int:
        return hash_shard(key, len(self.shards))

    def _shard(self, key: str) -> SqlServerNode:
        return self.shards[self._shard_index(key)]

    def _on_shard(self, index: int, operation):
        """A dead server surfaces as the typed routing failure the client
        driver sees (connection refused -> shard unavailable)."""
        try:
            return operation()
        except ServerCrashed as exc:
            raise ShardUnavailable(
                f"shard {index} ({self.shards[index].name}) is unavailable: {exc}",
                shard=index,
            ) from exc

    def insert(self, key: str, record: dict) -> None:
        index = self._shard_index(key)
        self._on_shard(index, lambda: self.shards[index].insert(key, record))

    def read(self, key: str):
        index = self._shard_index(key)
        return self._on_shard(index, lambda: self.shards[index].read(key))

    def update(self, key: str, fieldname: str, value: str) -> bool:
        index = self._shard_index(key)
        return self._on_shard(
            index, lambda: self.shards[index].update(key, fieldname, value)
        )

    def scan(self, start_key: str, count: int) -> list[dict]:
        """Broadcast the range to every shard and merge (hash sharding)."""
        partials: list[dict] = []
        for index, shard in enumerate(self.shards):
            partials.extend(self._on_shard(
                index, lambda s=shard: s.scan(start_key, count)
            ))
        partials.sort(key=lambda r: r["_key"])
        return partials[:count]

    def shards_touched_by_scan(self, start_key: str, count: int) -> int:
        return len(self.shards)

    def kill_shard(self, index: int) -> None:
        """Fault injection: one server node stops accepting connections."""
        self.shards[index].kill()

    def restart_shard(self, index: int) -> None:
        self.shards[index].restart()

    @property
    def row_count(self) -> int:
        return sum(s.row_count for s in self.shards)

    # -- replication surface (no-ops without mirroring) --------------------------

    def tick(self, now: float) -> None:
        """Mirroring is synchronous: nothing accrues between operations."""

    def consume_ack_delay(self) -> float:
        if not self.mirrored:
            return 0.0
        return sum(s.consume_ack_delay() for s in self.shards)

    def take_last_write(self):
        if not self.mirrored:
            return None
        for shard in self.shards:
            write = shard.take_last_write()
            if write is not None:
                return write
        return None

"""SQL-CS: the paper's client-side hash-sharded SQL Server deployment.

The client hashes each key to one of the server nodes (the same crc32
routing Mongo-CS uses, so the two are directly comparable); scans must be
broadcast to every node and merged, which is why SQL-CS loses workload E to
the range-partitioned Mongo-AS.
"""

from __future__ import annotations

from repro.common.errors import ShardingError
from repro.docstore.cluster import hash_shard
from repro.sqlstore.locks import IsolationLevel
from repro.sqlstore.server import SqlServerNode


class SqlCsCluster:
    """Client-side sharded SQL Server (one SqlServerNode per shard)."""

    def __init__(
        self,
        shard_count: int = 8,
        pool_pages: int = 4096,
        isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
    ):
        if shard_count < 1:
            raise ShardingError("need at least one shard")
        self.shards = [
            SqlServerNode(f"sql-{i}", pool_pages=pool_pages, isolation=isolation)
            for i in range(shard_count)
        ]

    def _shard(self, key: str) -> SqlServerNode:
        return self.shards[hash_shard(key, len(self.shards))]

    def insert(self, key: str, record: dict) -> None:
        self._shard(key).insert(key, record)

    def read(self, key: str):
        return self._shard(key).read(key)

    def update(self, key: str, fieldname: str, value: str) -> bool:
        return self._shard(key).update(key, fieldname, value)

    def scan(self, start_key: str, count: int) -> list[dict]:
        """Broadcast the range to every shard and merge (hash sharding)."""
        partials: list[dict] = []
        for shard in self.shards:
            partials.extend(shard.scan(start_key, count))
        partials.sort(key=lambda r: r["_key"])
        return partials[:count]

    def shards_touched_by_scan(self, start_key: str, count: int) -> int:
        return len(self.shards)

    @property
    def row_count(self) -> int:
        return sum(s.row_count for s in self.shards)

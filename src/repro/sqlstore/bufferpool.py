"""An LRU buffer pool over 8 KB pages with hit/miss/writeback accounting.

The hit counters are what the performance layer consumes: the paper reports
that under workload D 99.5% of SQL Server requests hit the pool, and that
under C the pool misses force 8 KB random reads.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.errors import ConfigurationError


class BufferPool:
    """Tracks which page ids are memory resident, with LRU eviction."""

    def __init__(self, capacity_pages: int):
        if capacity_pages < 1:
            raise ConfigurationError("buffer pool needs at least one page")
        self.capacity = capacity_pages
        self._resident: OrderedDict[int, bool] = OrderedDict()  # id -> dirty
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0

    def access(self, page_id: int, dirty: bool = False) -> bool:
        """Touch a page; returns True on a hit.  A miss faults the page in."""
        if page_id in self._resident:
            self.hits += 1
            self._resident.move_to_end(page_id)
            if dirty:
                self._resident[page_id] = True
            return True
        self.misses += 1
        self._fault_in(page_id, dirty)
        return False

    def _fault_in(self, page_id: int, dirty: bool) -> None:
        while len(self._resident) >= self.capacity:
            evicted_id, evicted_dirty = self._resident.popitem(last=False)
            self.evictions += 1
            if evicted_dirty:
                self.dirty_writebacks += 1
        self._resident[page_id] = dirty

    def flush_all(self) -> int:
        """Checkpoint: write back every dirty page; returns pages written."""
        written = 0
        for page_id, dirty in self._resident.items():
            if dirty:
                written += 1
                self._resident[page_id] = False
        self.dirty_writebacks += written
        return written

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def is_resident(self, page_id: int) -> bool:
        return page_id in self._resident

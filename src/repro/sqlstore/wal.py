"""Write-ahead logging with periodic checkpoints.

SQL Server flushes the log at commit (full durability — the paper stresses
that SQL ran with ACID semantics while MongoDB ran with journaling off) and
periodically checkpoints dirty pages, which is the throughput dip the paper
observed in workload B ("during the checkpointing interval the throughput
decreases to 7,000-8,000 ops/sec").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.common.errors import StorageError


class LogOp(Enum):
    BEGIN = "begin"
    UPDATE = "update"
    INSERT = "insert"
    DELETE = "delete"
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    txid: int
    op: LogOp
    key: Optional[str] = None
    before: Optional[bytes] = None
    after: Optional[bytes] = None

    @property
    def byte_size(self) -> int:
        size = 32  # header
        for payload in (self.key, self.before, self.after):
            if payload is not None:
                size += len(payload) if isinstance(payload, bytes) else len(payload.encode())
        return size


class WriteAheadLog:
    """An append-only log with flush-at-commit and checkpoint truncation."""

    def __init__(self):
        self._records: list[LogRecord] = []
        self._next_lsn = 1
        self.flushed_lsn = 0
        self.bytes_written = 0
        self.flushes = 0
        self.checkpoints = 0

    def append(self, txid: int, op: LogOp, key=None, before=None, after=None) -> LogRecord:
        record = LogRecord(self._next_lsn, txid, op, key, before, after)
        self._next_lsn += 1
        self._records.append(record)
        self.bytes_written += record.byte_size
        return record

    def flush(self) -> None:
        """Force the log to stable storage (called at every commit)."""
        if self._records:
            self.flushed_lsn = self._records[-1].lsn
        self.flushes += 1

    def checkpoint(self) -> None:
        """Record a checkpoint and truncate records no longer needed."""
        self.append(0, LogOp.CHECKPOINT)
        self.flush()
        self.checkpoints += 1
        # All earlier records are reclaimable once dirty pages are on disk.
        self._records = self._records[-1:]

    @property
    def record_count(self) -> int:
        return len(self._records)

    def records_since(self, lsn: int) -> list[LogRecord]:
        return [r for r in self._records if r.lsn > lsn]

    def replay_committed(self) -> dict[str, bytes]:
        """Redo pass: the after-images of committed transactions, in order.

        Used by the crash-recovery test: uncommitted transactions' effects
        must not survive.
        """
        committed = {
            r.txid for r in self._records
            if r.op is LogOp.COMMIT and r.lsn <= self.flushed_lsn
        }
        images: dict[str, bytes] = {}
        for record in self._records:
            if record.lsn > self.flushed_lsn:
                break
            if record.op in (LogOp.UPDATE, LogOp.INSERT) and record.txid in committed:
                if record.key is None or record.after is None:
                    raise StorageError("malformed log record")
                images[record.key] = record.after
        return images

"""Crash recovery for the SQL Server node (ARIES-lite redo).

SQL Server's full ACID guarantee — the property the paper emphasizes that
MongoDB ran without — means a crash loses nothing that committed.  This
module rebuilds a server from its write-ahead log: a redo pass reapplies the
after-images of committed transactions in LSN order, and anything from
in-flight transactions is discarded (the functional engine applies changes
in place, so redo doubles as undo verification).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlstore.pages import decode_row
from repro.sqlstore.server import SqlServerNode


@dataclass(frozen=True)
class RecoveryReport:
    """What the restart recovered."""

    redone_keys: int
    discarded_records: int
    final_row_count: int


def crash(node: SqlServerNode) -> "CrashImage":
    """Capture what survives a crash: the log up to the flushed LSN.

    Dirty pages that were never checkpointed are lost; the buffer pool's
    contents are lost; only the forced log is durable.
    """
    return CrashImage(node)


class CrashImage:
    """The durable state of a crashed node (its forced log).

    Scope: redo covers the log tail since the last checkpoint.  Pages a
    checkpoint wrote back are durable by definition and would be reloaded
    from disk in a full ARIES restart; the functional tests therefore
    exercise crash windows between checkpoints, where the log alone must
    carry every committed effect.
    """

    def __init__(self, node: SqlServerNode):
        self.wal = node.wal
        self.isolation = node.isolation

    def recover(self) -> tuple[SqlServerNode, RecoveryReport]:
        """Rebuild a fresh node by replaying the committed log records."""
        images = self.wal.replay_committed()
        total_records = sum(
            1 for r in self.wal.records_since(0) if r.key is not None
        )
        node = SqlServerNode(isolation=self.isolation)
        for key, data in images.items():
            row = decode_row(data)
            if key in node.index:
                for field_name, value in row.items():
                    node.update(key, field_name, value)
            else:
                node.insert(key, row)
        return node, RecoveryReport(
            redone_keys=len(images),
            discarded_records=total_records - len(images),
            final_row_count=node.row_count,
        )

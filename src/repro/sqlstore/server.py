"""One SQL Server node: clustered B-tree, pages, buffer pool, WAL, locks.

Every public operation runs as an autocommit transaction with full ACID
semantics — shared locks under READ COMMITTED, exclusive locks to commit,
log flush at commit — matching how the paper ran SQL-CS ("SQL Server
supports ACID transaction semantics at the default READ COMMITTED level").
"""

from __future__ import annotations

from typing import Optional

from repro.common.btree import BTree
from repro.common.errors import (
    LockWait,
    ServerCrashed,
    StorageError,
    TransactionAborted,
)
from repro.sqlstore.bufferpool import BufferPool
from repro.sqlstore.locks import IsolationLevel, LockManager, LockMode
from repro.sqlstore.pages import PAGE_SIZE, PageManager, decode_row, encode_row
from repro.sqlstore.wal import LogOp, WriteAheadLog

DEFAULT_POOL_PAGES = 4096  # scaled-down functional default (32 MB)


class SqlServerNode:
    """A single-node SQL Server instance serving YCSB-style operations."""

    def __init__(
        self,
        name: str = "sql",
        pool_pages: int = DEFAULT_POOL_PAGES,
        isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
        checkpoint_interval_ops: int = 10_000,
        blocking_locks: bool = False,
        tracer=None,
        metrics=None,
        sampler=None,
    ):
        from repro.sqlstore.locks import BlockingLockManager

        self.name = name
        self.tracer = tracer
        self.metrics = metrics
        self.sampler = sampler
        self.lock_wait_events = 0
        self.isolation = isolation
        self.pages = PageManager()
        self.pool = BufferPool(pool_pages)
        self.wal = WriteAheadLog()
        self.locks = BlockingLockManager() if blocking_locks else LockManager()
        self.index = BTree()  # key -> page_id
        self.checkpoint_interval_ops = checkpoint_interval_ops
        self._next_txid = 1
        self._ops_since_checkpoint = 0
        self.ops = 0
        self.alive = True
        self._last_wait_span: dict = {}  # lock key -> last lock.wait span
        self._last_checkpoint_span = None

    def kill(self) -> None:
        """Fault injection: the server process stops accepting connections."""
        self.alive = False

    def restart(self) -> None:
        """The operator restarts the process; committed state is durable."""
        self.alive = True

    def _check_alive(self) -> None:
        if not self.alive:
            raise ServerCrashed(f"{self.name} is down")

    def _begin(self) -> int:
        txid = self._next_txid
        self._next_txid += 1
        self.wal.append(txid, LogOp.BEGIN)
        return txid

    def _commit(self, txid: int) -> None:
        self.wal.append(txid, LogOp.COMMIT)
        self.wal.flush()  # durability: the log is forced at commit
        self.locks.release_all(txid)
        self._tick()

    def _tick(self) -> None:
        self.ops += 1
        self._ops_since_checkpoint += 1
        if self.metrics:
            self.metrics.counter("sqlstore.ops").inc()
        if self.sampler:
            # Gauges on the logical op clock: the running buffer-pool hit
            # rate and the fraction of ops that hit a lock wait so far.
            clock = float(self.ops)
            self.sampler.sample(self.name, "bufferpool-hit", clock,
                                self.pool.hit_rate)
            self.sampler.sample(self.name, "lock-wait-fraction", clock,
                                self.lock_wait_events / self.ops)
        if self._ops_since_checkpoint >= self.checkpoint_interval_ops:
            self.checkpoint()

    def _access(self, page_id: int, dirty: bool = False) -> bool:
        """Buffer-pool access; a miss is a page read off disk (span + IO)."""
        hit = self.pool.access(page_id, dirty=dirty)
        if not hit:
            if self.tracer:
                clock = float(self.ops)
                self.tracer.add(
                    "page.read", clock, clock + 1.0,
                    cat="io", node=self.name, lane="buffer-pool",
                    page=page_id, bytes=PAGE_SIZE,
                )
            if self.metrics:
                self.metrics.counter("sqlstore.page_reads").inc()
                self.metrics.counter("sqlstore.read_io_bytes").inc(PAGE_SIZE)
        return hit

    def _acquire(self, txid: int, key: str, mode: LockMode) -> None:
        """Lock acquisition; a conflict becomes a lock-wait span."""
        try:
            self.locks.acquire(txid, key, mode)
        except (LockWait, TransactionAborted):
            self.lock_wait_events += 1
            if self.tracer:
                clock = float(self.ops)
                span = self.tracer.add(
                    "lock.wait", clock, clock + 1.0,
                    cat="lock", node=self.name, lane="locks",
                    key=key, mode=mode.value,
                )
                # Waiters on the same key queue behind each other: a
                # lock-handoff chain per contended key.  (Waits within the
                # same logical tick have no order, so no link.)
                prev = self._last_wait_span.get(key)
                if prev is not None and prev.end <= span.start + 1e-9:
                    self.tracer.link(prev, span, "lock-handoff")
                self._last_wait_span[key] = span
            if self.metrics:
                self.metrics.counter("sqlstore.lock_waits").inc()
            raise

    def checkpoint(self) -> int:
        """Write back all dirty pages and truncate the log."""
        written = self.pool.flush_all()
        for page in self.pages.dirty_pages():
            page.dirty = False
        self.wal.checkpoint()
        self._ops_since_checkpoint = 0
        if self.tracer:
            clock = float(self.ops)
            span = self.tracer.add(
                "checkpoint", clock, clock,
                cat="checkpoint", node=self.name, lane="checkpoint",
                pages=written,
            )
            # Checkpoints form their own causal sequence: each one flushes
            # the dirty pages accumulated since the previous.
            if self._last_checkpoint_span is not None:
                self.tracer.link(self._last_checkpoint_span, span, "seq")
            self._last_checkpoint_span = span
        if self.metrics:
            self.metrics.counter("sqlstore.checkpoints").inc()
            self.metrics.counter("sqlstore.checkpoint_pages").inc(written)
        return written

    # -- operations -----------------------------------------------------------------

    def insert(self, key: str, record: dict[str, str]) -> None:
        self._check_alive()
        txid = self._begin()
        data = encode_row(record)
        if len(data) + 8 > PAGE_SIZE:
            raise StorageError("row larger than a page")
        self._acquire(txid, key, LockMode.EXCLUSIVE)
        if key in self.index:
            self.locks.release_all(txid)
            raise StorageError(f"duplicate key {key!r}")
        page = self.pages.page_for_insert(data)
        page.put(key, data)
        self.index.insert(key, page.page_id)
        self._access(page.page_id, dirty=True)
        self.wal.append(txid, LogOp.INSERT, key=key, after=data)
        self._commit(txid)

    def read(self, key: str) -> Optional[dict[str, str]]:
        self._check_alive()
        txid = self._begin()
        try:
            if self.isolation is IsolationLevel.READ_COMMITTED:
                self._acquire(txid, key, LockMode.SHARED)
            page_id = self.index.get(key)
            if page_id is None:
                return None
            self._access(page_id)
            data = self.pages.get(page_id).get(key)
            return decode_row(data) if data is not None else None
        finally:
            self._commit(txid)

    def update(self, key: str, fieldname: str, value: str) -> bool:
        self._check_alive()
        txid = self._begin()
        try:
            self._acquire(txid, key, LockMode.EXCLUSIVE)
            page_id = self.index.get(key)
            if page_id is None:
                return False
            self._access(page_id, dirty=True)
            page = self.pages.get(page_id)
            before = page.get(key)
            row = decode_row(before)
            row[fieldname] = value
            after = encode_row(row)
            page.put(key, after)
            self.wal.append(txid, LogOp.UPDATE, key=key, before=before, after=after)
            return True
        finally:
            self._commit(txid)

    def remove(self, key: str) -> bool:
        """Delete one row transactionally (used by elastic shard handoff)."""
        self._check_alive()
        txid = self._begin()
        try:
            self._acquire(txid, key, LockMode.EXCLUSIVE)
            page_id = self.index.get(key)
            if page_id is None:
                return False
            self._access(page_id, dirty=True)
            page = self.pages.get(page_id)
            before = page.get(key)
            page.delete(key)
            self.index.delete(key)
            self.wal.append(txid, LogOp.DELETE, key=key, before=before)
            return True
        finally:
            self._commit(txid)

    def keys_in_range(self, low: str, high: str) -> list[str]:
        """All keys in [low, high), sorted — migration snapshot enumeration.

        Metadata-only (walks the index, touches no pages); the data-plane
        cost of actually moving the rows is modelled by the migration
        engine's throttled copy batches.
        """
        self._check_alive()
        return [k for k, _ in self.index.items() if low <= k < high]

    def scan(self, start_key: str, count: int) -> list[dict[str, str]]:
        self._check_alive()
        txid = self._begin()
        try:
            out = []
            for key, page_id in self.index.range_scan(start_key, count):
                if self.isolation is IsolationLevel.READ_COMMITTED:
                    self._acquire(txid, key, LockMode.SHARED)
                self._access(page_id)
                data = self.pages.get(page_id).get(key)
                row = decode_row(data)
                row["_key"] = key
                out.append(row)
            return out
        finally:
            self._commit(txid)

    @property
    def row_count(self) -> int:
        return len(self.index)

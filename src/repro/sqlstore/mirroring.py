"""SQL Server synchronous database mirroring (log-shipping HA).

The paper's SQL Server deployments were single nodes per shard — durable
through the force-at-commit WAL, but a dead node takes its key range down
exactly like the paper's bare mongods.  This module adds the production
counterpart the Elephants actually ship: synchronous mirroring, where every
commit's log records are hardened on a mirror before the client is
acknowledged, so a principal crash loses *nothing* and the mirror promotes
immediately.

Functionally, the mirror replays each committed operation as it commits on
the principal (redo shipping); the latency cost of the synchronous round
trip is surfaced through :meth:`consume_ack_delay` so the YCSB runner can
charge it on the virtual clock.  Contrast with the Mongo replica set, where
``safe``-mode acks race the 100 ms journal flush and a failover can roll
acknowledged writes back.
"""

from __future__ import annotations

from repro.common.errors import ServerCrashed
from repro.replication.replicaset import LastWrite
from repro.sqlstore.locks import IsolationLevel
from repro.sqlstore.server import SqlServerNode

#: Default synchronous-commit round trip to the mirror (seconds).
MIRROR_COMMIT_LATENCY = 0.001


class MirroredSqlServerNode:
    """A principal/mirror pair with synchronous commit and auto-failover.

    Presents the same surface as a bare :class:`SqlServerNode` (``insert``,
    ``read``, ``update``, ``scan``, ``kill``, ``restart``, ``row_count``,
    ``alive``) so :class:`repro.sqlstore.cluster.SqlCsCluster` can use one
    per shard unchanged.  ``kill`` downs the current principal; if the
    mirror is up it promotes at once, so the client sees retries at worst,
    never lost committed writes.
    """

    def __init__(
        self,
        name: str = "sql",
        pool_pages: int = 4096,
        isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
        mirror_commit_latency: float = MIRROR_COMMIT_LATENCY,
    ):
        self.name = name
        self.principal = SqlServerNode(
            f"{name}.principal", pool_pages=pool_pages, isolation=isolation
        )
        self.mirror = SqlServerNode(
            f"{name}.mirror", pool_pages=pool_pages, isolation=isolation
        )
        self.mirror_commit_latency = mirror_commit_latency
        self.failovers = 0
        self._last_ack_delay = 0.0
        self._last_write: LastWrite | None = None

    # -- mirroring ----------------------------------------------------------------

    def _ship(self, operation) -> None:
        """Synchronous commit: the mirror hardens the op before the ack."""
        if self.mirror.alive:
            operation(self.mirror)
            self._last_ack_delay = self.mirror_commit_latency
        else:
            # Degraded (mirror down): the principal keeps serving alone,
            # which is how SQL Server's high-safety mode behaves once the
            # witness confirms the partner is gone.
            self._last_ack_delay = 0.0

    def consume_ack_delay(self) -> float:
        delay, self._last_ack_delay = self._last_ack_delay, 0.0
        return delay

    def take_last_write(self) -> LastWrite | None:
        write, self._last_write = self._last_write, None
        return write

    # -- operations ---------------------------------------------------------------

    def insert(self, key: str, record: dict) -> None:
        self.principal.insert(key, record)
        self._ship(lambda node: node.insert(key, record))
        self._last_write = LastWrite(
            seq=self.principal.ops, op="insert", collection="usertable",
            key=key, fieldname=None, value=None, write_time=0.0,
            ack_time=0.0, concern="mirrored",
        )

    def read(self, key: str):
        return self.principal.read(key)

    def update(self, key: str, fieldname: str, value: str) -> bool:
        ok = self.principal.update(key, fieldname, value)
        if ok:
            self._ship(lambda node: node.update(key, fieldname, value))
            self._last_write = LastWrite(
                seq=self.principal.ops, op="update", collection="usertable",
                key=key, fieldname=fieldname, value=value, write_time=0.0,
                ack_time=0.0, concern="mirrored",
            )
        return ok

    def remove(self, key: str) -> bool:
        ok = self.principal.remove(key)
        if ok:
            self._ship(lambda node: node.remove(key))
        return ok

    def keys_in_range(self, low: str, high: str) -> list[str]:
        return self.principal.keys_in_range(low, high)

    def scan(self, start_key: str, count: int) -> list[dict]:
        return self.principal.scan(start_key, count)

    @property
    def row_count(self) -> int:
        return self.principal.row_count

    @property
    def alive(self) -> bool:
        return self.principal.alive

    # -- failover -----------------------------------------------------------------

    def kill(self) -> None:
        """Down the principal; the mirror (if up) promotes immediately."""
        self.principal.kill()
        if self.mirror.alive:
            self.principal, self.mirror = self.mirror, self.principal
            self.failovers += 1

    def restart(self) -> None:
        """Restart whichever partner is down and resync it from the principal."""
        if not self.principal.alive and not self.mirror.alive:
            # Total outage: bring the principal back from its durable log.
            self.principal.restart()
        if not self.mirror.alive:
            self.mirror = self._resync_mirror()

    def _resync_mirror(self) -> SqlServerNode:
        """Rebuild the mirror as a full copy of the principal's rows.

        (A restore-plus-log-tail in real SQL Server; here the principal's
        current committed state *is* that restore, since every committed
        write is already applied in place.)
        """
        fresh = SqlServerNode(
            self.mirror.name,
            pool_pages=self.mirror.pool.capacity,
            isolation=self.mirror.isolation,
        )
        count = self.principal.row_count
        for row in (self.principal.scan("", count) if count else []):
            key = row.pop("_key")
            fresh.insert(key, row)
        return fresh

    def crash_principal_and_verify(self) -> int:
        """Test hook: kill the principal, return rows visible after failover."""
        self.kill()
        if not self.principal.alive:
            raise ServerCrashed(f"{self.name}: no surviving partner")
        return self.principal.row_count

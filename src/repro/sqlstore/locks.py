"""Row-level locking with READ COMMITTED / READ UNCOMMITTED isolation.

SQL Server's default READ COMMITTED takes short shared locks for reads and
holds exclusive locks to commit; the paper re-ran workload A under READ
UNCOMMITTED to show the read-latency drop when reads stop waiting on
writers.  The lock manager records wait events (in the single-threaded
functional layer a conflict surfaces immediately) that the performance
layer's contention model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import TransactionAborted


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class IsolationLevel(Enum):
    READ_UNCOMMITTED = "read uncommitted"
    READ_COMMITTED = "read committed"


@dataclass
class _LockState:
    mode: LockMode
    owners: set[int] = field(default_factory=set)


class LockManager:
    """Per-key S/X locks with immediate-abort conflict handling."""

    def __init__(self):
        self._locks: dict[str, _LockState] = {}
        self.shared_acquired = 0
        self.exclusive_acquired = 0
        self.conflicts = 0

    def acquire(self, txid: int, key: str, mode: LockMode) -> None:
        state = self._locks.get(key)
        if state is None:
            self._locks[key] = _LockState(mode, {txid})
        elif state.mode is LockMode.SHARED and mode is LockMode.SHARED:
            state.owners.add(txid)
        elif state.owners == {txid}:
            state.mode = LockMode.EXCLUSIVE if mode is LockMode.EXCLUSIVE else state.mode
        else:
            self.conflicts += 1
            raise TransactionAborted(
                f"tx {txid} blocked on {key!r} ({state.mode.value} held by {state.owners})"
            )
        if mode is LockMode.SHARED:
            self.shared_acquired += 1
        else:
            self.exclusive_acquired += 1

    def release(self, txid: int, key: str) -> None:
        state = self._locks.get(key)
        if state is None or txid not in state.owners:
            return
        state.owners.discard(txid)
        if not state.owners:
            del self._locks[key]

    def release_all(self, txid: int) -> None:
        for key in [k for k, s in self._locks.items() if txid in s.owners]:
            self.release(txid, key)

    def held(self, key: str) -> bool:
        return key in self._locks

    @property
    def active_locks(self) -> int:
        return len(self._locks)


class WaitsForGraph:
    """Transaction waits-for edges with cycle detection (deadlock checking)."""

    def __init__(self):
        self._edges: dict[int, set[int]] = {}

    def add_wait(self, waiter: int, owners: set[int]) -> None:
        self._edges.setdefault(waiter, set()).update(o for o in owners if o != waiter)

    def remove(self, txid: int) -> None:
        self._edges.pop(txid, None)
        for waiters in self._edges.values():
            waiters.discard(txid)

    def find_cycle_from(self, start: int) -> list[int]:
        """DFS for a cycle reachable from ``start``; [] when none exists."""
        path: list[int] = []
        on_path: set[int] = set()

        def dfs(node: int) -> list[int]:
            path.append(node)
            on_path.add(node)
            for target in self._edges.get(node, ()):
                if target in on_path:
                    return path[path.index(target):]
                found = dfs(target)
                if found:
                    return found
            path.pop()
            on_path.discard(node)
            return []

        return dfs(start)


class BlockingLockManager(LockManager):
    """Row locks with SQL Server's blocking semantics and deadlock victims.

    A conflicting request *waits* (``LockWait``) instead of aborting; when a
    wait would close a cycle in the waits-for graph, the youngest
    transaction in the cycle (largest txid) is chosen as the deadlock victim
    and aborted — SQL Server's default victim policy is the cheapest
    transaction, which for the uniform YCSB transactions is the youngest.
    """

    def __init__(self):
        super().__init__()
        self.waits_for = WaitsForGraph()
        self.deadlocks = 0
        self._aborted: set[int] = set()

    def acquire(self, txid: int, key: str, mode: LockMode) -> None:
        from repro.common.errors import LockWait

        if txid in self._aborted:
            raise TransactionAborted(f"tx {txid} was chosen as a deadlock victim")
        state = self._locks.get(key)
        compatible = (
            state is None
            or (state.mode is LockMode.SHARED and mode is LockMode.SHARED)
            or state.owners == {txid}
        )
        if compatible:
            super().acquire(txid, key, mode)
            return
        self.waits_for.add_wait(txid, set(state.owners))
        cycle = self.waits_for.find_cycle_from(txid)
        if cycle:
            self.deadlocks += 1
            victim = max(cycle)
            self.waits_for.remove(victim)
            if victim == txid:
                # The abort rolls the victim back, releasing its locks.
                super().release_all(txid)
                raise TransactionAborted(
                    f"deadlock: tx {txid} chosen as victim (cycle {cycle})"
                )
            super().release_all(victim)
            self.waits_for.remove(victim)
            self._aborted.add(victim)
            # With the victim gone the lock may now be free; retry once.
            self.waits_for.remove(txid)
            self.acquire(txid, key, mode)
            return
        raise LockWait(f"tx {txid} waits for {state.owners} on {key!r}")

    def release_all(self, txid: int) -> None:
        super().release_all(txid)
        self.waits_for.remove(txid)
        self._aborted.discard(txid)

"""SQL Server model: pages, buffer pool, WAL, locks, server, SQL-CS cluster."""

from repro.sqlstore.bufferpool import BufferPool
from repro.sqlstore.cluster import SqlCsCluster
from repro.sqlstore.locks import IsolationLevel, LockManager, LockMode
from repro.sqlstore.pages import PAGE_SIZE, Page, PageManager, decode_row, encode_row
from repro.sqlstore.server import SqlServerNode
from repro.sqlstore.wal import LogOp, LogRecord, WriteAheadLog

__all__ = [
    "BufferPool",
    "SqlCsCluster",
    "IsolationLevel",
    "LockManager",
    "LockMode",
    "PAGE_SIZE",
    "Page",
    "PageManager",
    "decode_row",
    "encode_row",
    "SqlServerNode",
    "LogOp",
    "LogRecord",
    "WriteAheadLog",
]

"""A model of HDFS: files, 256 MB blocks, 3-way replication, capacity.

The model tracks exactly what the paper's analysis depends on:

* **block counts** — Hive launches one map task per file, or per block for
  files larger than a block (Q22 sub-query 1: each customer bucket is 3
  blocks at 16 TB, so 600 tasks replace 200);
* **capacity accounting** — replicated writes consume 3x raw space, which is
  how Hive ran out of disk running Q9 at the 16 TB scale factor;
* **delivered scan bandwidth** — the paper measured ~400 MB/s/node from HDFS
  against ~800 MB/s/node of raw disk.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import OutOfDiskSpace, StorageError
from repro.common.units import MB

DEFAULT_BLOCK_SIZE = 256 * MB
DEFAULT_REPLICATION = 3


@dataclass(frozen=True)
class HdfsFile:
    """One HDFS file: a path, a size, and derived block geometry."""

    path: str
    size: int
    block_size: int = DEFAULT_BLOCK_SIZE
    replication: int = DEFAULT_REPLICATION

    def __post_init__(self):
        if self.size < 0:
            raise StorageError(f"negative file size for {self.path!r}")
        if self.block_size <= 0 or self.replication < 1:
            raise StorageError("block size and replication must be positive")

    @property
    def num_blocks(self) -> int:
        """Empty files still occupy one (empty) block entry — and get a map task."""
        if self.size == 0:
            return 1
        return math.ceil(self.size / self.block_size)

    @property
    def stored_bytes(self) -> int:
        """Raw capacity consumed including replication."""
        return self.size * self.replication


@dataclass
class NameNode:
    """File registry plus cluster-wide capacity accounting."""

    capacity: float  # raw bytes across all datanodes
    block_size: int = DEFAULT_BLOCK_SIZE
    replication: int = DEFAULT_REPLICATION
    _files: dict[str, HdfsFile] = field(default_factory=dict)

    def create(self, path: str, size: int, replication: int | None = None) -> HdfsFile:
        """Create a file; raises :class:`OutOfDiskSpace` when the cluster is full."""
        if path in self._files:
            raise StorageError(f"file exists: {path!r}")
        f = HdfsFile(
            path,
            size,
            block_size=self.block_size,
            replication=replication if replication is not None else self.replication,
        )
        if self.used + f.stored_bytes > self.capacity:
            raise OutOfDiskSpace(
                f"writing {path!r} needs {f.stored_bytes} bytes but only "
                f"{self.free:.0f} free of {self.capacity:.0f}"
            )
        self._files[path] = f
        return f

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise StorageError(f"no such file: {path!r}")
        del self._files[path]

    def exists(self, path: str) -> bool:
        return path in self._files

    def stat(self, path: str) -> HdfsFile:
        if path not in self._files:
            raise StorageError(f"no such file: {path!r}")
        return self._files[path]

    def listdir(self, prefix: str) -> list[HdfsFile]:
        """All files whose path starts with ``prefix`` (a directory listing)."""
        return sorted(
            (f for p, f in self._files.items() if p.startswith(prefix)),
            key=lambda f: f.path,
        )

    @property
    def used(self) -> float:
        return sum(f.stored_bytes for f in self._files.values())

    @property
    def free(self) -> float:
        return self.capacity - self.used

    @property
    def file_count(self) -> int:
        return len(self._files)

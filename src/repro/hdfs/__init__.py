"""HDFS model: files, blocks, replication, and capacity accounting."""

from repro.hdfs.filesystem import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_REPLICATION,
    HdfsFile,
    NameNode,
)

__all__ = ["DEFAULT_BLOCK_SIZE", "DEFAULT_REPLICATION", "HdfsFile", "NameNode"]

"""YCSB benchmark substrate: generators, workloads, functional client."""

from repro.ycsb.client import OpStats, YcsbClient
from repro.ycsb.eventsim import EventSimResult, SimStation, simulate_closed_loop
from repro.ycsb.trace import TraceOp, generate_trace, read_trace, replay, write_trace
from repro.ycsb.generators import (
    CounterGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)
from repro.ycsb.workloads import (
    FIELD_COUNT,
    FIELD_LENGTH,
    KEY_LENGTH,
    MAX_SCAN_LENGTH,
    RECORD_BYTES,
    WORKLOADS,
    WorkloadSpec,
    make_field_value,
    make_key,
    make_record,
)

__all__ = [
    "OpStats",
    "YcsbClient",
    "EventSimResult",
    "SimStation",
    "simulate_closed_loop",
    "TraceOp",
    "generate_trace",
    "read_trace",
    "replay",
    "write_trace",
    "CounterGenerator",
    "LatestGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
    "FIELD_COUNT",
    "FIELD_LENGTH",
    "KEY_LENGTH",
    "MAX_SCAN_LENGTH",
    "RECORD_BYTES",
    "WORKLOADS",
    "WorkloadSpec",
    "make_field_value",
    "make_key",
    "make_record",
]

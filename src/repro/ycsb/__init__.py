"""YCSB benchmark substrate: generators, workloads, functional client."""

from repro.ycsb.arrivals import PoissonArrivals
from repro.ycsb.client import OpStats, YcsbClient
from repro.ycsb.eventsim import (
    EventSimResult,
    OpenLoopResult,
    SimStation,
    simulate_closed_loop,
    simulate_open_loop,
)
from repro.ycsb.frontier import (
    KneeResult,
    find_knee,
    frontier_report,
    render_frontier_report,
    validate_frontier_report,
    write_frontier_report,
)
from repro.ycsb.trace import TraceOp, generate_trace, read_trace, replay, write_trace
from repro.ycsb.generators import (
    CounterGenerator,
    HotspotGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)
from repro.ycsb.workloads import (
    FIELD_COUNT,
    FIELD_LENGTH,
    KEY_LENGTH,
    MAX_SCAN_LENGTH,
    RECORD_BYTES,
    WORKLOADS,
    WorkloadSpec,
    make_field_value,
    make_key,
    make_record,
)

__all__ = [
    "OpStats",
    "YcsbClient",
    "EventSimResult",
    "OpenLoopResult",
    "PoissonArrivals",
    "SimStation",
    "simulate_closed_loop",
    "simulate_open_loop",
    "KneeResult",
    "find_knee",
    "frontier_report",
    "render_frontier_report",
    "validate_frontier_report",
    "write_frontier_report",
    "TraceOp",
    "generate_trace",
    "read_trace",
    "replay",
    "write_trace",
    "CounterGenerator",
    "HotspotGenerator",
    "LatestGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
    "FIELD_COUNT",
    "FIELD_LENGTH",
    "KEY_LENGTH",
    "MAX_SCAN_LENGTH",
    "RECORD_BYTES",
    "WORKLOADS",
    "WorkloadSpec",
    "make_field_value",
    "make_key",
    "make_record",
]

"""The five YCSB workloads of the paper's Table 6 and the record shape.

Records are 1 KB: a 24-byte zero-padded numeric key plus ten 100-byte string
fields, exactly as Section 3.4.1 describes.  Each read fetches the whole
record, each update rewrites one field, each scan reads at most 1,000
records, and each append inserts the next key after the largest loaded key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import WorkloadError
from repro.common.rng import TpchRandom64

KEY_LENGTH = 24
FIELD_COUNT = 10
FIELD_LENGTH = 100
RECORD_BYTES = KEY_LENGTH + FIELD_COUNT * FIELD_LENGTH
MAX_SCAN_LENGTH = 1000

OP_READ = "read"
OP_UPDATE = "update"
OP_INSERT = "insert"
OP_SCAN = "scan"
OP_RMW = "rmw"  # read-modify-write (YCSB workload F, not in the paper)


@dataclass(frozen=True)
class WorkloadSpec:
    """Operation mix plus request distribution for one YCSB workload."""

    name: str
    description: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0  # read-modify-write (workload F)
    request_distribution: str = "zipfian"  # zipfian | latest | uniform | hotspot

    def __post_init__(self):
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"workload {self.name}: mix sums to {total}, not 1")
        if self.request_distribution not in (
            "zipfian", "latest", "uniform", "hotspot",
        ):
            raise WorkloadError(f"unknown distribution {self.request_distribution!r}")

    def pick_operation(self, rng: TpchRandom64) -> str:
        u = rng.random_float()
        if u < self.read:
            return OP_READ
        if u < self.read + self.update:
            return OP_UPDATE
        if u < self.read + self.update + self.insert:
            return OP_INSERT
        if u < self.read + self.update + self.insert + self.scan:
            return OP_SCAN
        return OP_RMW

    @property
    def write_fraction(self) -> float:
        return self.update + self.insert + self.rmw


# Table 6 of the paper, plus the YCSB-standard workload F the paper did not
# run (an extension of this reproduction).
WORKLOADS: dict[str, WorkloadSpec] = {
    "A": WorkloadSpec("A", "Update heavy", read=0.5, update=0.5),
    "B": WorkloadSpec("B", "Read heavy", read=0.95, update=0.05),
    "C": WorkloadSpec("C", "Read only", read=1.0),
    "D": WorkloadSpec("D", "Read latest", read=0.95, insert=0.05,
                      request_distribution="latest"),
    "E": WorkloadSpec("E", "Short ranges", scan=0.95, insert=0.05),
    "F": WorkloadSpec("F", "Read-modify-write (extension)", read=0.5, rmw=0.5),
}
PAPER_WORKLOADS = ("A", "B", "C", "D", "E")


def make_key(index: int) -> str:
    """The paper's key format: the integer zero-padded to 24 bytes."""
    if index < 0:
        raise WorkloadError("key index must be non-negative")
    return str(index).zfill(KEY_LENGTH)


def make_record(rng: TpchRandom64) -> dict[str, str]:
    """Ten random 100-byte string fields."""
    alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    return {
        f"field{i}": "".join(rng.choice(alphabet) for _ in range(FIELD_LENGTH))
        for i in range(FIELD_COUNT)
    }


def make_field_value(rng: TpchRandom64) -> str:
    alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    return "".join(rng.choice(alphabet) for _ in range(FIELD_LENGTH))

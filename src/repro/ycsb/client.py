"""The functional YCSB client: loads data and drives real operations.

This layer exercises the *storage engines themselves* (Mongo-AS, Mongo-CS,
SQL-CS) at a reduced scale, verifying functional correctness — every read
returns the full 10-field record, updates are read-your-writes, appends are
immediately visible, scans return ordered contiguous keys.  The paper-scale
latency/throughput figures come from the analytic model in
:mod:`repro.core.oltp`, which is parameterized by behaviour measured here
(buffer-pool hit rates, lock acquisitions, shards touched per scan).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import WorkloadError
from repro.common.rng import SeedStream
from repro.ycsb.generators import (
    CounterGenerator,
    HotspotGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)
from repro.ycsb.workloads import (
    FIELD_COUNT,
    MAX_SCAN_LENGTH,
    OP_INSERT,
    OP_READ,
    OP_RMW,
    OP_UPDATE,
    WorkloadSpec,
    make_field_value,
    make_key,
    make_record,
)


@dataclass
class OpStats:
    """Counts and consistency-check results from a functional run."""

    reads: int = 0
    updates: int = 0
    inserts: int = 0
    scans: int = 0
    rmws: int = 0
    scanned_records: int = 0
    read_misses: int = 0
    verification_failures: list[str] = field(default_factory=list)

    @property
    def total_ops(self) -> int:
        return self.reads + self.updates + self.inserts + self.scans + self.rmws


class YcsbClient:
    """Drives a cluster implementing read/update/insert/scan by key."""

    def __init__(self, cluster, workload: WorkloadSpec, record_count: int, seed: int = 7):
        if record_count < 2:
            raise WorkloadError("need at least two records")
        self.cluster = cluster
        self.workload = workload
        self.record_count = record_count
        self.seeds = SeedStream(seed)
        self._op_rng = self.seeds.rng_for("ops")
        self._data_rng = self.seeds.rng_for("data")
        self._counter = CounterGenerator(record_count)
        self._chooser = self._make_chooser()
        # Shadow copy of sampled fields for read-your-writes verification.
        self._shadow: dict[tuple[str, str], str] = {}

    def _make_chooser(self):
        rng = self.seeds.rng_for("chooser")
        dist = self.workload.request_distribution
        if dist == "uniform":
            gen = UniformGenerator(self.record_count, rng)
            return lambda: gen.next()
        if dist == "zipfian":
            gen = ScrambledZipfianGenerator(self.record_count, rng)
            return lambda: min(gen.next(), self._counter.last)
        if dist == "hotspot":
            gen = HotspotGenerator(self.record_count, rng)
            return lambda: min(gen.next(), self._counter.last)
        gen = LatestGenerator(self.record_count, rng)
        self._latest = gen
        return lambda: gen.next()

    # -- load phase -------------------------------------------------------------------

    def load(self) -> None:
        """Insert records 0 .. record_count-1 (ordered keys, as the paper)."""
        for i in range(self.record_count):
            self.cluster.insert(make_key(i), make_record(self._data_rng))

    # -- run phase ---------------------------------------------------------------------

    def run(self, operations: int, verify: bool = True) -> OpStats:
        stats = OpStats()
        for _ in range(operations):
            op = self.workload.pick_operation(self._op_rng)
            if op == OP_READ:
                self._do_read(stats, verify)
            elif op == OP_UPDATE:
                self._do_update(stats)
            elif op == OP_INSERT:
                self._do_insert(stats, verify)
            elif op == OP_RMW:
                self._do_rmw(stats)
            else:
                self._do_scan(stats, verify)
        return stats

    def _do_rmw(self, stats: OpStats) -> None:
        """Workload F: read the record, modify one field, write it back."""
        key = make_key(self._chooser())
        record = self.cluster.read(key)
        if record is not None:
            fieldname = f"field{self._op_rng.random_int(0, FIELD_COUNT - 1)}"
            value = make_field_value(self._data_rng)
            if self.cluster.update(key, fieldname, value):
                self._shadow[(key, fieldname)] = value
        stats.rmws += 1

    def _do_read(self, stats: OpStats, verify: bool) -> None:
        key = make_key(self._chooser())
        record = self.cluster.read(key)
        stats.reads += 1
        if record is None:
            stats.read_misses += 1
            return
        if verify:
            fields = [f for f in record if f.startswith("field")]
            if len(fields) != FIELD_COUNT:
                stats.verification_failures.append(f"read {key}: {len(fields)} fields")
            for (k, fname), expected in list(self._shadow.items()):
                if k == key and record.get(fname) != expected:
                    stats.verification_failures.append(
                        f"read {key}.{fname}: stale value"
                    )

    def _do_update(self, stats: OpStats) -> None:
        key = make_key(self._chooser())
        fieldname = f"field{self._op_rng.random_int(0, FIELD_COUNT - 1)}"
        value = make_field_value(self._data_rng)
        if self.cluster.update(key, fieldname, value):
            self._shadow[(key, fieldname)] = value
        stats.updates += 1

    def _do_insert(self, stats: OpStats, verify: bool) -> None:
        index = self._counter.next()
        key = make_key(index)
        self.cluster.insert(key, make_record(self._data_rng))
        if hasattr(self, "_latest"):
            self._latest.observe_insert()
        stats.inserts += 1
        if verify and self.cluster.read(key) is None:
            stats.verification_failures.append(f"insert {key}: not visible")

    def _do_scan(self, stats: OpStats, verify: bool) -> None:
        start = self._chooser()
        length = self._op_rng.random_int(1, MAX_SCAN_LENGTH)
        rows = self.cluster.scan(make_key(start), length)
        stats.scans += 1
        stats.scanned_records += len(rows)
        if verify and rows:
            keys = [r.get("_id") or r.get("_key") for r in rows]
            if keys != sorted(keys):
                stats.verification_failures.append(f"scan @{start}: unordered result")

"""YCSB-style latency histograms.

The real YCSB client records every operation's latency into a histogram
(1 ms buckets up to 1 s, plus an overflow bucket) and reports average, min,
max, 95th and 99th percentiles from it — which is exactly what the paper's
latency numbers are.  This implementation mirrors that design, with a
mergeable representation so per-thread histograms combine into the run's
report, and a compact text rendering like YCSB's output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import WorkloadError

DEFAULT_BUCKETS = 1000  # 1 ms buckets up to 1 s, as in YCSB
BUCKET_WIDTH = 0.001


@dataclass
class LatencyHistogram:
    """Fixed-width latency buckets with an overflow bucket."""

    buckets: int = DEFAULT_BUCKETS
    bucket_width: float = BUCKET_WIDTH
    counts: list[int] = field(default_factory=list)
    overflow: int = 0
    total: int = 0
    sum_latency: float = 0.0
    min_latency: float = float("inf")
    max_latency: float = 0.0
    errors: int = 0  # ops that exhausted their retry budget (fault injection)
    shed: int = 0  # ops shed by overload protection (no latency recorded)

    def __post_init__(self):
        if self.buckets < 1 or self.bucket_width <= 0:
            raise WorkloadError("histogram needs positive buckets and width")
        if not self.counts:
            self.counts = [0] * self.buckets

    def record(self, latency: float) -> None:
        if latency < 0:
            raise WorkloadError("negative latency")
        index = int(latency / self.bucket_width)
        # Bucket i covers [i*w, (i+1)*w).  Float division can round either
        # way at the boundaries (0.003/0.001 == 2.999...96 but
        # 0.007/0.001 == 7.000...01), which used to drop an exactly-3 ms
        # latency into the 2-3 ms bucket and understate the percentile one
        # whole bucket.  Correct against the edges explicitly instead of
        # trusting the quotient.
        if (index + 1) * self.bucket_width <= latency:
            index += 1
        elif index * self.bucket_width > latency:
            index -= 1
        if index >= self.buckets:
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.total += 1
        self.sum_latency += latency
        self.min_latency = min(self.min_latency, latency)
        self.max_latency = max(self.max_latency, latency)

    def record_error(self) -> None:
        """Count an op abandoned after retries; its latency is still recorded."""
        self.errors += 1

    def record_shed(self) -> None:
        """Count an op shed by overload protection.

        A shed op never received service, so it contributes no latency —
        it is excluded from the mean and the percentiles — but it counts
        toward :attr:`error_rate`, because the client saw a failure.
        """
        self.shed += 1

    @property
    def error_rate(self) -> float:
        """Failed fraction of attempted ops (abandoned plus shed)."""
        attempted = self.total + self.shed
        return (self.errors + self.shed) / attempted if attempted else 0.0

    @property
    def mean(self) -> float:
        return self.sum_latency / self.total if self.total else 0.0

    def percentile(self, p: float) -> float:
        """YCSB semantics: the upper edge of the bucket holding rank p."""
        if not 0.0 < p <= 100.0:
            raise WorkloadError("percentile must be in (0, 100]")
        if self.total == 0:
            return 0.0
        rank = p / 100.0 * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return (index + 1) * self.bucket_width
        return self.max_latency  # rank falls in the overflow bucket

    def merge(self, other: "LatencyHistogram") -> None:
        """Combine another histogram (per-thread -> per-run aggregation)."""
        if (other.buckets, other.bucket_width) != (self.buckets, self.bucket_width):
            raise WorkloadError("cannot merge histograms with different geometry")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.overflow += other.overflow
        self.total += other.total
        self.errors += other.errors
        self.shed += other.shed
        self.sum_latency += other.sum_latency
        self.min_latency = min(self.min_latency, other.min_latency)
        self.max_latency = max(self.max_latency, other.max_latency)

    def render(self, operation: str = "READ") -> str:
        """YCSB-style summary block."""
        if self.total == 0:
            if self.shed:
                return (f"[{operation}] Operations: 0\n"
                        f"[{operation}] Shed: {self.shed}")
            return f"[{operation}] no operations recorded"
        lines = [
            f"[{operation}] Operations: {self.total}",
            f"[{operation}] AverageLatency(ms): {self.mean * 1000:.3f}",
            f"[{operation}] MinLatency(ms): {self.min_latency * 1000:.3f}",
            f"[{operation}] MaxLatency(ms): {self.max_latency * 1000:.3f}",
            f"[{operation}] 95thPercentileLatency(ms): "
            f"{self.percentile(95) * 1000:.1f}",
            f"[{operation}] 99thPercentileLatency(ms): "
            f"{self.percentile(99) * 1000:.1f}",
        ]
        if self.overflow:
            lines.append(f"[{operation}] >{self.buckets * self.bucket_width * 1000:.0f}ms: "
                         f"{self.overflow}")
        if self.errors:
            lines.append(f"[{operation}] Errors: {self.errors}")
        if self.shed:
            lines.append(f"[{operation}] Shed: {self.shed}")
        return "\n".join(lines)


def from_latencies(latencies: list[float], **kwargs) -> LatencyHistogram:
    """Build a histogram from raw latency samples."""
    histogram = LatencyHistogram(**kwargs)
    for latency in latencies:
        histogram.record(latency)
    return histogram


def from_digest(digest, **kwargs) -> LatencyHistogram:
    """Build a YCSB histogram from a :class:`~repro.obs.digest.QuantileDigest`.

    Each log bucket's population is placed at its upper edge — the value
    the digest would report for any observation in it — so the resulting
    fixed-width histogram is within one digest bucket of the histogram the
    raw stream would have produced.  Bounded-memory runs use this to keep
    the ``LatencyHistogram``-shaped report fields without per-op lists.
    """
    histogram = LatencyHistogram(**kwargs)
    for index in sorted(digest.buckets):
        edge = digest.bucket_edge(index)
        count = digest.buckets[index]
        slot = int(edge / histogram.bucket_width)
        if (slot + 1) * histogram.bucket_width <= edge:
            slot += 1
        elif slot * histogram.bucket_width > edge:
            slot -= 1
        if slot >= histogram.buckets:
            histogram.overflow += count
        else:
            histogram.counts[slot] += count
        histogram.total += count
        histogram.sum_latency += edge * count
        histogram.min_latency = min(histogram.min_latency, edge)
        histogram.max_latency = max(histogram.max_latency, edge)
    # Exact stream stats override the bucket-edge approximations.
    if digest.count:
        histogram.sum_latency = digest.total
        histogram.min_latency = digest.min
        histogram.max_latency = digest.max
    return histogram

"""Discrete-event validation of the closed-loop queueing model.

The YCSB figures come from analytic MVA (fast, deterministic).  This module
re-runs the same closed loop — N client processes cycling through the same
service stations — on the discrete-event kernel, with exponential service
times and per-window measurement, exactly like the paper's protocol (average
over measurement windows, standard error across windows).

It serves two purposes:

* a **validation test**: at moderate utilization the event simulation and
  MVA must agree on throughput and latency within a few percent;
* **error bars**: the event simulation produces the window-to-window
  standard errors the analytic model cannot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import SimulationError
from repro.common.rng import SeedStream, TpchRandom64
from repro.common.stats import arithmetic_mean, percentile, std_error
from repro.simcluster.events import Environment, Resource


@dataclass(frozen=True)
class SimStation:
    """One service station: capacity plus per-op-class service means."""

    name: str
    servers: int
    service: dict  # op class -> mean service seconds


@dataclass
class EventSimResult:
    """Measured output of one closed-loop event simulation."""

    throughput: float  # ops/s over the measurement period
    latency: dict = field(default_factory=dict)  # class -> mean seconds
    latency_stderr: dict = field(default_factory=dict)  # class -> std error
    latency_p95: dict = field(default_factory=dict)  # class -> 95th percentile
    latency_p99: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)  # class -> LatencyHistogram
    window_throughputs: list = field(default_factory=list)
    completed_ops: int = 0
    # Fault-injection accounting (all zero on a healthy run).
    errors: dict = field(default_factory=dict)  # class -> abandoned ops
    retried_ops: int = 0
    backoff_seconds: float = 0.0

    @property
    def throughput_stderr(self) -> float:
        return std_error(self.window_throughputs)

    @property
    def error_count(self) -> int:
        return sum(self.errors.values())

    @property
    def availability(self) -> float:
        attempted = self.completed_ops + self.error_count
        return self.completed_ops / attempted if attempted else 1.0


def _exponential(rng: TpchRandom64, mean: float) -> float:
    u = rng.random_float()
    return -mean * math.log(1.0 - u) if mean > 0 else 0.0


def _pick_class(rng: TpchRandom64, mix: dict) -> str:
    u = rng.random_float()
    acc = 0.0
    for op_class, fraction in mix.items():
        acc += fraction
        if u < acc:
            return op_class
    return next(reversed(mix))


def simulate_closed_loop(
    stations: list[SimStation],
    mix: dict,
    clients: int,
    think_time: float = 0.0,
    duration: float = 60.0,
    warmup: float = 10.0,
    windows: int = 6,
    seed: int = 1234,
    tracer=None,
    metrics=None,
    sampler=None,
    faults=None,
    retry_policy=None,
    live=None,
    bounded=False,
    prof=None,
) -> EventSimResult:
    """Run N closed-loop clients over the stations and measure.

    Each client repeatedly: thinks (exponential with the given mean), picks
    an op class by the mix, then visits every station that serves that class
    (FIFO queueing, exponential service).  Latencies and completions are
    recorded per measurement window after the warm-up.

    With a ``tracer`` attached every completed request becomes a latency
    span (node ``client``, one lane per client thread) and every station
    resource emits hold/wait spans; ``metrics`` gets per-class op counters;
    a ``sampler`` (see :mod:`repro.obs.timeseries`) gets per-station busy
    and queue-depth series.  All default to off and change nothing about
    the simulated schedule.

    ``faults`` (a :class:`repro.faults.plan.StationFaults`, or anything
    iterable of :class:`~repro.faults.plan.FaultSpec`) injects faults on the
    simulated clock: ``disk-stall``/``net-spike`` inflate a station's
    service times over their window, ``op-error`` makes a station's ops fail
    transiently (clients retry with ``retry_policy``'s capped exponential
    backoff, abandoning the op when the policy gives up), and ``crash``
    shrinks a station's capacity over the window.  With ``faults`` left
    ``None`` the simulation draws the exact same random numbers as before
    the fault machinery existed — byte-identical results.

    ``live`` (a :class:`~repro.obs.live.LiveTelemetry`) streams every
    measured completion into bounded-memory windowed digests and evaluates
    SLO burn-rate rules online on the virtual clock.  ``bounded=True``
    additionally drops the store-everything latency lists: percentiles,
    means and histograms then come from the digests (within one log-bucket
    of exact; ``latency_stderr`` is unavailable).  Both default off and
    leave the unwatched run byte-identical.

    ``prof`` (a :class:`~repro.obs.prof.ProfiledRun`) charges the event
    loop, span construction and digest updates to host-time subsystem
    counters.  Profiling only reads wall clocks: the simulated schedule,
    results and reports stay byte-identical with it on or off.
    """
    if clients < 1:
        raise SimulationError("need at least one client")
    if not mix or abs(sum(mix.values()) - 1.0) > 1e-9:
        raise SimulationError("op mix must sum to 1")
    if duration <= warmup:
        raise SimulationError("duration must exceed warmup")
    if bounded and not live:
        raise SimulationError("bounded mode needs a live telemetry sink")

    station_faults = None
    policy = retry_policy
    if faults:
        from repro.faults.plan import StationFaults
        from repro.faults.retry import RetryPolicy

        station_faults = (
            faults if isinstance(faults, StationFaults) else StationFaults(faults)
        )
        if not station_faults:
            station_faults = None
        elif policy is None:
            policy = RetryPolicy()

    if prof is not None:
        from repro.obs.prof import profiled_live, profiled_tracer

        tracer = profiled_tracer(tracer, prof)
        live = profiled_live(live, prof)

    env = Environment(tracer=tracer, metrics=metrics, sampler=sampler,
                      prof=prof)
    resources = {s.name: Resource(env, s.servers, name=s.name) for s in stations}
    seeds = SeedStream(seed)

    latencies: dict[str, list[float]] = {c: [] for c in mix}
    error_latencies: dict[str, list[float]] = {c: [] for c in mix}
    fault_stats = {"retried": 0, "backoff": 0.0}
    # Window throughput is counted incrementally (same arithmetic the old
    # store-everything completions list fed) so no per-op times are kept.
    measure = duration - warmup
    window_width = measure / windows
    window_counts = [0] * windows
    completed = [0]

    def clamp_end(end: float, at: float) -> float:
        # A window with no duration holds until the end of the run.
        return duration if end <= at else min(end, duration)

    if station_faults:
        # Annotate the schedule up front: every window is known a priori.
        for spec in station_faults.windows:
            end = clamp_end(spec.end, spec.at)
            if tracer:
                tracer.add(
                    f"fault.{spec.kind}", spec.at, end,
                    cat="fault", node="faults", lane=spec.target,
                    magnitude=spec.magnitude,
                )
            if sampler:
                sampler.accumulate(spec.target, "fault", spec.at, end,
                                   level=1.0, capacity=1.0)
            if metrics:
                metrics.counter(f"faults.{spec.kind}").inc()
            if live:
                live.note_event(f"{spec.kind}:{spec.target}", spec.at, end)

        def crash_driver(resource: Resource, servers: int, crash_windows):
            for at, end, lost in sorted(crash_windows):
                if at > env.now:
                    yield env.timeout(at - env.now)
                resource.set_capacity(max(1, int(round(servers * (1.0 - lost)))))
                restore = clamp_end(end, at)
                if restore > env.now:
                    yield env.timeout(restore - env.now)
                resource.set_capacity(servers)

        for s in stations:
            crash_windows = station_faults.crash_windows(s.name)
            if crash_windows:
                env.process(crash_driver(resources[s.name], s.servers,
                                         crash_windows))

    def client(index: int):
        rng = seeds.rng_for("client", index)
        fault_rng = seeds.rng_for("fault", index) if station_faults else None
        while True:
            if think_time > 0:
                yield env.timeout(_exponential(rng, think_time))
            op_class = _pick_class(rng, mix)
            start = env.now
            failed = False
            attempts = 0
            op_spans = []  # visit/backoff spans to parent under the request
            for station in stations:
                mean = station.service.get(op_class, 0.0)
                if mean <= 0.0:
                    continue
                resource = resources[station.name]
                while True:
                    t_enter = env.now
                    grant = resource.request()
                    yield grant
                    t_granted = env.now
                    service = _exponential(rng, mean)
                    if station_faults:
                        service *= station_faults.slowdown(station.name, env.now)
                    yield env.timeout(service)
                    # Release on the normal path only — no try/finally.  A
                    # ``finally`` here would also fire on GeneratorExit when the
                    # garbage collector finalizes clients left suspended at the
                    # ``until`` cutoff, emitting phantom hold spans into the
                    # tracer at whatever moment collection happens to run.
                    resource.release()
                    if tracer:
                        # One span per station visit, split into queueing wait
                        # and service — the what-if engine's lock-wait handle.
                        visit = tracer.add(
                            f"visit.{station.name}", t_enter, env.now,
                            cat="visit", node="client",
                            lane=f"client-{index}",
                            cls=op_class, station=station.name,
                            wait=t_granted - t_enter,
                            service=env.now - t_granted,
                        )
                        if op_spans:
                            prev = op_spans[-1]
                            tracer.link(
                                prev, visit,
                                "retry" if prev.name == "retry.backoff"
                                else "seq",
                            )
                        op_spans.append(visit)
                    if station_faults:
                        probability = station_faults.error_probability(
                            station.name, env.now
                        )
                        if probability > 0.0 and fault_rng.random_float() < probability:
                            attempts += 1
                            if policy.gives_up(attempts, env.now - start):
                                failed = True
                                break
                            delay = policy.delay(attempts - 1)
                            fault_stats["retried"] += 1
                            fault_stats["backoff"] += delay
                            if tracer:
                                backoff = tracer.add(
                                    "retry.backoff", env.now, env.now + delay,
                                    cat="retry", node="client",
                                    lane=f"client-{index}",
                                    cls=op_class, attempt=attempts,
                                )
                                if op_spans:
                                    tracer.link(op_spans[-1], backoff, "retry")
                                op_spans.append(backoff)
                            if metrics:
                                metrics.counter("ycsb.retried_ops").inc()
                            yield env.timeout(delay)
                            continue  # retry this station visit
                    break
                if failed:
                    break
            if tracer:
                request = tracer.add(
                    f"request.{op_class}", start, env.now,
                    cat="request", node="client", lane=f"client-{index}",
                    cls=op_class, **({"error": True} if failed else {}),
                )
                for span in op_spans:
                    span.parent = request.span_id
            if metrics:
                metrics.counter(f"ycsb.ops.{op_class}").inc()
                if failed:
                    metrics.counter(f"ycsb.errors.{op_class}").inc()
            if env.now >= warmup:
                if live:
                    live.record_op(env.now, env.now - start, error=failed,
                                   cls=op_class)
                if failed:
                    if not bounded:
                        error_latencies[op_class].append(env.now - start)
                else:
                    completed[0] += 1
                    window_counts[
                        min(windows - 1, int((env.now - warmup) / window_width))
                    ] += 1
                    if not bounded:
                        latencies[op_class].append(env.now - start)
                if metrics:
                    metrics.counter("ycsb.measured_ops").inc()

    for i in range(clients):
        env.process(client(i))
    env.run(until=duration)
    if sampler:
        sampler.finish(env.now)
    if live:
        live.finish(env.now)

    result = EventSimResult(
        throughput=completed[0] / measure,
        completed_ops=completed[0],
    )
    result.window_throughputs = [c / window_width for c in window_counts]

    from repro.ycsb.histogram import LatencyHistogram, from_digest, from_latencies

    if bounded:
        # Digest-backed results: within one log-bucket of the exact values,
        # O(log(max/min)) memory per class, no stderr (it needs raw chunks).
        for op_class in mix:
            digest = live.class_digests.get(op_class)
            if digest is not None and digest.count:
                result.latency[op_class] = digest.mean
                result.latency_p95[op_class] = digest.percentile(95)
                result.latency_p99[op_class] = digest.percentile(99)
                result.histograms[op_class] = from_digest(digest)
            errors = live.class_errors.get(op_class, 0)
            if errors:
                histogram = result.histograms.setdefault(
                    op_class, LatencyHistogram())
                histogram.errors += errors
                result.errors[op_class] = errors
    else:
        for op_class, values in latencies.items():
            if not values:
                continue
            result.latency[op_class] = arithmetic_mean(values)
            result.latency_p95[op_class] = percentile(values, 95)
            result.latency_p99[op_class] = percentile(values, 99)
            result.histograms[op_class] = from_latencies(values)
            # Std error across evenly sized chunks approximates window error.
            chunk = max(1, len(values) // windows)
            means = [
                arithmetic_mean(values[i : i + chunk])
                for i in range(0, len(values) - chunk + 1, chunk)
            ]
            result.latency_stderr[op_class] = std_error(means)

        # Fold abandoned ops into the same histograms (YCSB accounts its
        # errors alongside the latencies): the burned latency is recorded
        # and the op is counted as an error.
        for op_class, values in error_latencies.items():
            if not values:
                continue
            histogram = result.histograms.setdefault(
                op_class, LatencyHistogram())
            for value in values:
                histogram.record(value)
                histogram.record_error()
            result.errors[op_class] = len(values)
    result.retried_ops = fault_stats["retried"]
    result.backoff_seconds = fault_stats["backoff"]
    if prof is not None:
        prof.note_ops(completed[0])
    return result


def mva_prediction(stations: list[SimStation], mix: dict, clients: int,
                   think_time: float = 0.0):
    """The analytic counterpart, for validation comparisons."""
    from repro.core.oltp import Station, closed_mva

    analytic = [
        Station(s.name, s.servers, service=dict(s.service)) for s in stations
    ]
    return closed_mva(analytic, mix, clients, think_time)


# -- open-loop (frontier) simulation ---------------------------------------------


@dataclass
class OpenLoopResult:
    """Measured output of one open-loop (Poisson-arrival) simulation.

    Latency accounting is **coordinated-omission-correct**: every latency is
    measured from the operation's *intended* start time — the moment its
    Poisson arrival was scheduled — so queueing delay from missed departures
    (all workers busy because the server stalled) is charged to the
    operation.  The ``uncorrected_*`` fields measure from the moment a
    worker actually picked the operation up, which is what a closed-loop
    client (and a naive load generator) reports; the gap between the two is
    the understatement coordinated omission hides.

    Measured arrivals still in flight when the run ends are **censored
    observations**, not discards: each contributes its lower bound
    ``end - intended`` to the pooled ``mean``/``p50``/``p95``/``p99``/
    ``p999``.  Dropping them would resurrect the survivorship cousin of
    coordinated omission — above saturation the slowest operations are
    exactly the ones that never finish.  The per-class dicts and
    ``uncorrected_*`` fields cover completed operations only (an op that
    never dispatched has no uncorrected latency at all).
    """

    offered_rate: float  # target arrival rate, ops/s
    throughput: float = 0.0  # completions/s over the measurement period
    arrivals: int = 0  # measured-window arrivals
    completed_ops: int = 0  # measured-window completions
    unfinished_ops: int = 0  # measured arrivals still in flight at cutoff
    latency: dict = field(default_factory=dict)  # class -> mean (intended)
    latency_p95: dict = field(default_factory=dict)
    latency_p99: dict = field(default_factory=dict)
    uncorrected_p99: dict = field(default_factory=dict)  # class -> p99
    histograms: dict = field(default_factory=dict)  # class -> LatencyHistogram
    # Overall (all classes pooled) intended-start-time percentiles.
    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    p999: float = 0.0
    uncorrected_overall_p99: float = 0.0
    max_dispatch_lag: float = 0.0  # worst intended-to-dispatch slip
    window_throughputs: list = field(default_factory=list)
    # Fault-injection accounting (all zero on a healthy run).
    errors: dict = field(default_factory=dict)  # class -> abandoned ops
    retried_ops: int = 0
    backoff_seconds: float = 0.0
    # Overload accounting (all zero/empty without an overload policy —
    # the zero-cost-off contract: the plain path never touches these).
    shed: dict = field(default_factory=dict)  # shed reason -> measured ops
    goodput: float = 0.0  # within-SLO completions/s (== throughput w/o SLO)
    late_ops: int = 0  # completions past the SLO/deadline
    resubmits: int = 0  # impatient-client duplicate attempts issued
    budget_denied: int = 0  # resubmits refused by the retry budget
    duplicates: int = 0  # duplicate attempts that finished after resolution
    series: list = field(default_factory=list)  # per-slice overload series

    @property
    def error_count(self) -> int:
        return sum(self.errors.values())

    @property
    def shed_count(self) -> int:
        return sum(self.shed.values())

    @property
    def goodput_fraction(self) -> float:
        """Fraction of measured arrivals completed inside the run."""
        return self.completed_ops / self.arrivals if self.arrivals else 1.0


def simulate_open_loop(
    stations: list[SimStation],
    mix: dict,
    rate: float,
    workers: int | None = None,
    duration: float = 60.0,
    warmup: float = 10.0,
    windows: int = 6,
    seed: int = 1234,
    tracer=None,
    metrics=None,
    sampler=None,
    faults=None,
    retry_policy=None,
    live=None,
    bounded=False,
    prof=None,
    overload=None,
) -> OpenLoopResult:
    """Drive the stations with open-loop Poisson arrivals at ``rate`` ops/s.

    Unlike :func:`simulate_closed_loop`, arrivals do not wait for prior
    completions: each operation has an *intended* start time drawn from a
    :class:`~repro.ycsb.arrivals.PoissonArrivals` schedule, and its latency
    is measured from that intended time through completion.  With a finite
    ``workers`` pool (a real load generator's thread count) an operation
    whose intended slot finds every worker busy is dispatched late — the
    wait is recorded as a ``dispatch.wait`` span and *included* in the
    operation's latency, which is the coordinated-omission fix.
    ``workers=None`` dispatches every arrival immediately (a pure open
    loop); the queueing then happens inside the stations and is charged to
    the operation all the same.

    ``faults``/``retry_policy`` compose exactly as in the closed loop:
    ``disk-stall``/``net-spike`` inflate service times over their window,
    ``op-error`` drives retries with capped backoff, ``crash`` shrinks a
    station's capacity.  Everything is a pure function of ``seed`` — each
    operation draws from its own :class:`~repro.common.rng.SeedStream`
    substream, so results do not depend on event interleaving.

    ``live``/``bounded`` behave as in :func:`simulate_closed_loop`: a
    :class:`~repro.obs.live.LiveTelemetry` sink streams completions (and
    the censored in-flight ops at cutoff) into windowed digests with
    online SLO evaluation; ``bounded=True`` replaces the store-everything
    latency lists with those digests.  ``prof`` charges host time to
    subsystem counters without perturbing any simulated output.

    ``overload`` (an :class:`~repro.overload.policy.OverloadPolicy`)
    switches to the admission-controlled simulator in
    :mod:`repro.overload.sim`: bounded station queues that shed, deadline
    propagation, and the impatient-client resubmit loop with its retry
    budget.  The ``None`` path below is byte-identical to the pre-overload
    simulator (zero-cost-off).
    """
    if overload is not None:
        from repro.overload.sim import overload_open_loop

        if tracer is not None or sampler is not None or bounded or prof:
            raise SimulationError(
                "the overload simulator supports faults/metrics/live only "
                "(no tracer, sampler, bounded, or prof)"
            )
        return overload_open_loop(
            stations, mix, rate, overload, workers=workers,
            duration=duration, warmup=warmup, windows=windows, seed=seed,
            faults=faults, metrics=metrics, live=live,
        )
    if rate <= 0:
        raise SimulationError(f"arrival rate must be > 0, got {rate:g}")
    if workers is not None and workers < 1:
        raise SimulationError("need at least one worker")
    if not mix or abs(sum(mix.values()) - 1.0) > 1e-9:
        raise SimulationError("op mix must sum to 1")
    if duration <= warmup:
        raise SimulationError("duration must exceed warmup")
    if bounded and not live:
        raise SimulationError("bounded mode needs a live telemetry sink")

    from repro.ycsb.arrivals import PoissonArrivals

    station_faults = None
    policy = retry_policy
    if faults:
        from repro.faults.plan import StationFaults
        from repro.faults.retry import RetryPolicy

        station_faults = (
            faults if isinstance(faults, StationFaults) else StationFaults(faults)
        )
        if not station_faults:
            station_faults = None
        elif policy is None:
            policy = RetryPolicy()

    if prof is not None:
        from repro.obs.prof import profiled_live, profiled_tracer

        tracer = profiled_tracer(tracer, prof)
        live = profiled_live(live, prof)

    env = Environment(tracer=tracer, metrics=metrics, sampler=sampler,
                      prof=prof)
    resources = {s.name: Resource(env, s.servers, name=s.name) for s in stations}
    pool = Resource(env, workers, name=None) if workers is not None else None
    seeds = SeedStream(seed)

    result = OpenLoopResult(offered_rate=rate)
    latencies: dict[str, list[float]] = {c: [] for c in mix}
    uncorrected: dict[str, list[float]] = {c: [] for c in mix}
    error_latencies: dict[str, list[float]] = {c: [] for c in mix}
    pending: dict[int, float] = {}  # measured in-flight ops: index -> intended
    counters = {"arrivals": 0, "started": 0, "finished": 0,
                "retried": 0, "backoff": 0.0, "lag": 0.0}
    # Incremental window throughput (same arithmetic the old completions
    # list fed) plus, in bounded mode, a digest for the uncorrected pool.
    measure = duration - warmup
    window_width = measure / windows
    window_counts = [0] * windows
    completed = [0]
    uncorrected_digest = None
    if bounded:
        from repro.obs.digest import QuantileDigest

        uncorrected_digest = QuantileDigest(live.growth, live.min_value)

    def clamp_end(end: float, at: float) -> float:
        return duration if end <= at else min(end, duration)

    if station_faults:
        for spec in station_faults.windows:
            end = clamp_end(spec.end, spec.at)
            if tracer:
                tracer.add(
                    f"fault.{spec.kind}", spec.at, end,
                    cat="fault", node="faults", lane=spec.target,
                    magnitude=spec.magnitude,
                )
            if sampler:
                sampler.accumulate(spec.target, "fault", spec.at, end,
                                   level=1.0, capacity=1.0)
            if metrics:
                metrics.counter(f"faults.{spec.kind}").inc()
            if live:
                live.note_event(f"{spec.kind}:{spec.target}", spec.at, end)

        def crash_driver(resource: Resource, servers: int, crash_windows):
            for at, end, lost in sorted(crash_windows):
                if at > env.now:
                    yield env.timeout(at - env.now)
                resource.set_capacity(max(1, int(round(servers * (1.0 - lost)))))
                restore = clamp_end(end, at)
                if restore > env.now:
                    yield env.timeout(restore - env.now)
                resource.set_capacity(servers)

        for s in stations:
            crash_windows = station_faults.crash_windows(s.name)
            if crash_windows:
                env.process(crash_driver(resources[s.name], s.servers,
                                         crash_windows))

    def operation(index: int, intended: float, measured: bool):
        rng = seeds.rng_for("op", index)
        fault_rng = seeds.rng_for("op-fault", index) if station_faults else None
        op_class = _pick_class(rng, mix)
        counters["started"] += 1
        if measured:
            pending[index] = intended
        dispatch = intended
        op_spans = []
        if pool is not None:
            grant = pool.request()
            yield grant
            dispatch = env.now
            lag = dispatch - intended
            counters["lag"] = max(counters["lag"], lag)
            if tracer and lag > 0.0:
                op_spans.append(tracer.add(
                    "dispatch.wait", intended, dispatch,
                    cat="dispatch", node="client", lane=f"op-{index}",
                    cls=op_class, wait=lag,
                ))
        failed = False
        attempts = 0
        for station in stations:
            mean = station.service.get(op_class, 0.0)
            if mean <= 0.0:
                continue
            resource = resources[station.name]
            while True:
                t_enter = env.now
                grant = resource.request()
                yield grant
                t_granted = env.now
                service = _exponential(rng, mean)
                if station_faults:
                    service *= station_faults.slowdown(station.name, env.now)
                yield env.timeout(service)
                # Release on the normal path only (see the closed loop's
                # note on GC-time phantom spans).
                resource.release()
                if tracer:
                    visit = tracer.add(
                        f"visit.{station.name}", t_enter, env.now,
                        cat="visit", node="client", lane=f"op-{index}",
                        cls=op_class, station=station.name,
                        wait=t_granted - t_enter,
                        service=env.now - t_granted,
                    )
                    if op_spans:
                        prev = op_spans[-1]
                        tracer.link(
                            prev, visit,
                            "retry" if prev.name == "retry.backoff" else "seq",
                        )
                    op_spans.append(visit)
                if station_faults:
                    probability = station_faults.error_probability(
                        station.name, env.now
                    )
                    if probability > 0.0 and fault_rng.random_float() < probability:
                        attempts += 1
                        if policy.gives_up(attempts, env.now - intended):
                            failed = True
                            break
                        delay = policy.delay(attempts - 1)
                        counters["retried"] += 1
                        counters["backoff"] += delay
                        if tracer:
                            backoff = tracer.add(
                                "retry.backoff", env.now, env.now + delay,
                                cat="retry", node="client",
                                lane=f"op-{index}",
                                cls=op_class, attempt=attempts,
                            )
                            if op_spans:
                                tracer.link(op_spans[-1], backoff, "retry")
                            op_spans.append(backoff)
                        if metrics:
                            metrics.counter("ycsb.retried_ops").inc()
                        yield env.timeout(delay)
                        continue
                break
            if failed:
                break
        if pool is not None:
            pool.release()
        if tracer:
            request = tracer.add(
                f"request.{op_class}", intended, env.now,
                cat="request", node="client", lane=f"op-{index}",
                cls=op_class, intended=intended, dispatch=dispatch,
                **({"error": True} if failed else {}),
            )
            for span in op_spans:
                span.parent = request.span_id
        if metrics:
            metrics.counter(f"ycsb.ops.{op_class}").inc()
            if failed:
                metrics.counter(f"ycsb.errors.{op_class}").inc()
        if measured:
            pending.pop(index, None)
            counters["finished"] += 1
            if live:
                live.record_op(env.now, env.now - intended, error=failed,
                               cls=op_class)
            if failed:
                if not bounded:
                    error_latencies[op_class].append(env.now - intended)
            else:
                completed[0] += 1
                window_counts[
                    min(windows - 1, int((env.now - warmup) / window_width))
                ] += 1
                if bounded:
                    uncorrected_digest.record(env.now - dispatch)
                else:
                    latencies[op_class].append(env.now - intended)
                    uncorrected[op_class].append(env.now - dispatch)
            if metrics:
                metrics.counter("ycsb.measured_ops").inc()

    def arrival_source():
        schedule = PoissonArrivals(rate, seeds.seed_for("arrivals"))
        index = 0
        for at in schedule.until(duration):
            if at > env.now:
                yield env.timeout(at - env.now)
            measured = at >= warmup
            if measured:
                counters["arrivals"] += 1
            env.process(operation(index, at, measured))
            index += 1

    env.process(arrival_source())
    env.run(until=duration)
    if sampler:
        sampler.finish(env.now)
    if live:
        # Measured arrivals still in flight at cutoff are censored lower
        # bounds in the live digests too — same no-survivorship rule as
        # the corrected pool below.
        for intended in pending.values():
            live.record_censored(env.now, env.now - intended)
        live.finish(env.now)

    result.arrivals = counters["arrivals"]
    result.completed_ops = completed[0]
    finished_errors = (
        live.errors if bounded
        else sum(len(v) for v in error_latencies.values())
    )
    result.unfinished_ops = (
        counters["arrivals"] - completed[0] - finished_errors
    )
    result.throughput = completed[0] / measure
    result.max_dispatch_lag = counters["lag"]
    result.window_throughputs = [c / window_width for c in window_counts]

    from repro.ycsb.histogram import LatencyHistogram, from_digest, from_latencies

    if bounded:
        # Digest-backed results: within one log-bucket of exact, bounded
        # memory, no per-class uncorrected_p99 (kept pooled only).
        for op_class in mix:
            digest = live.class_digests.get(op_class)
            if digest is not None and digest.count:
                result.latency[op_class] = digest.mean
                result.latency_p95[op_class] = digest.percentile(95)
                result.latency_p99[op_class] = digest.percentile(99)
                result.histograms[op_class] = from_digest(digest)
            errors = live.class_errors.get(op_class, 0)
            if errors:
                histogram = result.histograms.setdefault(
                    op_class, LatencyHistogram())
                histogram.errors += errors
                result.errors[op_class] = errors
        pooled_digest = live.windowed.total()
        if pooled_digest.observations:
            result.mean = pooled_digest.mean_with_censored
            result.p50 = pooled_digest.percentile(50)
            result.p95 = pooled_digest.percentile(95)
            result.p99 = pooled_digest.percentile(99)
            result.p999 = pooled_digest.percentile(99.9)
        if uncorrected_digest.count:
            result.uncorrected_overall_p99 = uncorrected_digest.percentile(99)
    else:
        pooled: list[float] = []
        pooled_uncorrected: list[float] = []
        for op_class, values in latencies.items():
            if not values:
                continue
            result.latency[op_class] = arithmetic_mean(values)
            result.latency_p95[op_class] = percentile(values, 95)
            result.latency_p99[op_class] = percentile(values, 99)
            result.uncorrected_p99[op_class] = percentile(
                uncorrected[op_class], 99)
            result.histograms[op_class] = from_latencies(values)
            pooled.extend(values)
            pooled_uncorrected.extend(uncorrected[op_class])
        # Censored observations: measured arrivals still queued or in
        # service at cutoff contribute their lower bound end - intended to
        # the pooled percentiles.  Above saturation the never-finishing
        # ops ARE the tail; dropping them would understate p99 the same
        # way coordinated omission does.
        censored = [env.now - intended for intended in pending.values()]
        corrected = pooled + censored
        if corrected:
            result.mean = arithmetic_mean(corrected)
            result.p50 = percentile(corrected, 50)
            result.p95 = percentile(corrected, 95)
            result.p99 = percentile(corrected, 99)
            result.p999 = percentile(corrected, 99.9)
        if pooled_uncorrected:
            result.uncorrected_overall_p99 = percentile(pooled_uncorrected, 99)

        for op_class, values in error_latencies.items():
            if not values:
                continue
            histogram = result.histograms.setdefault(
                op_class, LatencyHistogram())
            for value in values:
                histogram.record(value)
                histogram.record_error()
            result.errors[op_class] = len(values)
    result.retried_ops = counters["retried"]
    result.backoff_seconds = counters["backoff"]
    if metrics:
        metrics.gauge("frontier.offered_rate").set(rate)
        metrics.gauge("frontier.throughput").set(result.throughput)
        metrics.gauge("frontier.p99").set(result.p99)
        metrics.gauge("frontier.max_dispatch_lag").set(result.max_dispatch_lag)
    if prof is not None:
        prof.note_ops(completed[0])
    return result

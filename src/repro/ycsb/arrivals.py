"""Open-loop arrival processes for the latency-throughput frontier.

The paper's YCSB protocol is a *closed loop*: 800 client threads each wait
for their previous operation to finish before issuing the next one.  A
closed loop cannot overload the system — when the server slows down, the
clients slow down with it — which is exactly the coordinated-omission trap:
latency measured from each operation's *actual* start time silently drops
the queueing delay the slowdown inflicted on every operation that *should*
have started in the meantime.

An **open loop** decouples arrivals from completions: operations arrive on
a Poisson process at a target rate whether or not the system keeps up, the
way independent users do.  :class:`PoissonArrivals` generates that schedule
deterministically (one :class:`~repro.common.rng.TpchRandom64` stream per
seed, exponential inter-arrival gaps), so the frontier sweep's runs are
byte-reproducible per seed.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.common.errors import SimulationError
from repro.common.rng import TpchRandom64


class PoissonArrivals:
    """Deterministic Poisson arrival schedule at a target mean rate.

    Inter-arrival gaps are i.i.d. exponential with mean ``1 / rate``; the
    arrival times are their strictly-monotone running sum.  The whole
    schedule is a pure function of ``(rate, seed)``: two generators built
    with the same arguments produce byte-identical sequences, which is what
    makes the frontier's bracketed bisection replayable.
    """

    def __init__(self, rate: float, seed: int = 1234):
        if rate <= 0:
            raise SimulationError(f"arrival rate must be > 0, got {rate:g}")
        self.rate = rate
        self.seed = seed
        self._rng = TpchRandom64(seed)
        self._now = 0.0

    def next_arrival(self) -> float:
        """Advance to and return the next arrival time (monotone)."""
        u = self._rng.random_float()
        # 1 - u is in (0, 1], so the log argument never hits zero and the
        # gap is non-negative and finite.
        self._now += -math.log(1.0 - u) / self.rate
        return self._now

    def until(self, horizon: float) -> Iterator[float]:
        """Yield every arrival time strictly before ``horizon``."""
        while True:
            at = self.next_arrival()
            if at >= horizon:
                return
            yield at

    def take(self, count: int) -> list[float]:
        """The next ``count`` arrival times as a list."""
        if count < 0:
            raise SimulationError(f"cannot take {count} arrivals")
        return [self.next_arrival() for _ in range(count)]

"""YCSB request-distribution generators (Cooper et al., SoCC 2010).

Implements the generators the benchmark's workloads use: uniform, zipfian
(the Gray et al. rejection-free algorithm with incremental zeta), scrambled
zipfian (hot keys scattered across the keyspace), and latest (zipfian over
recency, for workload D's read-latest pattern).
"""

from __future__ import annotations

import zlib

from repro.common.errors import WorkloadError
from repro.common.rng import TpchRandom64
from repro.common.stats import harmonic_number

ZIPFIAN_CONSTANT = 0.99


class UniformGenerator:
    """Uniform integers on [0, item_count)."""

    def __init__(self, item_count: int, rng: TpchRandom64):
        if item_count < 1:
            raise WorkloadError("need at least one item")
        self.item_count = item_count
        self._rng = rng

    def next(self) -> int:
        return self._rng.random_int(0, self.item_count - 1)


class ZipfianGenerator:
    """Zipfian-distributed integers on [0, item_count), favouring low ranks.

    Uses the YCSB/Gray algorithm; ``zeta(n)`` is computed with the
    Euler-Maclaurin approximation so populations of hundreds of millions of
    keys (the paper's 640 M records) are instantaneous.
    """

    def __init__(self, item_count: int, rng: TpchRandom64, theta: float = ZIPFIAN_CONSTANT):
        if item_count < 1:
            raise WorkloadError("need at least one item")
        if not 0.0 < theta < 1.0:
            raise WorkloadError("theta must be in (0, 1)")
        self.item_count = item_count
        self.theta = theta
        self._rng = rng
        self._zeta_n = harmonic_number(item_count, s=theta)
        self._zeta_2 = harmonic_number(2, s=theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / item_count) ** (1.0 - theta)) / (
            1.0 - self._zeta_2 / self._zeta_n
        )

    def next(self) -> int:
        u = self._rng.random_float()
        uz = u * self._zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.item_count * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def popularity(self, rank: int) -> float:
        """P(rank) — rank is 0-based; used by the analytic cache model."""
        return (1.0 / (rank + 1) ** self.theta) / self._zeta_n

    def cdf(self, top_fraction: float) -> float:
        """Probability mass of the most popular ``top_fraction`` of items."""
        if not 0.0 <= top_fraction <= 1.0:
            raise WorkloadError("fraction must be in [0, 1]")
        k = max(1, int(self.item_count * top_fraction))
        return harmonic_number(k, s=self.theta) / self._zeta_n


class ScrambledZipfianGenerator:
    """Zipfian popularity with hot items scattered across the keyspace."""

    def __init__(self, item_count: int, rng: TpchRandom64, theta: float = ZIPFIAN_CONSTANT):
        self.item_count = item_count
        self._zipf = ZipfianGenerator(item_count, rng, theta)

    def next(self) -> int:
        rank = self._zipf.next()
        scrambled = zlib.crc32(rank.to_bytes(8, "big"))
        return scrambled % self.item_count

    def cdf(self, top_fraction: float) -> float:
        return self._zipf.cdf(top_fraction)


class HotspotGenerator:
    """Shifting-Zipf "celebrity key": one key soaks up a fixed share of
    requests, and which key that is shifts deterministically over time.

    With probability ``hot_weight`` a draw hits the current celebrity key;
    otherwise it falls through to a scrambled-zipfian base distribution.
    Every ``shift_every`` draws the celebrity moves to a new key derived by
    hashing the epoch number, so a range- or hash-sharded cluster sees the
    hot spot land on one shard at a time — the single-shard saturation mode
    overload scenarios need (ROADMAP item 3).
    """

    def __init__(self, item_count: int, rng: TpchRandom64, *,
                 hot_weight: float = 0.5, shift_every: int = 10_000,
                 theta: float = ZIPFIAN_CONSTANT):
        if item_count < 1:
            raise WorkloadError("need at least one item")
        if not 0.0 < hot_weight < 1.0:
            raise WorkloadError("hot_weight must be in (0, 1)")
        if shift_every < 1:
            raise WorkloadError("shift_every must be >= 1")
        self.item_count = item_count
        self.hot_weight = hot_weight
        self.shift_every = shift_every
        self._rng = rng
        self._base = ScrambledZipfianGenerator(item_count, rng, theta)
        self._draws = 0

    def celebrity(self, epoch: int) -> int:
        """The hot key during ``epoch`` (epoch = draws // shift_every)."""
        return zlib.crc32(b"celebrity:%d" % epoch) % self.item_count

    @property
    def epoch(self) -> int:
        return self._draws // self.shift_every

    def next(self) -> int:
        hot = self.celebrity(self.epoch)
        self._draws += 1
        if self._rng.random_float() < self.hot_weight:
            return hot
        return self._base.next()

    def cdf(self, top_fraction: float) -> float:
        """Mass of the top fraction: the celebrity plus the base's share."""
        return min(
            1.0,
            self.hot_weight + (1.0 - self.hot_weight) * self._base.cdf(top_fraction),
        )


class LatestGenerator:
    """Workload D's read-latest: zipfian over recency from the newest key."""

    def __init__(self, initial_count: int, rng: TpchRandom64, theta: float = ZIPFIAN_CONSTANT):
        if initial_count < 1:
            raise WorkloadError("need at least one item")
        self.item_count = initial_count
        self._rng = rng
        self._theta = theta
        self._rebuild()

    def _rebuild(self) -> None:
        self._zipf = ZipfianGenerator(self.item_count, self._rng, self._theta)

    def observe_insert(self) -> None:
        """Tell the generator the key space grew (a new record was appended)."""
        self.item_count += 1
        # Rebuilding zeta on every insert is wasteful; refresh periodically.
        if self.item_count % 1024 == 0:
            self._rebuild()

    def next(self) -> int:
        offset = self._zipf.next()
        return max(0, self.item_count - 1 - offset)


class CounterGenerator:
    """Monotonic key allocator for appends (workloads D and E)."""

    def __init__(self, start: int):
        self._next = start

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value

    @property
    def last(self) -> int:
        return self._next - 1

"""The ``repro-frontier/1`` report: open-loop latency-throughput frontiers.

The paper's YCSB figures are closed-loop points at fixed client counts,
which cannot answer the capacity-planning question "how many users can this
deployment serve at a 10 ms p99?".  This module sweeps each system with
**open-loop Poisson arrivals** (see :mod:`repro.ycsb.arrivals` and
:func:`repro.ycsb.eventsim.simulate_open_loop`) across a ladder of target
rates, then **bisects for the saturation knee** — the maximum sustained
throughput whose coordinated-omission-correct p99 still meets a configurable
SLO.  Latencies are charged from each operation's *intended* start time, so
the latency cliff near saturation is visible instead of silently absorbed by
a slowing load generator.

Beyond the paper's three deployments, the default sweep adds ``mongo-as-safe``
— Mongo-AS with journaled write acknowledgement — because the paper's own
caveat ("MongoDB ran without durability", §3.4.1) is exactly a frontier
shift: the journal wait moves the knee, and this report measures by how
much.  The sweep composes with the fault layer (``--faults`` station plans
shift the frontier of a degraded cluster) and the write-concern spectrum
(``concern=`` re-derives each system model with the durability mechanisms
enabled).

Everything is a pure function of the master seed: the ladder, the knee
search trajectory, and every simulated run are byte-reproducible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigurationError, SloUnreachableError

SCHEMA = "repro-frontier/1"

#: Systems a frontier report sweeps by default: the paper's three YCSB
#: deployments plus the durability configuration MongoDB actually ships.
FRONTIER_SYSTEMS = ("sql-cs", "mongo-as", "mongo-cs", "mongo-as-safe")

#: Workloads swept by default (update-heavy and read-only — the two shapes
#: whose knees differ the most).
FRONTIER_WORKLOADS = ("A", "C")

#: Rate ladder as fractions of the analytic (MVA) saturation throughput.
LADDER_FRACTIONS = (0.3, 0.6, 0.8, 0.9, 1.0, 1.1)

#: Default p99 objective.  Must sit above the journal group-flush window
#: (100 ms): ``mongo-as-safe`` writes wait for the flush, so any SLO below
#: ~the interval is *physically* unreachable on write workloads — the knee
#: search correctly reports that as exit 2, which is the wrong default
#: experience.  At 250 ms every default system brackets a knee and the
#: journaled frontier's shift is visible instead of fatal.
DEFAULT_SLO_MS = 250.0


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


def frontier_system_models() -> dict:
    """The default frontier system set, name -> :class:`SystemModel`."""
    from repro.core.oltp import SYSTEMS

    models = dict(SYSTEMS)
    models["mongo-as-safe"] = replace(
        SYSTEMS["mongo-as"], name="mongo-as-safe", journaled=True
    )
    return models


def apply_concern(system, concern: str | None):
    """Re-derive a system model under a write concern.

    ``paper``/``unacked`` keep the paper's configuration (MongoDB without
    durability); ``safe``/``journaled`` enable the journal group-flush wait
    on systems without a commit log; ``majority``/``replicated`` add replica
    maintenance on top.  SQL-CS always forces its log, so ``journaled`` is a
    no-op there and ``majority`` maps to synchronous replica upkeep.
    """
    if concern is None:
        return system
    name = concern.lower()
    if name in ("paper", "unacked", "none"):
        return system
    if name in ("safe", "journaled"):
        if system.has_log or system.journaled:
            return system
        return replace(system, journaled=True)
    if name in ("majority", "replicated"):
        extra = {"replicated": True}
        if not (system.has_log or system.journaled):
            extra["journaled"] = True
        return replace(system, **extra)
    raise ConfigurationError(
        f"unknown frontier write concern {concern!r}; expected paper, "
        f"unacked, safe, journaled, replicated, or majority"
    )


# -- knee search -----------------------------------------------------------------


@dataclass
class KneeResult:
    """Outcome of one bracketed bisection for the saturation knee."""

    rate: float  # max rate whose p99 met the SLO
    p99: float  # measured p99 at that rate, seconds
    bracketed: bool  # False when no probed rate ever violated the SLO
    probes: list = field(default_factory=list)  # (rate, p99) in probe order

    @property
    def evaluations(self) -> int:
        return len(self.probes)


def find_knee(measure, slo: float, lo: float, hi: float | None = None,
              rel_tol: float = 0.05, max_doublings: int = 10,
              max_bisections: int = 24) -> KneeResult:
    """Bracketed bisection for the max rate with ``measure(rate) <= slo``.

    ``measure`` maps an arrival rate to a p99 latency in seconds (it should
    be internally memoized and seeded — the search may probe a rate once
    only, but callers reuse measurements for the report's curve).  The
    bracket starts at ``lo`` (which must meet the SLO, else
    :class:`~repro.common.errors.SloUnreachableError`) and doubles until a
    violating rate is found (or ``hi`` is given and checked directly);
    bisection then narrows to ``rel_tol`` of the passing rate.  When no
    probed rate violates the SLO the search returns the highest probed rate
    with ``bracketed=False`` — the system outran the bracket, not the SLO.
    """
    if lo <= 0:
        raise ConfigurationError(f"knee bracket lo must be > 0, got {lo:g}")
    if hi is not None and hi <= lo:
        raise ConfigurationError(
            f"knee bracket needs hi > lo, got [{lo:g}, {hi:g}]"
        )
    if rel_tol <= 0:
        raise ConfigurationError(f"rel_tol must be > 0, got {rel_tol:g}")
    if slo <= 0:
        raise ConfigurationError(f"SLO must be > 0, got {slo:g}")

    probes: list = []

    def p99(rate: float) -> float:
        value = float(measure(rate))
        probes.append((rate, value))
        return value

    value_lo = p99(lo)
    if value_lo > slo:
        raise SloUnreachableError(
            f"p99 {value_lo * 1000:.3f} ms at the lowest probed rate "
            f"{lo:g} ops/s already exceeds the {slo * 1000:g} ms SLO; "
            f"the SLO is unreachable"
        )
    best = (lo, value_lo)
    if hi is None:
        bound = lo
        for _ in range(max_doublings):
            bound *= 2.0
            value = p99(bound)
            if value > slo:
                hi = bound
                break
            best = (bound, value)
        else:
            return KneeResult(rate=best[0], p99=best[1], bracketed=False,
                              probes=probes)
    else:
        value_hi = p99(hi)
        if value_hi <= slo:
            return KneeResult(rate=hi, p99=value_hi, bracketed=False,
                              probes=probes)
    lo = best[0]
    for _ in range(max_bisections):
        if (hi - lo) <= rel_tol * lo:
            break
        mid = (lo + hi) / 2.0
        value = p99(mid)
        if value <= slo:
            lo, best = mid, (mid, value)
        else:
            hi = mid
    return KneeResult(rate=best[0], p99=best[1], bracketed=True,
                      probes=probes)


# -- sweep driver ----------------------------------------------------------------


def _point_dict(result, slo: float) -> dict:
    offered = result.offered_rate
    return {
        "offered_ops_per_s": _round(offered, 3),
        "throughput_ops_per_s": _round(result.throughput, 3),
        "mean_ms": _round(result.mean * 1000.0),
        "p50_ms": _round(result.p50 * 1000.0),
        "p95_ms": _round(result.p95 * 1000.0),
        "p99_ms": _round(result.p99 * 1000.0),
        "p999_ms": _round(result.p999 * 1000.0),
        "uncorrected_p99_ms": _round(result.uncorrected_overall_p99 * 1000.0),
        "max_dispatch_lag_ms": _round(result.max_dispatch_lag * 1000.0),
        "errors": result.error_count,
        "unfinished": result.unfinished_ops,
        "shed": result.shed_count,
        "saturated": bool(result.throughput < 0.95 * offered),
    }


def frontier_row(study, system_name: str, workload: str, *, slo_ms: float,
                 seed: int, scale: float = 1.0, measure_ops: int = 40000,
                 warmup_ops: int = 10000, min_window_s: float = 2.0,
                 concern: str | None = None, faults=None, overload=None,
                 rel_tol: float = 0.05, metrics=None) -> dict:
    """Sweep one (system, workload) cell: ladder curve plus knee search.

    Runs at full cluster scale by default: the paper's bottlenecks are
    serialization points (global lock, hot row, group-committed log) whose
    capacity does **not** shrink with the cluster, so a scaled-down testbed
    saturates in the wrong place.  Cost is bounded per run instead — each
    simulation admits ``warmup_ops + measure_ops`` expected arrivals, so
    its duration adapts to the probed rate and every probe costs about the
    same wall time whether the cell peaks at 15k or 128k ops/s.  The
    measured window never shrinks below ``min_window_s``, though: above
    saturation the backlog (and therefore the censored tail) grows with
    wall time, and a sub-second window would let an overloaded rate pass
    the SLO it cannot actually sustain.
    """
    from repro.common.rng import SeedStream
    from repro.ycsb.workloads import WORKLOADS

    if workload not in WORKLOADS:
        raise ConfigurationError(
            f"unknown workload {workload!r}; expected one of "
            f"{', '.join(sorted(WORKLOADS))}"
        )
    seeds = SeedStream(seed)
    slo = slo_ms / 1000.0
    peak = study.peak_throughput(system_name, workload)
    cache: dict = {}

    def run(rate: float):
        key = round(rate, 6)
        if key not in cache:
            warmup = max(warmup_ops / rate, 0.5 * min_window_s)
            duration = warmup + max(measure_ops / rate, min_window_s)
            cache[key] = study.open_loop_point(
                system_name, workload, rate, scale=scale, duration=duration,
                warmup=warmup, faults=faults, metrics=metrics,
                overload=overload,
                seed=seeds.seed_for("frontier", system_name, workload,
                                    concern or "paper", f"{key:.6g}"),
            )
        return cache[key]

    def knee_p99(rate: float) -> float:
        # A shed op never completes: it sits at +inf in the latency
        # distribution.  Once sheds exceed the 1% that p99 can absorb,
        # the 99th percentile is unbounded and the rate fails the SLO —
        # admission control must not let a system shed its way past the
        # knee.
        result = run(rate)
        total = (result.completed_ops + result.shed_count
                 + result.unfinished_ops)
        if total and result.shed_count > 0.01 * total:
            return float("inf")
        return result.p99

    ladder = [fraction * peak for fraction in LADDER_FRACTIONS]
    points = [_point_dict(run(rate), slo) for rate in ladder]
    knee = find_knee(knee_p99, slo, lo=ladder[0], rel_tol=rel_tol)
    at_knee = run(knee.rate)
    if metrics:
        metrics.gauge(
            f"frontier.knee.{system_name}.{workload}"
        ).set(knee.rate)
    return {
        "system": system_name,
        "workload": workload,
        "concern": concern or "paper",
        "slo_ms": _round(slo_ms),
        "mva_peak_ops_per_s": _round(peak, 3),
        "points": points,
        "knee": {
            "rate_ops_per_s": _round(knee.rate, 3),
            "throughput_ops_per_s": _round(at_knee.throughput, 3),
            "p99_ms": _round(knee.p99 * 1000.0),
            "knee_over_peak": _round(knee.rate / peak if peak else 0.0, 4),
            "bracketed": knee.bracketed,
            "evaluations": knee.evaluations,
            "probes": [
                {"rate_ops_per_s": _round(rate, 3),
                 "p99_ms": _round(p99 * 1000.0),
                 "ok": bool(p99 <= slo)}
                for rate, p99 in knee.probes
            ],
        },
    }


def frontier_report(systems=None, workloads=None, *,
                    slo_ms: float = DEFAULT_SLO_MS, seed: int = 42,
                    scale: float = 1.0, measure_ops: int = 40000,
                    warmup_ops: int = 10000, min_window_s: float = 2.0,
                    concern: str | None = None, faults=None, overload=None,
                    params=None, isolation: str = "read_committed",
                    rel_tol: float = 0.05, metrics=None) -> dict:
    """Sweep systems x workloads into a ``repro-frontier/1`` report.

    ``faults`` is a fault-plan spec string (or anything
    :class:`~repro.faults.plan.FaultPlan.parse` accepts already parsed) whose
    station faults apply to every run — the frontier of a degraded cluster.
    ``concern`` re-derives every system model under a write concern (see
    :func:`apply_concern`).  Raises
    :class:`~repro.common.errors.SloUnreachableError` when any cell cannot
    meet the SLO even at the bottom of its bracket.
    """
    from repro.core.oltp import OltpStudy

    if slo_ms <= 0:
        raise ConfigurationError(f"--slo-ms must be > 0, got {slo_ms:g}")
    if measure_ops <= 0:
        raise ConfigurationError(
            f"frontier measure_ops must be > 0, got {measure_ops}"
        )
    if warmup_ops < 0:
        raise ConfigurationError(
            f"frontier warmup_ops must be >= 0, got {warmup_ops}"
        )
    if min_window_s <= 0:
        raise ConfigurationError(
            f"frontier min_window_s must be > 0, got {min_window_s:g}"
        )
    if scale <= 0:
        raise ConfigurationError(f"frontier scale must be > 0, got {scale:g}")
    systems = tuple(systems) if systems else FRONTIER_SYSTEMS
    workloads = tuple(workloads) if workloads else FRONTIER_WORKLOADS

    models = frontier_system_models()
    unknown = sorted(set(systems) - set(models))
    if unknown:
        raise ConfigurationError(
            f"unknown frontier system(s) {', '.join(unknown)}; known: "
            f"{', '.join(sorted(models))}"
        )
    models = {name: apply_concern(models[name], concern) for name in systems}
    study = OltpStudy(params=params, isolation=isolation, systems=models)

    fault_spec = None
    station_faults = None
    if faults:
        from repro.faults.plan import FaultPlan

        plan = (FaultPlan.parse(faults, seed=seed)
                if isinstance(faults, str) else faults)
        station_faults = plan.station_faults if hasattr(
            plan, "station_faults") else list(plan)
        fault_spec = faults if isinstance(faults, str) else None

    rows = []
    for workload in workloads:
        for system in systems:
            rows.append(frontier_row(
                study, system, workload, slo_ms=slo_ms, seed=seed,
                scale=scale, measure_ops=measure_ops, warmup_ops=warmup_ops,
                min_window_s=min_window_s, concern=concern,
                faults=station_faults, overload=overload,
                rel_tol=rel_tol, metrics=metrics,
            ))
    return {
        "schema": SCHEMA,
        "scenario": {
            "systems": list(systems),
            "workloads": list(workloads),
            "slo_ms": _round(slo_ms),
            "seed": seed,
            "scale": _round(scale),
            "measure_ops": measure_ops,
            "warmup_ops": warmup_ops,
            "min_window_s": _round(min_window_s),
            "concern": concern or "paper",
            "faults": fault_spec,
            "overload": (overload.spec_string()
                         if overload is not None else None),
            "ladder": [_round(f) for f in LADDER_FRACTIONS],
            "loop": "open",
            "accounting": "intended-start",
        },
        "rows": rows,
    }


# -- serialization & validation --------------------------------------------------

_POINT_REQUIRED = {
    "offered_ops_per_s": float, "throughput_ops_per_s": float,
    "mean_ms": float, "p50_ms": float, "p95_ms": float, "p99_ms": float,
    "p999_ms": float, "uncorrected_p99_ms": float,
    "max_dispatch_lag_ms": float, "errors": int, "unfinished": int,
    "shed": int, "saturated": bool,
}

_KNEE_REQUIRED = {
    "rate_ops_per_s": float, "throughput_ops_per_s": float, "p99_ms": float,
    "knee_over_peak": float, "bracketed": bool, "evaluations": int,
    "probes": list,
}

_ROW_REQUIRED = {
    "system": str, "workload": str, "concern": str, "slo_ms": float,
    "mva_peak_ops_per_s": float, "points": list, "knee": dict,
}


def _check_fields(obj: dict, required: dict, where: str) -> None:
    for fieldname, kind in required.items():
        if fieldname not in obj:
            raise ConfigurationError(f"{where} is missing {fieldname!r}")
        value = obj[fieldname]
        if kind is float:
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif kind is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, kind)
        if not ok:
            raise ConfigurationError(
                f"{where} field {fieldname!r} has type "
                f"{type(value).__name__}, expected {kind.__name__}"
            )


def validate_frontier_report(data: dict) -> None:
    """Schema check; raises :class:`ConfigurationError` on any mismatch."""
    if not isinstance(data, dict):
        raise ConfigurationError("frontier report must be an object")
    if data.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"frontier report schema is {data.get('schema')!r}, "
            f"expected {SCHEMA!r}"
        )
    scenario = data.get("scenario")
    if not isinstance(scenario, dict):
        raise ConfigurationError("frontier report needs a scenario object")
    for fieldname in ("systems", "workloads", "slo_ms", "seed", "scale",
                      "measure_ops", "warmup_ops", "loop", "accounting"):
        if fieldname not in scenario:
            raise ConfigurationError(f"scenario is missing {fieldname!r}")
    rows = data.get("rows")
    if not isinstance(rows, list) or not rows:
        raise ConfigurationError("frontier report needs a non-empty rows list")
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            raise ConfigurationError(f"row {index} is not an object")
        _check_fields(row, _ROW_REQUIRED, f"row {index}")
        if not row["points"]:
            raise ConfigurationError(f"row {index} has no sweep points")
        for pi, point in enumerate(row["points"]):
            _check_fields(point, _POINT_REQUIRED, f"row {index} point {pi}")
        knee = row["knee"]
        _check_fields(knee, _KNEE_REQUIRED, f"row {index} knee")
        if knee["p99_ms"] > row["slo_ms"] + 1e-9:
            raise ConfigurationError(
                f"row {index} knee p99 {knee['p99_ms']:g} ms exceeds its "
                f"own SLO {row['slo_ms']:g} ms"
            )
        if not knee["probes"]:
            raise ConfigurationError(f"row {index} knee has no probes")
        for qi, probe in enumerate(knee["probes"]):
            _check_fields(probe, {"rate_ops_per_s": float, "p99_ms": float,
                                  "ok": bool}, f"row {index} probe {qi}")


def dumps_frontier_report(data: dict) -> str:
    """Deterministic JSON: sorted keys, fixed separators, trailing newline."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"


def write_frontier_report(data: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_frontier_report(data))


def render_frontier_report(data: dict) -> str:
    """Human-readable frontier: ASCII curves per workload plus knee tables."""
    from repro.core.figures import Series, plot_xy

    scenario = data["scenario"]
    slo_ms = scenario["slo_ms"]
    clip_ms = 5.0 * slo_ms
    lines = [
        f"frontier report  open-loop poisson arrivals  "
        f"slo p99 <= {slo_ms:g} ms  seed {scenario['seed']}  "
        f"concern {scenario['concern']}"
        + (f"  faults {scenario['faults']}" if scenario.get("faults") else "")
    ]
    workloads = scenario["workloads"]
    for workload in workloads:
        rows = [row for row in data["rows"] if row["workload"] == workload]
        if not rows:
            continue
        series = []
        for row in rows:
            pts = [
                (p["throughput_ops_per_s"], min(p["p99_ms"], clip_ms))
                for p in row["points"]
            ]
            series.append(Series.of(row["system"], pts))
        lines.append("")
        lines.append(plot_xy(
            series,
            x_label="throughput ops/s",
            y_label=f"p99 ms (clipped at {clip_ms:g})",
            title=f"Workload {workload}: latency-throughput frontier",
        ))
        header = (
            f"  {'system':14s} {'knee ops/s':>12s} {'p99@knee':>9s} "
            f"{'mva peak':>12s} {'knee/peak':>9s} {'probes':>6s} {'brk':>4s}"
        )
        lines.append(header)
        for row in rows:
            knee = row["knee"]
            lines.append(
                f"  {row['system']:14s} {knee['rate_ops_per_s']:12,.0f} "
                f"{knee['p99_ms']:7.2f}ms {row['mva_peak_ops_per_s']:12,.0f} "
                f"{knee['knee_over_peak']:9.2f} {knee['evaluations']:6d} "
                f"{'yes' if knee['bracketed'] else 'no':>4s}"
            )
    lines.append("")
    lines.append(
        "  accounting: latencies measured from intended (poisson) start "
        "times — queueing from missed departures is charged to the op "
        "(no coordinated omission)"
    )
    return "\n".join(lines)

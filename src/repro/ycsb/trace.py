"""YCSB operation traces: record once, replay everywhere.

A trace pins the exact operation sequence (op, key, field, scan length) a
workload generator produced, so the *same* requests can be replayed against
every system under test — removing generator randomness from cross-system
comparisons — or exported/imported as text for external tooling.

Trace line format (tab-separated)::

    READ    <key>
    UPDATE  <key>  <field>
    INSERT  <key>
    SCAN    <key>  <length>
    RMW     <key>  <field>
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.common.errors import WorkloadError
from repro.common.rng import SeedStream
from repro.ycsb.generators import (
    CounterGenerator,
    HotspotGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)
from repro.ycsb.workloads import (
    FIELD_COUNT,
    MAX_SCAN_LENGTH,
    OP_INSERT,
    OP_READ,
    OP_RMW,
    OP_SCAN,
    OP_UPDATE,
    WorkloadSpec,
    make_key,
)

_OPS = {OP_READ, OP_UPDATE, OP_INSERT, OP_SCAN, OP_RMW}


@dataclass(frozen=True)
class TraceOp:
    """One recorded operation."""

    op: str
    key: str
    field: str | None = None  # updates and RMWs
    length: int | None = None  # scans

    def to_line(self) -> str:
        parts = [self.op.upper(), self.key]
        if self.field is not None:
            parts.append(self.field)
        if self.length is not None:
            parts.append(str(self.length))
        return "\t".join(parts)

    @staticmethod
    def from_line(line: str) -> "TraceOp":
        parts = line.rstrip("\n").split("\t")
        if not parts or parts[0].lower() not in _OPS:
            raise WorkloadError(f"bad trace line: {line!r}")
        op = parts[0].lower()
        if op in (OP_UPDATE, OP_RMW):
            if len(parts) != 3:
                raise WorkloadError(f"{op} line needs a field: {line!r}")
            return TraceOp(op, parts[1], field=parts[2])
        if op == OP_SCAN:
            if len(parts) != 3:
                raise WorkloadError(f"scan line needs a length: {line!r}")
            return TraceOp(op, parts[1], length=int(parts[2]))
        if len(parts) != 2:
            raise WorkloadError(f"{op} line takes only a key: {line!r}")
        return TraceOp(op, parts[1])


def generate_trace(
    workload: WorkloadSpec,
    record_count: int,
    operations: int,
    seed: int = 7,
) -> list[TraceOp]:
    """Produce a deterministic trace using the workload's distributions."""
    if record_count < 2 or operations < 1:
        raise WorkloadError("need >=2 records and >=1 operation")
    seeds = SeedStream(seed)
    op_rng = seeds.rng_for("ops")
    chooser_rng = seeds.rng_for("chooser")
    counter = CounterGenerator(record_count)

    dist = workload.request_distribution
    if dist == "uniform":
        gen = UniformGenerator(record_count, chooser_rng)
        choose = gen.next
    elif dist == "zipfian":
        zipf = ScrambledZipfianGenerator(record_count, chooser_rng)
        choose = lambda: min(zipf.next(), counter.last)
    elif dist == "hotspot":
        hot = HotspotGenerator(record_count, chooser_rng)
        choose = lambda: min(hot.next(), counter.last)
    else:
        latest = LatestGenerator(record_count, chooser_rng)
        choose = latest.next

    trace: list[TraceOp] = []
    for _ in range(operations):
        op = workload.pick_operation(op_rng)
        if op == OP_INSERT:
            index = counter.next()
            if dist == "latest":
                latest.observe_insert()
            trace.append(TraceOp(op, make_key(index)))
        elif op in (OP_UPDATE, OP_RMW):
            field = f"field{op_rng.random_int(0, FIELD_COUNT - 1)}"
            trace.append(TraceOp(op, make_key(choose()), field=field))
        elif op == OP_SCAN:
            length = op_rng.random_int(1, MAX_SCAN_LENGTH)
            trace.append(TraceOp(op, make_key(choose()), length=length))
        else:
            trace.append(TraceOp(op, make_key(choose())))
    return trace


def write_trace(trace: Iterable[TraceOp], path: str | Path) -> int:
    """Write a trace file; returns the number of lines."""
    path = Path(path)
    count = 0
    with open(path, "w", encoding="utf-8") as f:
        for op in trace:
            f.write(op.to_line() + "\n")
            count += 1
    return count


def read_trace(path: str | Path) -> list[TraceOp]:
    with open(path, encoding="utf-8") as f:
        return [TraceOp.from_line(line) for line in f if line.strip()]


@dataclass
class ReplayResult:
    """Outcome of replaying a trace against one cluster."""

    operations: int = 0
    read_hits: int = 0
    scanned_records: int = 0
    updates_applied: int = 0
    inserts: int = 0
    # A deterministic digest of everything the reads/scans returned, for
    # cross-system comparison.
    answer_digest: int = 0

    def observe(self, value: str) -> None:
        import zlib

        self.answer_digest = zlib.crc32(
            value.encode("utf-8"), self.answer_digest
        )


def replay(trace: list[TraceOp], cluster, record_value: str = "x" * 100) -> ReplayResult:
    """Run a trace against a cluster; digests read/scan results.

    Replaying the same trace on two clusters loaded with the same data must
    produce identical digests — the cross-system agreement test.
    """
    result = ReplayResult()
    for op in trace:
        result.operations += 1
        if op.op == OP_READ:
            record = cluster.read(op.key)
            if record is not None:
                result.read_hits += 1
                result.observe(op.key)
        elif op.op == OP_UPDATE:
            if cluster.update(op.key, op.field, record_value):
                result.updates_applied += 1
        elif op.op == OP_RMW:
            record = cluster.read(op.key)
            if record is not None and cluster.update(op.key, op.field, record_value):
                result.updates_applied += 1
        elif op.op == OP_INSERT:
            cluster.insert(op.key, {f"field{i}": record_value for i in range(10)})
            result.inserts += 1
        else:
            rows = cluster.scan(op.key, op.length)
            result.scanned_records += len(rows)
            for row in rows:
                result.observe(row.get("_id") or row.get("_key") or "")
    return result

"""Overload-protection policy: admission config, retry budgets, breakers.

An :class:`OverloadPolicy` bundles every graceful-degradation knob the
open-loop simulator and the functional YCSB driver understand:

* **admission control** — a per-station queue bound plus the shedding
  policy (``reject`` newcomers, ``lifo`` service order, ``deadline-drop``
  expired waiters, ``priority`` by op class);
* **deadline propagation** — an end-to-end deadline from each op's
  intended arrival, enforced at every queue hop;
* **retry budgets** — a token bucket capping the fraction of traffic that
  may be retries (:class:`RetryBudget`);
* **circuit breakers** — per-shard closed → open → half-open state
  machines on the run's clock (:class:`CircuitBreaker`);
* **client impatience** — the resubmit-on-timeout behavior that turns a
  transient fault into a retry storm when the knobs above are off.

Policies parse from a compact CLI spec (``--overload``), comma-separated
``key=value`` pairs::

    queue=64,policy=deadline-drop,deadline=500ms,budget=0.1,breaker=on

Malformed specs raise :class:`~repro.common.errors.ConfigurationError`,
which the CLI turns into a one-line exit-2 usage error.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError

ADMISSION_POLICIES = ("reject", "lifo", "deadline-drop", "priority")

# The protected defaults the bare ``--overload`` flag means.
DEFAULT_SPEC = "queue=64,policy=deadline-drop,deadline=500ms,budget=0.1,breaker=on"

# Service order / shed preference for ``policy=priority``: reads first
# (cheap, user-facing), scans last (expensive, batch-like).
_CLASS_PRIORITY = {"read": 0, "scan": 2}


def class_priority(op_class: str) -> int:
    return _CLASS_PRIORITY.get(op_class, 1)


def _parse_seconds(text: str, key: str) -> float:
    """``500ms`` / ``0.5s`` / ``0.5`` -> seconds."""
    match = re.fullmatch(r"(\d+(?:\.\d+)?)(ms|s)?", text)
    if match is None:
        raise ConfigurationError(
            f"overload spec: bad duration {text!r} for {key}; "
            f"expected e.g. 500ms or 0.5s"
        )
    value = float(match.group(1))
    return value / 1000.0 if match.group(2) == "ms" else value


@dataclass(frozen=True)
class OverloadPolicy:
    """Every overload-protection knob, with the protected defaults.

    ``None`` means a knob is off: ``queue_limit=None`` queues without
    bound, ``deadline_s=None`` never expires ops, ``retry_budget=None``
    lets every client retry, ``client_timeout_s=None`` disables the
    impatient-client resubmit loop entirely.
    """

    queue_limit: int | None = 64
    policy: str = "deadline-drop"
    deadline_s: float | None = 0.5
    retry_budget: float | None = 0.1
    budget_burst: float = 10.0
    breaker: bool = True
    breaker_threshold: int = 5
    breaker_cooldown: float = 1.0
    client_timeout_s: float | None = None
    max_attempts: int = 4

    def __post_init__(self):
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ConfigurationError("overload queue limit must be >= 1")
        if self.policy not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"unknown admission policy {self.policy!r}; expected one of "
                f"{', '.join(ADMISSION_POLICIES)}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError("overload deadline must be > 0")
        if self.retry_budget is not None and not 0.0 < self.retry_budget <= 1.0:
            raise ConfigurationError("retry budget must be in (0, 1]")
        if self.budget_burst < 1.0:
            raise ConfigurationError("retry budget burst must be >= 1")
        if self.breaker_threshold < 1:
            raise ConfigurationError("breaker threshold must be >= 1")
        if self.breaker_cooldown <= 0:
            raise ConfigurationError("breaker cooldown must be > 0")
        if self.client_timeout_s is not None and self.client_timeout_s <= 0:
            raise ConfigurationError("client timeout must be > 0")
        if self.max_attempts < 1:
            raise ConfigurationError("max attempts must be >= 1")
        if self.policy == "deadline-drop" and self.deadline_s is None:
            raise ConfigurationError(
                "policy=deadline-drop needs a deadline (e.g. deadline=500ms)"
            )

    @property
    def protected(self) -> bool:
        """True when any server-side protection is on."""
        return (
            self.queue_limit is not None
            or self.deadline_s is not None
            or self.retry_budget is not None
            or self.breaker
        )

    def unprotected(self) -> "OverloadPolicy":
        """The same client behavior with every protection stripped.

        This is the metastable demo's contrast arm: identical impatient
        clients (``client_timeout_s`` / ``max_attempts`` survive), but no
        queue bound, no deadline, no retry budget, no breakers — the
        pre-PR melt-down behavior, kept available on purpose.
        """
        return replace(
            self, queue_limit=None, policy="reject", deadline_s=None,
            retry_budget=None, breaker=False,
        )

    @classmethod
    def parse(cls, spec: str) -> "OverloadPolicy":
        """Parse the CLI ``--overload`` spec (``default`` -> the defaults)."""
        if not isinstance(spec, str) or not spec.strip():
            raise ConfigurationError("empty overload spec")
        text = spec.strip()
        if text == "default":
            text = DEFAULT_SPEC
        kwargs: dict = {}
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise ConfigurationError(
                    f"overload spec: bad entry {entry!r}; expected key=value"
                )
            key, _, value = entry.partition("=")
            key, value = key.strip(), value.strip()
            try:
                if key == "queue":
                    kwargs["queue_limit"] = (
                        None if value == "off" else int(value))
                elif key == "policy":
                    kwargs["policy"] = value
                elif key == "deadline":
                    kwargs["deadline_s"] = (
                        None if value == "off"
                        else _parse_seconds(value, key))
                elif key == "budget":
                    kwargs["retry_budget"] = (
                        None if value == "off" else float(value))
                elif key == "burst":
                    kwargs["budget_burst"] = float(value)
                elif key == "breaker":
                    if value not in ("on", "off"):
                        raise ConfigurationError(
                            "overload spec: breaker must be on or off")
                    kwargs["breaker"] = value == "on"
                elif key == "threshold":
                    kwargs["breaker_threshold"] = int(value)
                elif key == "cooldown":
                    kwargs["breaker_cooldown"] = _parse_seconds(value, key)
                elif key == "timeout":
                    kwargs["client_timeout_s"] = (
                        None if value == "off"
                        else _parse_seconds(value, key))
                elif key == "attempts":
                    kwargs["max_attempts"] = int(value)
                else:
                    raise ConfigurationError(
                        f"overload spec: unknown key {key!r}"
                    )
            except ValueError:
                raise ConfigurationError(
                    f"overload spec: bad value {value!r} for {key}"
                ) from None
        return cls(**kwargs)

    def spec_string(self) -> str:
        """A spec that parses back to this policy (report provenance)."""

        def seconds(value: float) -> str:
            ms = value * 1000.0
            return f"{ms:g}ms" if ms == int(ms) else f"{value:g}s"

        parts = [
            f"queue={self.queue_limit if self.queue_limit is not None else 'off'}",
            f"policy={self.policy}",
            "deadline=" + (
                seconds(self.deadline_s) if self.deadline_s is not None
                else "off"),
            "budget=" + (
                f"{self.retry_budget:g}" if self.retry_budget is not None
                else "off"),
            f"breaker={'on' if self.breaker else 'off'}",
        ]
        if self.client_timeout_s is not None:
            parts.append(f"timeout={seconds(self.client_timeout_s)}")
            parts.append(f"attempts={self.max_attempts}")
        return ",".join(parts)


class RetryBudget:
    """Token-bucket retry budget: at most ``ratio`` of ops may be retries.

    Every first attempt deposits ``ratio`` tokens (capped at ``burst``);
    every retry spends a whole token.  Under steady load the retry rate is
    therefore bounded by ``ratio`` times the op rate, which is what stops
    a retry storm from multiplying offered load past capacity.  Fully
    deterministic — no clock, no randomness.
    """

    def __init__(self, ratio: float, burst: float = 10.0):
        if not 0.0 < ratio <= 1.0:
            raise ConfigurationError("retry budget ratio must be in (0, 1]")
        if burst < 1.0:
            raise ConfigurationError("retry budget burst must be >= 1")
        self.ratio = ratio
        self.cap = burst
        self.tokens = burst
        self.spent = 0
        self.denied = 0

    def note_op(self) -> None:
        """A first attempt arrived; accrue its retry allowance."""
        self.tokens = min(self.cap, self.tokens + self.ratio)

    def try_retry(self) -> bool:
        """Spend a token for one retry; False when the budget is dry."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False


BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """One shard's closed → open → half-open breaker on a caller-supplied clock.

    ``threshold`` consecutive failures trip the breaker open; while open,
    :meth:`allow` fails fast.  After ``cooldown`` clock units the next
    :meth:`allow` admits a single half-open probe: its success closes the
    breaker (and resets the failure count), its failure re-opens it for
    another cooldown.  The transition log is kept for reports and tests.
    """

    def __init__(self, threshold: int = 5, cooldown: float = 1.0):
        if threshold < 1:
            raise ConfigurationError("breaker threshold must be >= 1")
        if cooldown <= 0:
            raise ConfigurationError("breaker cooldown must be > 0")
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = BREAKER_CLOSED
        self.failures = 0
        self.fast_failures = 0
        self.opened_at = 0.0
        self.transitions: list[tuple[float, str]] = []

    def _move(self, now: float, state: str) -> None:
        self.state = state
        self.transitions.append((now, state))

    def allow(self, now: float) -> bool:
        """May a request be sent to this shard right now?"""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN and now >= self.opened_at + self.cooldown:
            self._move(now, BREAKER_HALF_OPEN)
            return True  # the single half-open probe
        self.fast_failures += 1
        return False

    def record_success(self, now: float) -> None:
        self.failures = 0
        if self.state == BREAKER_HALF_OPEN:
            self._move(now, BREAKER_CLOSED)

    def record_failure(self, now: float) -> None:
        if self.state == BREAKER_HALF_OPEN:
            self.opened_at = now
            self._move(now, BREAKER_OPEN)
            return
        self.failures += 1
        if self.state == BREAKER_CLOSED and self.failures >= self.threshold:
            self.opened_at = now
            self._move(now, BREAKER_OPEN)


class BreakerBoard:
    """Per-shard :class:`CircuitBreaker` instances, created on first failure."""

    def __init__(self, threshold: int = 5, cooldown: float = 1.0):
        self.threshold = threshold
        self.cooldown = cooldown
        self._breakers: dict[int, CircuitBreaker] = {}

    def breaker(self, shard: int) -> CircuitBreaker:
        if shard not in self._breakers:
            self._breakers[shard] = CircuitBreaker(
                self.threshold, self.cooldown)
        return self._breakers[shard]

    def allow(self, shard: int, now: float) -> bool:
        return self.breaker(shard).allow(now)

    def record_success(self, shard: int, now: float) -> None:
        if shard in self._breakers:
            self._breakers[shard].record_success(now)

    def record_failure(self, shard: int, now: float) -> None:
        self.breaker(shard).record_failure(now)

    @property
    def fast_failures(self) -> int:
        return sum(b.fast_failures for b in self._breakers.values())

    def to_dict(self) -> dict:
        """Transition log per shard, JSON-shaped for reports."""
        return {
            str(shard): {
                "state": breaker.state,
                "fast_failures": breaker.fast_failures,
                "transitions": [
                    [round(at, 6), state]
                    for at, state in breaker.transitions
                ],
            }
            for shard, breaker in sorted(self._breakers.items())
        }

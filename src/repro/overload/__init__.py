"""Graceful degradation under overload (PR 10).

Admission control with bounded, policy-managed station queues
(:mod:`repro.overload.admission`), end-to-end deadline propagation, retry
budgets and per-shard circuit breakers (:mod:`repro.overload.policy`), an
overload-aware open-loop simulator (:mod:`repro.overload.sim`), breaker
cells on the functional clusters (:mod:`repro.overload.functional`), and
the chaos-verified metastable-failure demonstration with its
``repro-overload/1`` report (:mod:`repro.overload.report`).
"""

from repro.overload.admission import (
    SHED_DEADLINE,
    SHED_QUEUE_FULL,
    AdmissionResource,
)
from repro.overload.functional import functional_overload_cell
from repro.overload.policy import (
    ADMISSION_POLICIES,
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DEFAULT_SPEC,
    BreakerBoard,
    CircuitBreaker,
    OverloadPolicy,
    RetryBudget,
    class_priority,
)
from repro.overload.report import (
    SCHEMA,
    build_overload_report,
    dumps_overload_report,
    overload_report,
    render_overload_report,
    validate_overload_report,
    write_overload_report,
)
from repro.overload.sim import SHED_FAULT, overload_open_loop

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionResource",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerBoard",
    "CircuitBreaker",
    "DEFAULT_SPEC",
    "OverloadPolicy",
    "RetryBudget",
    "SCHEMA",
    "SHED_DEADLINE",
    "SHED_FAULT",
    "SHED_QUEUE_FULL",
    "build_overload_report",
    "class_priority",
    "dumps_overload_report",
    "functional_overload_cell",
    "overload_open_loop",
    "overload_report",
    "render_overload_report",
    "validate_overload_report",
    "write_overload_report",
]

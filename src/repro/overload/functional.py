"""Overload protection on the functional clusters: breaker cells.

The event simulator (:mod:`repro.overload.sim`) demonstrates the queueing
side of graceful degradation; this module demonstrates the *client* side on
the functional clusters.  A :func:`functional_overload_cell` runs the same
shard-fault plan twice through :class:`~repro.faults.runner.FaultedYcsbRun`
— once with the overload policy's retry budget and per-shard circuit
breakers, once without — and reports what the protection bought:

* **backoff burned**: an unprotected client retries every op routed to the
  dead shard through the full backoff schedule; breakers fail those ops
  fast after the trip threshold, so backoff seconds collapse;
* **breaker life cycle**: the per-shard closed → open → (half-open → …)
  transition log, on the run's logical clock;
* **shed accounting**: ops rejected by an open breaker or a dry retry
  budget, by reason, kept out of the latency mean but inside the error
  rate.

Availability barely moves — a dead shard's ops fail either way — which is
the point: breakers change *how much the client pays* to learn the same
answer, not the answer itself.
"""

from __future__ import annotations

from repro.common.errors import FaultPlanError
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.faults.runner import FaultedYcsbRun
from repro.overload.policy import OverloadPolicy
from repro.ycsb.workloads import WORKLOADS


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


def _arm_dict(stats) -> dict:
    return {
        "attempted": stats.attempted,
        "succeeded": stats.succeeded,
        "availability": _round(stats.availability),
        "errors": {cls: n for cls, n in sorted(stats.errors.items())},
        "retries": stats.retries,
        "backoff_seconds": _round(stats.backoff_seconds),
        "duration_seconds": _round(stats.duration),
        "shed": {reason: n for reason, n in sorted(stats.shed.items())},
        "budget_denied": stats.budget_denied,
        "breaker_fast_failures": stats.breaker_fast_failures,
        "breakers": stats.breakers,
        "error_rate": _round(
            (stats.error_count + stats.shed_count) / stats.attempted
            if stats.attempted else 0.0
        ),
    }


def functional_overload_cell(
    plan: FaultPlan,
    overload: OverloadPolicy,
    *,
    system: str = "mongo-as",
    workload: str = "A",
    shard_count: int = 8,
    record_count: int = 2000,
    operations: int = 4000,
    policy: RetryPolicy | None = None,
    replication=None,
    metrics=None,
) -> dict:
    """One protected-vs-unprotected cell on a functional cluster.

    ``plan`` must contain at least one shard-level fault (``kill-shard``
    is the canonical trigger).  Both arms replay the identical op stream
    (same seed, same plan); the only difference is whether the client's
    retry loop consults the budget and the breakers.
    """
    from repro.faults.report import _build_cluster

    if workload not in WORKLOADS:
        raise FaultPlanError(
            f"unknown workload {workload!r}; expected one of "
            f"{', '.join(sorted(WORKLOADS))}"
        )
    if not (plan.shard_faults or plan.member_faults):
        raise FaultPlanError(
            "functional overload cell needs at least one shard-level fault "
            "(e.g. kill-shard:0@0.3)"
        )
    policy = policy or RetryPolicy()
    spec = WORKLOADS[workload]
    seed = plan.seed or 7

    def run(with_overload) -> object:
        cluster = _build_cluster(system, shard_count, record_count,
                                 replication=replication, seed=seed)
        runner = FaultedYcsbRun(
            cluster, spec, record_count=record_count, operations=operations,
            plan=plan, policy=policy, seed=seed, metrics=metrics,
            overload=with_overload,
        )
        runner.load()
        return runner.run()

    unprotected = run(None)
    protected = run(overload)
    unprotected_d = _arm_dict(unprotected)
    protected_d = _arm_dict(protected)
    saved = unprotected.backoff_seconds - protected.backoff_seconds
    return {
        "scenario": {
            "plan": plan.spec_string(),
            "seed": seed,
            "system": system,
            "workload": workload,
            "shard_count": shard_count,
            "record_count": record_count,
            "operations": operations,
            "overload": overload.spec_string(),
        },
        "unprotected": unprotected_d,
        "protected": protected_d,
        "contrast": {
            "backoff_saved_seconds": _round(saved),
            "backoff_ratio": _round(
                protected.backoff_seconds / unprotected.backoff_seconds
                if unprotected.backoff_seconds else 1.0, 3
            ),
            "availability_delta": _round(
                protected.availability - unprotected.availability
            ),
            "breaker_trips": sum(
                1
                for shard in protected.breakers.values()
                for _at, state in shard["transitions"]
                if state == "open"
            ),
        },
    }

"""Overload-aware open-loop simulation: shedding, deadlines, retry storms.

This is the open-loop event simulation from :mod:`repro.ycsb.eventsim`
with the graceful-degradation layer threaded through:

* stations are :class:`~repro.overload.admission.AdmissionResource`
  instances — bounded queues that shed typed overload outcomes instead of
  growing without bound;
* every op carries an end-to-end **deadline** from its intended arrival
  (``policy.deadline_s``); expired ops are dropped at each queue hop, so
  no server burns service on a request whose client is gone;
* an optional **impatient client** resubmits an op that has not resolved
  within ``policy.client_timeout_s``, up to ``policy.max_attempts`` tries.
  Duplicates are *not cancelled* on success — exactly the wasted work that
  multiplies offered load during a retry storm — unless deadlines kill
  them at a hop.  A :class:`~repro.overload.policy.RetryBudget` caps what
  fraction of traffic those resubmits may be;
* an ``arrival-spike`` fault window multiplies the Poisson arrival rate —
  the metastable demo's transient trigger.

Everything stays a pure function of the seed: each (op, attempt) pair
draws from its own :class:`~repro.common.rng.SeedStream` substream, so
results are byte-identical across runs regardless of event interleaving.
The plain (``overload=None``) simulator path is untouched — zero-cost-off.
"""

from __future__ import annotations

from repro.common.errors import SimulationError
from repro.common.rng import SeedStream
from repro.common.stats import arithmetic_mean, percentile
from repro.overload.admission import (
    SHED_DEADLINE,
    SHED_QUEUE_FULL,
    AdmissionResource,
)
from repro.overload.policy import OverloadPolicy, RetryBudget, class_priority
from repro.simcluster.events import Environment, Resource

# Attempt-shed reason for an op-error fault window (the attempt bounced
# off a transiently failing station; the client may resubmit on timeout).
SHED_FAULT = "fault"


def overload_open_loop(
    stations,
    mix: dict,
    rate: float,
    policy: OverloadPolicy,
    workers: int | None = None,
    duration: float = 60.0,
    warmup: float = 10.0,
    windows: int = 6,
    seed: int = 1234,
    faults=None,
    metrics=None,
    live=None,
    slo_s: float | None = None,
    series_slice: float | None = None,
):
    """Open-loop Poisson arrivals through admission-controlled stations.

    Returns an :class:`~repro.ycsb.eventsim.OpenLoopResult` whose overload
    fields (``shed``, ``goodput``, ``late_ops``, ``resubmits``,
    ``budget_denied``, ``series``) are populated.  ``slo_s`` is the
    goodput yardstick — a completion counts as *good* only if its
    end-to-end latency is within it (defaults to ``policy.deadline_s``;
    with neither set every completion is good).  ``series_slice`` turns on
    the per-slice time series the metastable report renders.
    """
    from repro.ycsb.eventsim import OpenLoopResult, _exponential, _pick_class

    if rate <= 0:
        raise SimulationError(f"arrival rate must be > 0, got {rate:g}")
    if workers is not None and workers < 1:
        raise SimulationError("need at least one worker")
    if not mix or abs(sum(mix.values()) - 1.0) > 1e-9:
        raise SimulationError("op mix must sum to 1")
    if duration <= warmup:
        raise SimulationError("duration must exceed warmup")

    from repro.ycsb.arrivals import PoissonArrivals

    station_faults = None
    if faults:
        from repro.faults.plan import StationFaults

        station_faults = (
            faults if isinstance(faults, StationFaults) else StationFaults(faults)
        )
        if not station_faults:
            station_faults = None

    env = Environment(metrics=metrics)
    resources = {
        s.name: AdmissionResource(
            env, s.servers, name=s.name,
            queue_limit=policy.queue_limit, policy=policy.policy,
        )
        for s in stations
    }
    pool = Resource(env, workers) if workers is not None else None
    seeds = SeedStream(seed)
    slo = slo_s if slo_s is not None else policy.deadline_s
    budget = (
        RetryBudget(policy.retry_budget, policy.budget_burst)
        if policy.retry_budget is not None
        and policy.client_timeout_s is not None
        else None
    )

    result = OpenLoopResult(offered_rate=rate)
    latencies: dict[str, list[float]] = {c: [] for c in mix}
    uncorrected: dict[str, list[float]] = {c: [] for c in mix}
    shed_classes: dict[str, int] = {}
    pending: dict[int, float] = {}  # measured unresolved ops: index -> intended
    counters = {
        "arrivals": 0, "good": 0, "late": 0, "resubmits": 0,
        "budget_denied": 0, "duplicates": 0, "lag": 0.0,
    }
    shed_counts: dict[str, int] = {}
    measure = duration - warmup
    window_width = measure / windows
    window_counts = [0] * windows
    completed = [0]

    n_slices = 0
    if series_slice is not None:
        if series_slice <= 0:
            raise SimulationError("series slice must be > 0")
        n_slices = max(1, int(round(duration / series_slice)))
    series = {
        key: [0] * n_slices
        for key in ("arrivals", "completions", "good", "shed", "resubmits")
    }

    def slot(t: float) -> int:
        return min(n_slices - 1, int(t / series_slice))

    def bump(key: str, t: float) -> None:
        if n_slices:
            series[key][slot(t)] += 1

    if station_faults:
        for spec in station_faults.windows:
            end = duration if spec.end <= spec.at else min(spec.end, duration)
            if live:
                live.note_event(f"{spec.kind}:{spec.target}", spec.at, end)

        def crash_driver(resource, servers, crash_windows):
            for at, end, lost in sorted(crash_windows):
                if at > env.now:
                    yield env.timeout(at - env.now)
                resource.set_capacity(max(1, int(round(servers * (1.0 - lost)))))
                restore = duration if end <= at else min(end, duration)
                if restore > env.now:
                    yield env.timeout(restore - env.now)
                resource.set_capacity(servers)

        for s in stations:
            crash_windows = station_faults.crash_windows(s.name)
            if crash_windows:
                env.process(crash_driver(resources[s.name], s.servers,
                                         crash_windows))

    # -- per-op resolution ----------------------------------------------------

    def resolve_ok(state) -> None:
        t = env.now
        latency = t - state["intended"]
        good = slo is None or latency <= slo
        bump("completions", t)
        if good:
            bump("good", t)
        else:
            counters["late"] += 1
        if state["measured"]:
            pending.pop(state["index"], None)
            completed[0] += 1
            if good:
                counters["good"] += 1
            window_counts[
                min(windows - 1, int((t - warmup) / window_width))
            ] += 1
            latencies[state["class"]].append(latency)
            uncorrected[state["class"]].append(t - state["dispatched"])
            if live:
                live.record_op(t, latency, error=False, cls=state["class"])
        if metrics:
            metrics.counter(f"ycsb.ops.{state['class']}").inc()

    def resolve_shed(state) -> None:
        t = env.now
        reason = state["last_shed"] or SHED_QUEUE_FULL
        bump("shed", t)
        if state["measured"]:
            pending.pop(state["index"], None)
            shed_counts[reason] = shed_counts.get(reason, 0) + 1
            shed_classes[state["class"]] = (
                shed_classes.get(state["class"], 0) + 1)
            if live:
                live.record_shed(t, cls=state["class"], reason=reason)
        if metrics:
            metrics.counter(f"overload.shed.{reason}").inc()

    def maybe_finalize(state) -> None:
        if (state["outcome"] is None and state["live"] == 0
                and state["done_hedging"]):
            state["outcome"] = "shed"
            resolve_shed(state)

    # -- attempt / client processes -------------------------------------------

    def attempt(index: int, k: int, state) -> object:
        rng = seeds.rng_for("op", index, k)
        fault_rng = (
            seeds.rng_for("op-fault", index, k) if station_faults else None)
        op_class = state["class"]
        deadline = state["deadline"]
        prio = class_priority(op_class)
        if pool is not None:
            grant = pool.request()
            yield grant
            if k == 0:
                state["dispatched"] = env.now
                counters["lag"] = max(
                    counters["lag"], env.now - state["intended"])
        ok = True
        for station in stations:
            mean = station.service.get(op_class, 0.0)
            if mean <= 0.0:
                continue
            resource = resources[station.name]
            if deadline is not None and env.now >= deadline:
                state["last_shed"] = SHED_DEADLINE
                ok = False
                break
            grant = resource.request(deadline=deadline, priority=prio)
            outcome = yield grant
            if outcome is not None:
                state["last_shed"] = outcome
                ok = False
                break
            if deadline is not None and env.now >= deadline:
                # Expired while queued under a non-purging policy: drop at
                # the hop, before any service is burned on a dead request.
                resource.release()
                state["last_shed"] = SHED_DEADLINE
                ok = False
                break
            service = _exponential(rng, mean)
            if station_faults:
                service *= station_faults.slowdown(station.name, env.now)
            yield env.timeout(service)
            resource.release()
            if station_faults:
                probability = station_faults.error_probability(
                    station.name, env.now)
                if probability > 0.0 and fault_rng.random_float() < probability:
                    state["last_shed"] = SHED_FAULT
                    ok = False
                    break
        if pool is not None:
            pool.release()
        if ok:
            if state["outcome"] is None:
                state["outcome"] = "ok"
                resolve_ok(state)
            else:
                # A duplicate finishing after the op resolved: pure wasted
                # service — the retry storm's fuel.
                counters["duplicates"] += 1
        state["live"] -= 1
        maybe_finalize(state)

    def client(index: int, state) -> object:
        for k in range(1, policy.max_attempts):
            yield env.timeout(policy.client_timeout_s)
            if state["outcome"] is not None:
                break
            if (state["deadline"] is not None
                    and env.now >= state["deadline"]):
                break
            if budget is not None and not budget.try_retry():
                counters["budget_denied"] += 1
                break
            counters["resubmits"] += 1
            bump("resubmits", env.now)
            state["live"] += 1
            env.process(attempt(index, k, state))
        state["done_hedging"] = True
        maybe_finalize(state)

    def arrival_times() -> list[float]:
        schedule = PoissonArrivals(rate, seeds.seed_for("arrivals"))
        times = list(schedule.until(duration))
        if station_faults:
            for i, (at, end, factor) in enumerate(
                    station_faults.arrival_windows()):
                extra_rate = rate * (factor - 1.0)
                if extra_rate <= 0.0:
                    continue
                extra = PoissonArrivals(
                    extra_rate, seeds.seed_for("arrivals-spike", i))
                horizon = min(end, duration) - at
                if horizon <= 0.0:
                    continue
                times.extend(at + t for t in extra.until(horizon))
            times.sort()
        return times

    def arrival_source() -> object:
        for index, at in enumerate(arrival_times()):
            if at > env.now:
                yield env.timeout(at - env.now)
            measured = at >= warmup
            if measured:
                counters["arrivals"] += 1
            bump("arrivals", at)
            cls_rng = seeds.rng_for("op-class", index)
            state = {
                "index": index,
                "intended": at,
                "dispatched": at,
                "class": _pick_class(cls_rng, mix),
                "deadline": (
                    at + policy.deadline_s
                    if policy.deadline_s is not None else None),
                "outcome": None,
                "last_shed": None,
                "live": 1,
                "done_hedging": policy.client_timeout_s is None,
                "measured": measured,
            }
            if measured:
                pending[index] = at
            if budget is not None:
                budget.note_op()
            env.process(attempt(index, 0, state))
            if policy.client_timeout_s is not None and policy.max_attempts > 1:
                env.process(client(index, state))

    env.process(arrival_source())
    env.run(until=duration)
    if live:
        for intended in pending.values():
            live.record_censored(env.now, env.now - intended)
        live.finish(env.now)

    # -- result assembly (mirrors the plain open loop) ------------------------

    from repro.ycsb.histogram import LatencyHistogram, from_latencies

    result.arrivals = counters["arrivals"]
    result.completed_ops = completed[0]
    shed_measured = sum(shed_counts.values())
    result.unfinished_ops = counters["arrivals"] - completed[0] - shed_measured
    result.throughput = completed[0] / measure
    result.goodput = counters["good"] / measure
    result.max_dispatch_lag = counters["lag"]
    result.window_throughputs = [c / window_width for c in window_counts]

    pooled: list[float] = []
    pooled_uncorrected: list[float] = []
    for op_class, values in latencies.items():
        if not values:
            continue
        result.latency[op_class] = arithmetic_mean(values)
        result.latency_p95[op_class] = percentile(values, 95)
        result.latency_p99[op_class] = percentile(values, 99)
        result.uncorrected_p99[op_class] = percentile(uncorrected[op_class], 99)
        result.histograms[op_class] = from_latencies(values)
        pooled.extend(values)
        pooled_uncorrected.extend(uncorrected[op_class])
    # Censored accounting, extended: unresolved measured arrivals at cutoff
    # contribute their lower bound exactly as in the plain open loop.  Shed
    # ops are *not* censored — their fate is known — they land in the shed
    # counters and the per-class histograms' shed field instead.
    censored = [env.now - intended for intended in pending.values()]
    corrected = pooled + censored
    if corrected:
        result.mean = arithmetic_mean(corrected)
        result.p50 = percentile(corrected, 50)
        result.p95 = percentile(corrected, 95)
        result.p99 = percentile(corrected, 99)
        result.p999 = percentile(corrected, 99.9)
    if pooled_uncorrected:
        result.uncorrected_overall_p99 = percentile(pooled_uncorrected, 99)
    for op_class, count in shed_classes.items():
        histogram = result.histograms.setdefault(op_class, LatencyHistogram())
        histogram.shed += count

    result.shed = dict(sorted(shed_counts.items()))
    result.late_ops = counters["late"]
    result.resubmits = counters["resubmits"]
    result.budget_denied = counters["budget_denied"]
    result.duplicates = counters["duplicates"]
    if n_slices:
        result.series = [
            {
                "t": round(i * series_slice, 6),
                "arrivals": series["arrivals"][i],
                "completions": series["completions"][i],
                "good": series["good"][i],
                "shed": series["shed"][i],
                "resubmits": series["resubmits"][i],
            }
            for i in range(n_slices)
        ]
    if metrics:
        metrics.gauge("overload.goodput").set(result.goodput)
        metrics.gauge("overload.shed_ops").set(shed_measured)
    return result

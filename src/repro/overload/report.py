"""The chaos-verified metastable-failure demonstration (``repro-overload/1``).

A metastable failure (Bronson et al., HotOS'21) is a self-sustaining bad
state: a *transient* trigger pushes a system at high utilization into a
retry storm, and the storm keeps the system saturated long after the
trigger clears.  This module reproduces the mechanism on the overload-aware
open-loop simulator and shows that the PR's protections break the feedback
loop:

* **scenario** — a station running at ~80% utilization; at t=20 s a 10 s
  arrival spike (2.5×) overloads it.  Clients are impatient: an op that
  has not resolved within 250 ms is resubmitted (up to 4 attempts), and
  duplicates are not cancelled — each timed-out op multiplies offered
  load;
* **unprotected arm** — no queue bound, no deadline, no retry budget: the
  spike fills the queue, every queued op times out and respawns, and
  goodput stays collapsed after the spike ends.  The trigger is gone; the
  failure is not;
* **protected arm** — bounded ``deadline-drop`` queues shed dead work, the
  end-to-end deadline kills duplicates at every hop, and the retry budget
  caps resubmits at 10% of traffic.  Goodput dips during the spike and
  recovers within seconds of it clearing.

Both arms are a pure function of the seed.  The report serializes to
deterministic JSON (sorted keys, fixed separators, trailing newline), and
:func:`render_overload_report` draws the goodput time series as ASCII so
the collapse/recovery contrast is visible in a terminal.
"""

from __future__ import annotations

import json
from dataclasses import replace

from repro.common.errors import ConfigurationError, SimulationError
from repro.overload.policy import OverloadPolicy

SCHEMA = "repro-overload/1"

# The demo scenario: one station of 4 servers at 10 ms mean service
# (capacity 400 ops/s) offered 320 ops/s (80% utilization), with a 2.5×
# arrival spike from t=20 s to t=30 s.  At timeout 250 ms / 4 attempts the
# storm multiplies offered load up to 4× — past capacity even after the
# spike ends — which is exactly the metastable feedback loop.
DEMO_PLAN = "arrival-spike:clients@20+10x2.5"
DEMO_RATE = 320.0
DEMO_DURATION = 75.0
DEMO_WARMUP = 5.0
DEMO_SLO_S = 0.5
DEMO_SLICE_S = 1.0
DEMO_CLIENT_TIMEOUT_S = 0.25
DEMO_MAX_ATTEMPTS = 4

# Contrast thresholds: "collapsed" is goodput below half the pre-fault
# baseline; "recovered" is goodput back at 90% of baseline, sustained.
COLLAPSE_FRACTION = 0.5
RECOVERY_FRACTION = 0.9
RECOVERY_SUSTAIN_SLICES = 3


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


def demo_stations():
    """The calibrated single-station demo cluster."""
    from repro.ycsb.eventsim import SimStation

    return [SimStation("server", 4, {"read": 0.01})]


def _storm_policy(policy: OverloadPolicy) -> OverloadPolicy:
    """Ensure the impatient-client storm knobs are on (the demo's trigger)."""
    if policy.client_timeout_s is not None:
        return policy
    return replace(policy, client_timeout_s=DEMO_CLIENT_TIMEOUT_S,
                   max_attempts=DEMO_MAX_ATTEMPTS)


def _analyze_series(series, *, slice_s: float, warmup: float,
                    fault_start: float, fault_end: float) -> dict:
    """Baseline, collapse duration, and recovery time from a goodput series."""
    if not series:
        raise SimulationError("overload arm produced no time series")
    baseline_slices = [
        entry["good"] for entry in series
        if entry["t"] >= warmup and entry["t"] + slice_s <= fault_start
    ]
    if not baseline_slices:
        raise SimulationError(
            "no pre-fault slices to form a goodput baseline; the fault must "
            "start after the warmup"
        )
    baseline = sum(baseline_slices) / len(baseline_slices)
    post = [entry for entry in series if entry["t"] >= fault_end]

    collapsed = 0
    for entry in post:
        if baseline > 0 and entry["good"] < COLLAPSE_FRACTION * baseline:
            collapsed += 1
        else:
            break

    recovery_t = None
    need = RECOVERY_SUSTAIN_SLICES
    for i in range(len(post)):
        window = post[i:i + need]
        if len(window) < need:
            break
        if all(e["good"] >= RECOVERY_FRACTION * baseline for e in window):
            recovery_t = post[i]["t"]
            break

    return {
        "baseline_goodput": _round(baseline / slice_s),
        "collapsed_for_s": _round(collapsed * slice_s),
        "recovered": recovery_t is not None,
        "time_to_recovery_s": (
            _round(recovery_t - fault_end) if recovery_t is not None else None
        ),
    }


def run_overload_arm(policy: OverloadPolicy, *, stations=None, mix=None,
                     rate: float = DEMO_RATE, plan: str = DEMO_PLAN,
                     duration: float = DEMO_DURATION,
                     warmup: float = DEMO_WARMUP,
                     slo_s: float = DEMO_SLO_S,
                     slice_s: float = DEMO_SLICE_S,
                     seed: int = 1234, metrics=None, live=None) -> dict:
    """Run one arm of the demo and fold its series into arm analytics."""
    from repro.faults.plan import FaultPlan, StationFaults
    from repro.overload.sim import overload_open_loop

    stations = stations if stations is not None else demo_stations()
    mix = mix if mix is not None else {"read": 1.0}
    faults = StationFaults(FaultPlan.parse(plan, seed=seed).station_faults)
    windows = faults.windows
    if not windows:
        raise ConfigurationError(
            f"overload demo plan {plan!r} contains no station fault"
        )
    fault_start = min(spec.at for spec in windows)
    fault_end = min(
        duration,
        max((spec.end if spec.end > spec.at else duration)
            for spec in windows),
    )
    if fault_start <= warmup:
        raise ConfigurationError(
            "overload demo fault must start after the warmup "
            f"(fault at {fault_start:g}, warmup {warmup:g})"
        )

    result = overload_open_loop(
        stations, mix, rate, policy, duration=duration, warmup=warmup,
        seed=seed, faults=faults, metrics=metrics, live=live,
        slo_s=slo_s, series_slice=slice_s,
    )
    arm = {
        "policy": policy.spec_string(),
        "protected": policy.protected,
        "throughput": _round(result.throughput, 3),
        "goodput": _round(result.goodput, 3),
        "arrivals": result.arrivals,
        "completed_ops": result.completed_ops,
        "late_ops": result.late_ops,
        "shed": dict(result.shed),
        "shed_ops": result.shed_count,
        "resubmits": result.resubmits,
        "budget_denied": result.budget_denied,
        "duplicates": result.duplicates,
        "p99_ms": _round(result.p99 * 1000.0, 3),
        "series": result.series,
    }
    arm.update(_analyze_series(
        result.series, slice_s=slice_s, warmup=warmup,
        fault_start=fault_start, fault_end=fault_end,
    ))
    return arm


def build_overload_report(protected: dict, unprotected: dict,
                          scenario: dict) -> dict:
    """Assemble the two arms and the metastability verdict."""
    recovery = protected.get("time_to_recovery_s")
    contrast = {
        "unprotected_collapsed_for_s": unprotected["collapsed_for_s"],
        "protected_recovered": protected["recovered"],
        "protected_time_to_recovery_s": recovery,
        "goodput_ratio": _round(
            protected["goodput"] / unprotected["goodput"]
            if unprotected["goodput"] else float("inf"), 3
        ),
        # The demo's claim: the *same* transient trigger leaves the
        # unprotected system collapsed well past the trigger window while
        # the protected system comes back — a metastable failure, fixed.
        "metastable_demonstrated": bool(
            unprotected["collapsed_for_s"] >= scenario["collapse_floor_s"]
            and protected["recovered"]
        ),
    }
    return {
        "schema": SCHEMA,
        "scenario": scenario,
        "protected": protected,
        "unprotected": unprotected,
        "contrast": contrast,
    }


def overload_report(policy: OverloadPolicy | None = None, *,
                    stations=None, mix=None, rate: float = DEMO_RATE,
                    plan: str = DEMO_PLAN, duration: float = DEMO_DURATION,
                    warmup: float = DEMO_WARMUP, slo_s: float = DEMO_SLO_S,
                    slice_s: float = DEMO_SLICE_S, seed: int = 1234,
                    collapse_floor_s: float = 30.0,
                    metrics=None, live=None) -> dict:
    """The full with/without metastable demonstration.

    ``policy`` is the protected arm's configuration (defaults to the
    ``--overload`` defaults with the demo's impatient-client knobs); the
    unprotected arm is the same clients with every protection stripped.
    ``live`` (a :class:`~repro.obs.live.LiveTelemetry`) attaches to the
    protected arm, so ``--live-report`` composes with ``--overload-report``.
    """
    policy = _storm_policy(policy if policy is not None
                           else OverloadPolicy())
    kwargs = dict(stations=stations, mix=mix, rate=rate, plan=plan,
                  duration=duration, warmup=warmup, slo_s=slo_s,
                  slice_s=slice_s, seed=seed, metrics=metrics)
    protected = run_overload_arm(policy, live=live, **kwargs)
    unprotected = run_overload_arm(policy.unprotected(), **kwargs)
    scenario = {
        "plan": plan,
        "seed": seed,
        "rate_ops_per_s": _round(rate, 3),
        "duration_s": _round(duration, 3),
        "warmup_s": _round(warmup, 3),
        "slo_ms": _round(slo_s * 1000.0, 3),
        "slice_s": _round(slice_s, 3),
        "collapse_floor_s": _round(collapse_floor_s, 3),
        "stations": [
            {"name": s.name, "servers": s.servers,
             "service_ms": {c: _round(v * 1000.0, 3)
                            for c, v in sorted(s.service.items())}}
            for s in (stations if stations is not None else demo_stations())
        ],
        "client": {
            "timeout_ms": _round((policy.client_timeout_s or 0.0) * 1000.0, 3),
            "max_attempts": policy.max_attempts,
        },
    }
    return build_overload_report(protected, unprotected, scenario)


# -- validation ----------------------------------------------------------------

_ARM_REQUIRED = {
    "policy": str,
    "protected": bool,
    "throughput": (int, float),
    "goodput": (int, float),
    "arrivals": int,
    "completed_ops": int,
    "late_ops": int,
    "shed": dict,
    "shed_ops": int,
    "resubmits": int,
    "budget_denied": int,
    "duplicates": int,
    "p99_ms": (int, float),
    "series": list,
    "baseline_goodput": (int, float),
    "collapsed_for_s": (int, float),
    "recovered": bool,
}

_SERIES_REQUIRED = {
    "t": (int, float),
    "arrivals": int,
    "completions": int,
    "good": int,
    "shed": int,
    "resubmits": int,
}

_CONTRAST_REQUIRED = {
    "unprotected_collapsed_for_s": (int, float),
    "protected_recovered": bool,
    "goodput_ratio": (int, float),
    "metastable_demonstrated": bool,
}


def _check_fields(obj: dict, required: dict, where: str) -> None:
    if not isinstance(obj, dict):
        raise ConfigurationError(f"overload report: {where} must be an object")
    for key, types in required.items():
        if key not in obj:
            raise ConfigurationError(
                f"overload report: {where} missing field {key!r}"
            )
        value = obj[key]
        if isinstance(value, bool) and types is not bool:
            raise ConfigurationError(
                f"overload report: {where}.{key} has wrong type bool"
            )
        if not isinstance(value, types):
            raise ConfigurationError(
                f"overload report: {where}.{key} has wrong type "
                f"{type(value).__name__}"
            )


def validate_overload_report(data: dict) -> None:
    """Schema check for a ``repro-overload/1`` document (raises on failure)."""
    if not isinstance(data, dict):
        raise ConfigurationError("overload report must be a JSON object")
    if data.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"overload report: schema must be {SCHEMA!r}, "
            f"got {data.get('schema')!r}"
        )
    for section in ("scenario", "protected", "unprotected", "contrast"):
        if section not in data:
            raise ConfigurationError(
                f"overload report: missing section {section!r}"
            )
    for arm_name in ("protected", "unprotected"):
        arm = data[arm_name]
        _check_fields(arm, _ARM_REQUIRED, arm_name)
        if "time_to_recovery_s" not in arm:
            raise ConfigurationError(
                f"overload report: {arm_name} missing field "
                "'time_to_recovery_s'"
            )
        for i, entry in enumerate(arm["series"]):
            _check_fields(entry, _SERIES_REQUIRED, f"{arm_name}.series[{i}]")
    _check_fields(data["contrast"], _CONTRAST_REQUIRED, "contrast")
    if not isinstance(data["scenario"].get("plan"), str):
        raise ConfigurationError("overload report: scenario.plan must be a string")


# -- serialization / rendering -------------------------------------------------


def dumps_overload_report(data: dict) -> str:
    """Deterministic JSON: sorted keys, fixed separators, trailing newline."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"


def write_overload_report(data: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_overload_report(data))


_BARS = " .:-=+*#%@"


def _spark(series, key: str, peak: float) -> str:
    out = []
    for entry in series:
        value = entry[key]
        if peak <= 0:
            out.append(" ")
            continue
        level = min(len(_BARS) - 1,
                    int(round(value / peak * (len(_BARS) - 1))))
        out.append(_BARS[level])
    return "".join(out)


def render_overload_report(data: dict) -> str:
    """ASCII contrast: goodput per slice for both arms, plus the verdict."""
    scenario = data["scenario"]
    contrast = data["contrast"]
    peak = max(
        (entry["good"]
         for arm in ("protected", "unprotected")
         for entry in data[arm]["series"]),
        default=0,
    )
    lines = [
        f"metastable-failure demo  plan: {scenario['plan']}  "
        f"rate: {scenario['rate_ops_per_s']:g} ops/s  "
        f"seed: {scenario['seed']}",
        f"  goodput/slice (1 char = {scenario['slice_s']:g}s, "
        f"peak {peak:g} good ops/slice):",
    ]
    for arm_name in ("unprotected", "protected"):
        arm = data[arm_name]
        lines.append(f"  {arm_name:12s} |{_spark(arm['series'], 'good', peak)}|")
        recovery = arm["time_to_recovery_s"]
        lines.append(
            f"  {'':12s}  goodput {arm['goodput']:g} ops/s"
            f"  shed {arm['shed_ops']}  resubmits {arm['resubmits']}"
            f"  collapsed {arm['collapsed_for_s']:g}s"
            + (f"  recovered in {recovery:g}s" if arm["recovered"]
               else "  never recovered")
        )
    verdict = ("metastable failure demonstrated and fixed"
               if contrast["metastable_demonstrated"]
               else "contrast inconclusive")
    lines.append(
        f"  verdict: {verdict}  (unprotected collapsed "
        f"{contrast['unprotected_collapsed_for_s']:g}s after the trigger "
        f"cleared; goodput ratio {contrast['goodput_ratio']:g}x)"
    )
    return "\n".join(lines)

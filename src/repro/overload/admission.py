"""Admission-controlled stations: bounded queues that shed instead of grow.

:class:`AdmissionResource` extends the event kernel's FIFO
:class:`~repro.simcluster.events.Resource` with a queue bound and a
shedding policy.  A request that cannot be admitted is *resolved
immediately* — its grant event fires with a shed-reason string instead of
``None`` — so the waiting process learns its fate without consuming
capacity::

    grant = resource.request(deadline=dl, priority=prio)
    outcome = yield grant
    if outcome is not None:   # "queue-full" or "deadline" — shed, no slot
        ...
    else:                     # granted; release() when done
        ...

Policies (service order / overflow victim):

* ``reject`` — FIFO service; a full queue sheds the newcomer;
* ``lifo`` — newest-first service (adaptive LIFO); overflow sheds the
  oldest waiter, the one most likely already abandoned by its client;
* ``deadline-drop`` — FIFO service, but expired waiters are purged at
  every grant/enqueue, so dead requests never reach a server;
* ``priority`` — waiters ordered by (priority, arrival); overflow sheds
  the worst-priority waiter (ties favor the incumbent).
"""

from __future__ import annotations

from bisect import insort

from repro.common.errors import SimulationError
from repro.simcluster.events import Event, Resource

SHED_QUEUE_FULL = "queue-full"
SHED_DEADLINE = "deadline"


class _Admit(Event):
    """A queued admission request: the grant event plus its queue key."""

    __slots__ = ("deadline", "priority", "order")

    def __init__(self, env, deadline, priority, order):
        super().__init__(env)
        self.deadline = deadline
        self.priority = priority
        self.order = order

    def __lt__(self, other: "_Admit") -> bool:
        return (self.priority, self.order) < (other.priority, other.order)


class AdmissionResource(Resource):
    """A station resource with a bounded queue and a shedding policy."""

    def __init__(self, env, capacity: int = 1, name=None, *,
                 queue_limit: int | None = None, policy: str = "reject"):
        if queue_limit is not None and queue_limit < 1:
            raise SimulationError("admission queue limit must be >= 1")
        if policy not in ("reject", "lifo", "deadline-drop", "priority"):
            raise SimulationError(f"unknown admission policy {policy!r}")
        super().__init__(env, capacity, name)
        self.queue_limit = queue_limit
        self.policy = policy
        self.shed = {SHED_QUEUE_FULL: 0, SHED_DEADLINE: 0}
        self._order = 0

    # -- shedding internals ---------------------------------------------------

    def _shed(self, waiter: Event, reason: str) -> None:
        self.shed[reason] += 1
        if self._trace:
            self._wait_since.pop(id(waiter), None)
        waiter.succeed(reason)

    def _purge_expired(self) -> None:
        """Drop every waiter whose deadline has passed (deadline-drop)."""
        now = self.env.now
        expired = [w for w in self._waiting
                   if w.deadline is not None and now >= w.deadline]
        if not expired:
            return
        self._waiting = [w for w in self._waiting
                         if w.deadline is None or now < w.deadline]
        for waiter in expired:
            self._shed(waiter, SHED_DEADLINE)

    # -- Resource overrides ---------------------------------------------------

    def request(self, deadline: float | None = None,
                priority: int = 0) -> Event:
        """Admit, queue, or shed; the returned event's value tells which."""
        if self.policy == "deadline-drop" and self._waiting:
            self._purge_expired()
        if self.in_use < self.capacity:
            return super().request()
        self._order += 1
        grant = _Admit(self.env, deadline, priority, self._order)
        if (self.queue_limit is not None
                and len(self._waiting) >= self.queue_limit):
            victim = self._pick_victim(grant)
            if victim is grant:
                self._shed(grant, SHED_QUEUE_FULL)
                if self._sample:
                    self._sample_levels()
                return grant
            self._waiting.remove(victim)
            self._shed(victim, SHED_QUEUE_FULL)
        self.total_waits += 1
        if self._trace:
            self._wait_since[id(grant)] = self.env.now
        if self.policy == "lifo":
            self._waiting.insert(0, grant)
        elif self.policy == "priority":
            insort(self._waiting, grant)
        else:
            self._waiting.append(grant)
        if self._sample:
            self._sample_levels()
        return grant

    def _pick_victim(self, newcomer: "_Admit") -> Event:
        """Which request a full queue sheds to make room (or the newcomer)."""
        if self.policy == "lifo":
            # Newest-first service keeps fresh requests viable; the oldest
            # waiter at the tail is the one whose client has given up.
            return self._waiting[-1]
        if self.policy == "priority":
            worst = self._waiting[-1]
            return worst if newcomer < worst else newcomer
        # reject / deadline-drop: the queue holds live (unexpired) work;
        # the newcomer is turned away at the door.
        return newcomer

    def release(self) -> None:
        if self.policy == "deadline-drop" and self._waiting:
            self._purge_expired()
        super().release()

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

"""The 22 TPC-H queries expressed as relational-kernel plans.

Each ``qNN`` function takes a :class:`~repro.relational.schema.Database` and
an :class:`~repro.relational.operators.ExecutionContext` and returns the
query answer as a list of dict rows.  Queries use the specification's
validation substitution parameters.  Key operators are tagged so the Hive and
PDW cost models can read true intermediate cardinalities out of the context
(tags look like ``"q5.join_lineitem"``).

Scalar subqueries (Q11, Q15, Q17, Q20, Q22) are evaluated eagerly against the
same context — exactly how both engines in the paper execute them (Hive's
TPC-H scripts split them into separate sub-query jobs).
"""

from __future__ import annotations

from repro.relational import (
    Agg,
    Aggregate,
    ExecutionContext,
    Filter,
    HashJoin,
    Limit,
    Operator,
    Project,
    Rows,
    Scan,
    Sort,
    case,
    col,
    date_add,
    lit,
)

REVENUE = col("l_extendedprice") * (lit(1) - col("l_discount"))


def _run(plan: Operator, ctx: ExecutionContext) -> list[dict]:
    return plan.execute(ctx)


def q01(db, ctx):
    """Pricing summary report: scan + wide aggregate over lineitem."""
    cutoff = date_add("1998-12-01", days=-90)
    plan = Sort(
        Aggregate(
            Scan("lineitem", predicate=col("l_shipdate") <= lit(cutoff), tag="q1.scan"),
            keys=["l_returnflag", "l_linestatus"],
            aggs={
                "sum_qty": Agg("sum", col("l_quantity")),
                "sum_base_price": Agg("sum", col("l_extendedprice")),
                "sum_disc_price": Agg("sum", REVENUE),
                "sum_charge": Agg("sum", REVENUE * (lit(1) + col("l_tax"))),
                "avg_qty": Agg("avg", col("l_quantity")),
                "avg_price": Agg("avg", col("l_extendedprice")),
                "avg_disc": Agg("avg", col("l_discount")),
                "count_order": Agg("count"),
            },
            tag="q1.agg",
        ),
        [("l_returnflag", False), ("l_linestatus", False)],
    )
    return _run(plan, ctx)


def q02(db, ctx):
    """Minimum-cost supplier: 5-way join plus a correlated MIN subquery."""
    region_supp = HashJoin(
        HashJoin(
            Scan("supplier"),
            HashJoin(
                Scan("nation"),
                Scan("region", predicate=col("r_name") == lit("EUROPE")),
                ["n_regionkey"],
                ["r_regionkey"],
                tag="q2.nr",
            ),
            ["s_nationkey"],
            ["n_nationkey"],
            tag="q2.supp",
        ),
        Scan("partsupp"),
        ["s_suppkey"],
        ["ps_suppkey"],
        tag="q2.supp_costs",
    )
    # The correlated subquery: min supplycost per part among EUROPE suppliers.
    min_costs = Aggregate(
        region_supp,
        keys=["ps_partkey"],
        aggs={"min_cost": Agg("min", col("ps_supplycost"))},
        tag="q2.min_costs",
    )
    parts = Scan(
        "part",
        predicate=(col("p_size") == lit(15)) & col("p_type").like("%BRASS"),
        tag="q2.parts",
    )
    candidate = HashJoin(region_supp, parts, ["ps_partkey"], ["p_partkey"], tag="q2.join")
    with_min = HashJoin(candidate, min_costs, ["ps_partkey"], ["ps_partkey"])
    best = Filter(with_min, col("ps_supplycost") == col("min_cost"), tag="q2.best")
    plan = Limit(
        Sort(
            Project(
                best,
                {
                    "s_acctbal": "s_acctbal",
                    "s_name": "s_name",
                    "n_name": "n_name",
                    "p_partkey": "p_partkey",
                    "p_mfgr": "p_mfgr",
                    "s_address": "s_address",
                    "s_phone": "s_phone",
                    "s_comment": "s_comment",
                },
            ),
            [("s_acctbal", True), ("n_name", False), ("s_name", False), ("p_partkey", False)],
        ),
        100,
    )
    return _run(plan, ctx)


def q03(db, ctx):
    """Shipping priority: BUILDING segment, orders before / ships after a date."""
    plan = Limit(
        Sort(
            Aggregate(
                HashJoin(
                    HashJoin(
                        Scan(
                            "orders",
                            predicate=col("o_orderdate") < lit("1995-03-15"),
                            tag="q3.orders",
                        ),
                        Scan(
                            "customer",
                            predicate=col("c_mktsegment") == lit("BUILDING"),
                            tag="q3.customer",
                        ),
                        ["o_custkey"],
                        ["c_custkey"],
                        tag="q3.join_cust",
                    ),
                    Scan(
                        "lineitem",
                        predicate=col("l_shipdate") > lit("1995-03-15"),
                        tag="q3.lineitem",
                    ),
                    ["o_orderkey"],
                    ["l_orderkey"],
                    tag="q3.join_line",
                ),
                keys=["l_orderkey", "o_orderdate", "o_shippriority"],
                aggs={"revenue": Agg("sum", REVENUE)},
            ),
            [("revenue", True), ("o_orderdate", False)],
        ),
        10,
    )
    return _run(plan, ctx)


def q04(db, ctx):
    """Order priority checking: EXISTS (late lineitem) per order in a quarter."""
    start = "1993-07-01"
    end = date_add(start, months=3)
    late_lines = Scan(
        "lineitem",
        predicate=col("l_commitdate") < col("l_receiptdate"),
        columns=["l_orderkey"],
        tag="q4.late_lines",
    )
    orders = Scan(
        "orders",
        predicate=(col("o_orderdate") >= lit(start)) & (col("o_orderdate") < lit(end)),
        tag="q4.orders",
    )
    plan = Sort(
        Aggregate(
            HashJoin(orders, late_lines, ["o_orderkey"], ["l_orderkey"], how="semi",
                     tag="q4.semi"),
            keys=["o_orderpriority"],
            aggs={"order_count": Agg("count")},
        ),
        [("o_orderpriority", False)],
    )
    return _run(plan, ctx)


def q05(db, ctx):
    """Local supplier volume: the six-table join analysed in Section 3.3.4.1."""
    start = "1994-01-01"
    end = date_add(start, years=1)
    asia_nations = HashJoin(
        Scan("nation"),
        Scan("region", predicate=col("r_name") == lit("ASIA")),
        ["n_regionkey"],
        ["r_regionkey"],
        tag="q5.nation_region",
    )
    cust = HashJoin(
        Scan("customer"), asia_nations, ["c_nationkey"], ["n_nationkey"], tag="q5.cust"
    )
    cust_orders = HashJoin(
        Scan(
            "orders",
            predicate=(col("o_orderdate") >= lit(start)) & (col("o_orderdate") < lit(end)),
            tag="q5.orders",
        ),
        cust,
        ["o_custkey"],
        ["c_custkey"],
        tag="q5.join_orders",
    )
    with_lines = HashJoin(
        cust_orders,
        Scan("lineitem", tag="q5.lineitem"),
        ["o_orderkey"],
        ["l_orderkey"],
        tag="q5.join_lineitem",
    )
    # Supplier must be in the same nation as the customer.
    with_supp = Filter(
        HashJoin(with_lines, Scan("supplier"), ["l_suppkey"], ["s_suppkey"],
                 tag="q5.join_supplier"),
        col("s_nationkey") == col("c_nationkey"),
        tag="q5.local_only",
    )
    plan = Sort(
        Aggregate(with_supp, keys=["n_name"], aggs={"revenue": Agg("sum", REVENUE)}),
        [("revenue", True)],
    )
    return _run(plan, ctx)


def q06(db, ctx):
    """Forecasting revenue change: single-table scan with a tight predicate."""
    start = "1994-01-01"
    end = date_add(start, years=1)
    predicate = (
        (col("l_shipdate") >= lit(start))
        & (col("l_shipdate") < lit(end))
        & col("l_discount").between(0.05, 0.07)
        & (col("l_quantity") < lit(24))
    )
    plan = Aggregate(
        Scan("lineitem", predicate=predicate, tag="q6.scan"),
        keys=[],
        aggs={"revenue": Agg("sum", col("l_extendedprice") * col("l_discount"))},
    )
    return _run(plan, ctx)


def q07(db, ctx):
    """Volume shipping between FRANCE and GERMANY, by year."""
    lines = Scan(
        "lineitem",
        predicate=(col("l_shipdate") >= lit("1995-01-01"))
        & (col("l_shipdate") <= lit("1996-12-31")),
        tag="q7.lineitem",
    )
    supp_nation = Project(
        HashJoin(Scan("supplier"), Scan("nation"), ["s_nationkey"], ["n_nationkey"]),
        {"s_suppkey": "s_suppkey", "supp_nation": "n_name"},
    )
    cust_nation = Project(
        HashJoin(Scan("customer"), Scan("nation"), ["c_nationkey"], ["n_nationkey"]),
        {"c_custkey": "c_custkey", "cust_nation": "n_name"},
    )
    joined = HashJoin(
        HashJoin(
            HashJoin(lines, supp_nation, ["l_suppkey"], ["s_suppkey"], tag="q7.join_supp"),
            Scan("orders"),
            ["l_orderkey"],
            ["o_orderkey"],
            tag="q7.join_orders",
        ),
        cust_nation,
        ["o_custkey"],
        ["c_custkey"],
        tag="q7.join_cust",
    )
    pair = Filter(
        joined,
        ((col("supp_nation") == lit("FRANCE")) & (col("cust_nation") == lit("GERMANY")))
        | ((col("supp_nation") == lit("GERMANY")) & (col("cust_nation") == lit("FRANCE"))),
        tag="q7.pair",
    )
    plan = Sort(
        Aggregate(
            Project(
                pair,
                {
                    "supp_nation": "supp_nation",
                    "cust_nation": "cust_nation",
                    "l_year": col("l_shipdate").year(),
                    "volume": REVENUE,
                },
            ),
            keys=["supp_nation", "cust_nation", "l_year"],
            aggs={"revenue": Agg("sum", col("volume"))},
        ),
        [("supp_nation", False), ("cust_nation", False), ("l_year", False)],
    )
    return _run(plan, ctx)


def q08(db, ctx):
    """National market share for ECONOMY ANODIZED STEEL in AMERICA."""
    america_nations = HashJoin(
        Scan("nation"),
        Scan("region", predicate=col("r_name") == lit("AMERICA")),
        ["n_regionkey"],
        ["r_regionkey"],
    )
    cust = Project(
        HashJoin(Scan("customer"), america_nations, ["c_nationkey"], ["n_nationkey"]),
        {"c_custkey": "c_custkey"},
    )
    orders = Scan(
        "orders",
        predicate=col("o_orderdate").between("1995-01-01", "1996-12-31"),
        tag="q8.orders",
    )
    parts = Scan(
        "part",
        predicate=col("p_type") == lit("ECONOMY ANODIZED STEEL"),
        columns=["p_partkey"],
        tag="q8.parts",
    )
    supp_nation = Project(
        HashJoin(Scan("supplier"), Scan("nation"), ["s_nationkey"], ["n_nationkey"]),
        {"s_suppkey": "s_suppkey", "supp_nation": "n_name"},
    )
    joined = HashJoin(
        HashJoin(
            HashJoin(
                HashJoin(
                    Scan("lineitem", tag="q8.lineitem"),
                    parts,
                    ["l_partkey"],
                    ["p_partkey"],
                    tag="q8.join_part",
                ),
                orders,
                ["l_orderkey"],
                ["o_orderkey"],
                tag="q8.join_orders",
            ),
            cust,
            ["o_custkey"],
            ["c_custkey"],
            tag="q8.join_cust",
        ),
        supp_nation,
        ["l_suppkey"],
        ["s_suppkey"],
        tag="q8.join_supp",
    )
    volumes = Project(
        joined,
        {
            "o_year": col("o_orderdate").year(),
            "volume": REVENUE,
            "brazil_volume": case(
                [(col("supp_nation") == lit("BRAZIL"), REVENUE)], default=0.0
            ),
        },
    )
    shares = Aggregate(
        volumes,
        keys=["o_year"],
        aggs={"total": Agg("sum", col("volume")), "brazil": Agg("sum", col("brazil_volume"))},
    )
    plan = Sort(
        Project(
            shares,
            {"o_year": "o_year", "mkt_share": col("brazil") / col("total")},
        ),
        [("o_year", False)],
    )
    return _run(plan, ctx)


def q09(db, ctx):
    """Product-type profit for %green% parts (the query that DNFs at 16 TB)."""
    parts = Scan(
        "part", predicate=col("p_name").like("%green%"), columns=["p_partkey"],
        tag="q9.parts",
    )
    joined = HashJoin(
        HashJoin(
            HashJoin(
                Scan("lineitem", tag="q9.lineitem"),
                parts,
                ["l_partkey"],
                ["p_partkey"],
                tag="q9.join_part",
            ),
            Scan("partsupp"),
            ["l_partkey", "l_suppkey"],
            ["ps_partkey", "ps_suppkey"],
            tag="q9.join_partsupp",
        ),
        Project(
            HashJoin(Scan("supplier"), Scan("nation"), ["s_nationkey"], ["n_nationkey"]),
            {"s_suppkey": "s_suppkey", "nation": "n_name"},
        ),
        ["l_suppkey"],
        ["s_suppkey"],
        tag="q9.join_supp",
    )
    with_orders = HashJoin(
        joined, Scan("orders"), ["l_orderkey"], ["o_orderkey"], tag="q9.join_orders"
    )
    profit = Project(
        with_orders,
        {
            "nation": "nation",
            "o_year": col("o_orderdate").year(),
            "amount": REVENUE - col("ps_supplycost") * col("l_quantity"),
        },
    )
    plan = Sort(
        Aggregate(profit, keys=["nation", "o_year"], aggs={"sum_profit": Agg("sum", col("amount"))}),
        [("nation", False), ("o_year", True)],
    )
    return _run(plan, ctx)


def q10(db, ctx):
    """Returned-item reporting: top 20 customers by lost revenue."""
    start = "1993-10-01"
    end = date_add(start, months=3)
    orders = Scan(
        "orders",
        predicate=(col("o_orderdate") >= lit(start)) & (col("o_orderdate") < lit(end)),
        tag="q10.orders",
    )
    lines = Scan(
        "lineitem", predicate=col("l_returnflag") == lit("R"), tag="q10.lineitem"
    )
    joined = HashJoin(
        HashJoin(
            HashJoin(orders, lines, ["o_orderkey"], ["l_orderkey"], tag="q10.join_line"),
            Scan("customer"),
            ["o_custkey"],
            ["c_custkey"],
            tag="q10.join_cust",
        ),
        Scan("nation"),
        ["c_nationkey"],
        ["n_nationkey"],
    )
    plan = Limit(
        Sort(
            Aggregate(
                joined,
                keys=[
                    "c_custkey",
                    "c_name",
                    "c_acctbal",
                    "c_phone",
                    "n_name",
                    "c_address",
                    "c_comment",
                ],
                aggs={"revenue": Agg("sum", REVENUE)},
                tag="q10.agg",
            ),
            [("revenue", True)],
        ),
        20,
    )
    return _run(plan, ctx)


def q11(db, ctx):
    """Important stock identification in GERMANY (HAVING vs a global sum)."""
    german_ps = HashJoin(
        Scan("partsupp"),
        Project(
            HashJoin(
                Scan("supplier"),
                Scan("nation", predicate=col("n_name") == lit("GERMANY")),
                ["s_nationkey"],
                ["n_nationkey"],
            ),
            {"s_suppkey": "s_suppkey"},
        ),
        ["ps_suppkey"],
        ["s_suppkey"],
        tag="q11.german_ps",
    )
    value = col("ps_supplycost") * col("ps_availqty")
    total_rows = _run(
        Aggregate(german_ps, keys=[], aggs={"total": Agg("sum", value)}, tag="q11.total"),
        ctx,
    )
    total = total_rows[0]["total"] or 0.0
    # The spec's threshold FRACTION is 0.0001 / SF; infer SF from table size.
    sf = max(ctx.db.table("supplier").row_count / 10_000.0, 1e-9)
    threshold = total * (0.0001 / sf)
    plan = Sort(
        Filter(
            Aggregate(
                german_ps,
                keys=["ps_partkey"],
                aggs={"value": Agg("sum", value)},
                tag="q11.by_part",
            ),
            col("value") > lit(threshold),
        ),
        [("value", True)],
    )
    return _run(plan, ctx)


def q12(db, ctx):
    """Shipping mode / order priority: lineitem-orders join with CASE sums."""
    start = "1994-01-01"
    end = date_add(start, years=1)
    lines = Scan(
        "lineitem",
        predicate=(
            col("l_shipmode").in_(["MAIL", "SHIP"])
            & (col("l_commitdate") < col("l_receiptdate"))
            & (col("l_shipdate") < col("l_commitdate"))
            & (col("l_receiptdate") >= lit(start))
            & (col("l_receiptdate") < lit(end))
        ),
        tag="q12.lineitem",
    )
    joined = HashJoin(
        lines, Scan("orders"), ["l_orderkey"], ["o_orderkey"], tag="q12.join"
    )
    urgent = col("o_orderpriority").in_(["1-URGENT", "2-HIGH"])
    plan = Sort(
        Aggregate(
            joined,
            keys=["l_shipmode"],
            aggs={
                "high_line_count": Agg("sum", case([(urgent, 1)], default=0)),
                "low_line_count": Agg("sum", case([(~urgent, 1)], default=0)),
            },
        ),
        [("l_shipmode", False)],
    )
    return _run(plan, ctx)


def q13(db, ctx):
    """Customer order-count distribution (left outer join + double group-by)."""
    orders = Scan(
        "orders",
        predicate=col("o_comment").not_like("%special%requests%"),
        columns=["o_orderkey", "o_custkey"],
        tag="q13.orders",
    )
    # COUNT(o_orderkey) ignores the NULLs produced by the outer join, so the
    # per-customer count sums an is-not-null indicator instead.
    not_null = case([(col("o_orderkey") == lit(None), 0)], default=1)
    per_customer = Aggregate(
        HashJoin(
            Scan("customer", columns=["c_custkey"]),
            orders,
            ["c_custkey"],
            ["o_custkey"],
            how="left",
            tag="q13.join",
        ),
        keys=["c_custkey"],
        aggs={"c_count": Agg("sum", not_null)},
        tag="q13.per_customer",
    )
    plan = Sort(
        Aggregate(per_customer, keys=["c_count"], aggs={"custdist": Agg("count")}),
        [("custdist", True), ("c_count", True)],
    )
    return _run(plan, ctx)


def q14(db, ctx):
    """Promotion effect: lineitem-part join, CASE ratio (like Q19's shape)."""
    start = "1995-09-01"
    end = date_add(start, months=1)
    lines = Scan(
        "lineitem",
        predicate=(col("l_shipdate") >= lit(start)) & (col("l_shipdate") < lit(end)),
        tag="q14.lineitem",
    )
    joined = HashJoin(lines, Scan("part"), ["l_partkey"], ["p_partkey"], tag="q14.join")
    sums = _run(
        Aggregate(
            joined,
            keys=[],
            aggs={
                "promo": Agg(
                    "sum", case([(col("p_type").like("PROMO%"), REVENUE)], default=0.0)
                ),
                "total": Agg("sum", REVENUE),
            },
        ),
        ctx,
    )
    promo = sums[0]["promo"] or 0.0
    total = sums[0]["total"] or 0.0
    share = 100.0 * promo / total if total else 0.0
    return [{"promo_revenue": share}]


def q15(db, ctx):
    """Top supplier: revenue view, global MAX, then join back to supplier."""
    start = "1996-01-01"
    end = date_add(start, months=3)
    revenue_view = Aggregate(
        Scan(
            "lineitem",
            predicate=(col("l_shipdate") >= lit(start)) & (col("l_shipdate") < lit(end)),
            tag="q15.lineitem",
        ),
        keys=["l_suppkey"],
        aggs={"total_revenue": Agg("sum", REVENUE)},
        tag="q15.revenue",
    )
    revenue_rows = _run(revenue_view, ctx)
    if not revenue_rows:
        return []
    max_revenue = max(r["total_revenue"] for r in revenue_rows)
    top = Filter(Rows(revenue_rows), col("total_revenue") >= lit(max_revenue))
    plan = Sort(
        Project(
            HashJoin(top, Scan("supplier"), ["l_suppkey"], ["s_suppkey"]),
            {
                "s_suppkey": "s_suppkey",
                "s_name": "s_name",
                "s_address": "s_address",
                "s_phone": "s_phone",
                "total_revenue": "total_revenue",
            },
        ),
        [("s_suppkey", False)],
    )
    return _run(plan, ctx)


def q16(db, ctx):
    """Parts/supplier relationship: anti-join against complaint suppliers."""
    complainers = Scan(
        "supplier",
        predicate=col("s_comment").like("%Customer%Complaints%"),
        columns=["s_suppkey"],
        tag="q16.complainers",
    )
    parts = Scan(
        "part",
        predicate=(
            (col("p_brand") != lit("Brand#45"))
            & col("p_type").not_like("MEDIUM POLISHED%")
            & col("p_size").in_([49, 14, 23, 45, 19, 3, 36, 9])
        ),
        tag="q16.parts",
    )
    joined = HashJoin(
        HashJoin(
            Scan("partsupp"), parts, ["ps_partkey"], ["p_partkey"], tag="q16.join"
        ),
        complainers,
        ["ps_suppkey"],
        ["s_suppkey"],
        how="anti",
        tag="q16.anti",
    )
    plan = Sort(
        Aggregate(
            joined,
            keys=["p_brand", "p_type", "p_size"],
            aggs={"supplier_cnt": Agg("count_distinct", col("ps_suppkey"))},
            tag="q16.agg",
        ),
        [("supplier_cnt", True), ("p_brand", False), ("p_type", False), ("p_size", False)],
    )
    return _run(plan, ctx)


def q17(db, ctx):
    """Small-quantity-order revenue: correlated AVG(l_quantity) per part."""
    parts = Scan(
        "part",
        predicate=(col("p_brand") == lit("Brand#23"))
        & (col("p_container") == lit("MED BOX")),
        columns=["p_partkey"],
        tag="q17.parts",
    )
    lines_of_parts = HashJoin(
        Scan("lineitem", tag="q17.lineitem"),
        parts,
        ["l_partkey"],
        ["p_partkey"],
        tag="q17.join",
    )
    avg_qty = Aggregate(
        lines_of_parts,
        keys=["l_partkey"],
        aggs={"avg_qty": Agg("avg", col("l_quantity"))},
        tag="q17.avg",
    )
    qualified = Filter(
        HashJoin(lines_of_parts, avg_qty, ["l_partkey"], ["l_partkey"]),
        col("l_quantity") < lit(0.2) * col("avg_qty"),
    )
    total = _run(
        Aggregate(qualified, keys=[], aggs={"s": Agg("sum", col("l_extendedprice"))}), ctx
    )
    value = total[0]["s"] or 0.0
    return [{"avg_yearly": value / 7.0}]


def q18(db, ctx):
    """Large-volume customers: orders whose lineitems sum above 300 units."""
    big_orders = Filter(
        Aggregate(
            Scan("lineitem", tag="q18.lineitem"),
            keys=["l_orderkey"],
            aggs={"sum_qty": Agg("sum", col("l_quantity"))},
            tag="q18.per_order",
        ),
        col("sum_qty") > lit(300),
        tag="q18.big",
    )
    joined = HashJoin(
        HashJoin(
            Scan("orders"), big_orders, ["o_orderkey"], ["l_orderkey"], tag="q18.join_big"
        ),
        Scan("customer"),
        ["o_custkey"],
        ["c_custkey"],
        tag="q18.join_cust",
    )
    plan = Limit(
        Sort(
            Project(
                joined,
                {
                    "c_name": "c_name",
                    "c_custkey": "c_custkey",
                    "o_orderkey": "o_orderkey",
                    "o_orderdate": "o_orderdate",
                    "o_totalprice": "o_totalprice",
                    "sum_qty": "sum_qty",
                },
            ),
            [("o_totalprice", True), ("o_orderdate", False)],
        ),
        100,
    )
    return _run(plan, ctx)


def q19(db, ctx):
    """Discounted revenue: the OR-of-ANDs predicate analysed in §3.3.4.1."""
    lines = Scan(
        "lineitem",
        predicate=(
            col("l_shipmode").in_(["AIR", "AIR REG"])
            & (col("l_shipinstruct") == lit("DELIVER IN PERSON"))
        ),
        tag="q19.lineitem",
    )
    joined = HashJoin(
        lines, Scan("part", tag="q19.part"), ["l_partkey"], ["p_partkey"], tag="q19.join"
    )
    branch1 = (
        (col("p_brand") == lit("Brand#12"))
        & col("p_container").in_(["SM CASE", "SM BOX", "SM PACK", "SM PKG"])
        & col("l_quantity").between(1, 11)
        & col("p_size").between(1, 5)
    )
    branch2 = (
        (col("p_brand") == lit("Brand#23"))
        & col("p_container").in_(["MED BAG", "MED BOX", "MED PKG", "MED PACK"])
        & col("l_quantity").between(10, 20)
        & col("p_size").between(1, 10)
    )
    branch3 = (
        (col("p_brand") == lit("Brand#34"))
        & col("p_container").in_(["LG CASE", "LG BOX", "LG PACK", "LG PKG"])
        & col("l_quantity").between(20, 30)
        & col("p_size").between(1, 15)
    )
    plan = Aggregate(
        Filter(joined, branch1 | branch2 | branch3, tag="q19.filtered"),
        keys=[],
        aggs={"revenue": Agg("sum", REVENUE)},
    )
    return _run(plan, ctx)


def q20(db, ctx):
    """Potential part promotion: nested semi-joins over forest% parts."""
    start = "1994-01-01"
    end = date_add(start, years=1)
    forest_parts = Scan(
        "part", predicate=col("p_name").like("forest%"), columns=["p_partkey"],
        tag="q20.parts",
    )
    shipped = Aggregate(
        HashJoin(
            Scan(
                "lineitem",
                predicate=(col("l_shipdate") >= lit(start)) & (col("l_shipdate") < lit(end)),
                tag="q20.lineitem",
            ),
            forest_parts,
            ["l_partkey"],
            ["p_partkey"],
            tag="q20.join_part",
        ),
        keys=["l_partkey", "l_suppkey"],
        aggs={"qty": Agg("sum", col("l_quantity"))},
        tag="q20.shipped",
    )
    available = Filter(
        HashJoin(
            HashJoin(
                Scan("partsupp"),
                forest_parts,
                ["ps_partkey"],
                ["p_partkey"],
                how="semi",
                tag="q20.ps",
            ),
            shipped,
            ["ps_partkey", "ps_suppkey"],
            ["l_partkey", "l_suppkey"],
        ),
        col("ps_availqty") > lit(0.5) * col("qty"),
        tag="q20.available",
    )
    suppliers = HashJoin(
        HashJoin(
            Scan("supplier"),
            Scan("nation", predicate=col("n_name") == lit("CANADA")),
            ["s_nationkey"],
            ["n_nationkey"],
        ),
        available,
        ["s_suppkey"],
        ["ps_suppkey"],
        how="semi",
        tag="q20.semi",
    )
    plan = Sort(
        Project(suppliers, {"s_name": "s_name", "s_address": "s_address"}),
        [("s_name", False)],
    )
    return _run(plan, ctx)


def q21(db, ctx):
    """Suppliers who kept orders waiting (EXISTS + NOT EXISTS on lineitem)."""
    late = col("l_receiptdate") > col("l_commitdate")
    # Per-order supplier statistics replace the correlated EXISTS pair.
    all_supps = Aggregate(
        Scan("lineitem", columns=["l_orderkey", "l_suppkey"], tag="q21.lineitem"),
        keys=["l_orderkey"],
        aggs={"n_supps": Agg("count_distinct", col("l_suppkey"))},
        tag="q21.all_supps",
    )
    late_supps = Aggregate(
        Scan("lineitem", predicate=late, columns=["l_orderkey", "l_suppkey"]),
        keys=["l_orderkey"],
        aggs={
            "n_late": Agg("count_distinct", col("l_suppkey")),
            "late_supp": Agg("min", col("l_suppkey")),
        },
        tag="q21.late_supps",
    )
    l1 = Scan("lineitem", predicate=late, tag="q21.l1")
    f_orders = Scan(
        "orders", predicate=col("o_orderstatus") == lit("F"), columns=["o_orderkey"],
        tag="q21.orders",
    )
    joined = HashJoin(
        HashJoin(
            HashJoin(l1, f_orders, ["l_orderkey"], ["o_orderkey"], how="semi",
                     tag="q21.semi"),
            all_supps,
            ["l_orderkey"],
            ["l_orderkey"],
            tag="q21.join_all",
        ),
        late_supps,
        ["l_orderkey"],
        ["l_orderkey"],
        tag="q21.join_late",
    )
    # EXISTS other supplier on the order; NOT EXISTS other *late* supplier.
    qualified = Filter(
        joined,
        (col("n_supps") > lit(1))
        & (col("n_late") == lit(1))
        & (col("late_supp") == col("l_suppkey")),
        tag="q21.qualified",
    )
    saudi = HashJoin(
        Scan("supplier"),
        Scan("nation", predicate=col("n_name") == lit("SAUDI ARABIA")),
        ["s_nationkey"],
        ["n_nationkey"],
    )
    with_supp = HashJoin(qualified, saudi, ["l_suppkey"], ["s_suppkey"], tag="q21.join_supp")
    plan = Limit(
        Sort(
            Aggregate(with_supp, keys=["s_name"], aggs={"numwait": Agg("count")}),
            [("numwait", True), ("s_name", False)],
        ),
        100,
    )
    return _run(plan, ctx)


def q22(db, ctx):
    """Global sales opportunity: phone-prefix filter + anti-join + AVG subquery."""
    codes = ["13", "31", "23", "29", "30", "18", "17"]
    cntrycode = col("c_phone").substr(1, 2)
    candidates = Scan(
        "customer", predicate=cntrycode.in_(codes), tag="q22.candidates"
    )
    avg_rows = _run(
        Aggregate(
            Filter(candidates, col("c_acctbal") > lit(0.0)),
            keys=[],
            aggs={"avg_bal": Agg("avg", col("c_acctbal"))},
            tag="q22.avg",
        ),
        ctx,
    )
    avg_bal = avg_rows[0]["avg_bal"] or 0.0
    rich = Filter(candidates, col("c_acctbal") > lit(avg_bal), tag="q22.rich")
    no_orders = HashJoin(
        rich,
        Scan("orders", columns=["o_custkey"], tag="q22.orders"),
        ["c_custkey"],
        ["o_custkey"],
        how="anti",
        tag="q22.anti",
    )
    plan = Sort(
        Aggregate(
            Project(no_orders, {"cntrycode": cntrycode, "c_acctbal": "c_acctbal"}),
            keys=["cntrycode"],
            aggs={"numcust": Agg("count"), "totacctbal": Agg("sum", col("c_acctbal"))},
        ),
        [("cntrycode", False)],
    )
    return _run(plan, ctx)


QUERIES = {
    1: q01, 2: q02, 3: q03, 4: q04, 5: q05, 6: q06, 7: q07, 8: q08,
    9: q09, 10: q10, 11: q11, 12: q12, 13: q13, 14: q14, 15: q15, 16: q16,
    17: q17, 18: q18, 19: q19, 20: q20, 21: q21, 22: q22,
}

QUERY_NUMBERS = sorted(QUERIES)


def run_query(number: int, db, ctx: ExecutionContext | None = None) -> list[dict]:
    """Execute one TPC-H query by number and return its answer rows."""
    if number not in QUERIES:
        raise KeyError(f"TPC-H has queries 1..22; got {number}")
    if ctx is None:
        ctx = ExecutionContext(db)
    return QUERIES[number](db, ctx)

"""A deterministic port of the TPC-H ``dbgen`` data generator.

The generator follows the specification's structural rules — sparse
orderkeys (8 of every 32), the partsupp supplier-assignment formula, the
retail-price polynomial, date windows around CURRENTDATE = 1995-06-17 — while
simplifying the text grammar to a seeded word-salad that preserves the
selectivity hooks the queries grep for (``%green%``, ``%special%requests%``,
``%Customer%Complaints%``).

Section 3.3.1 of the paper notes that stock dbgen's 32-bit RANDOM overflows
at SF 16000; like the authors we generate keys with a 64-bit generator
(:class:`~repro.common.rng.TpchRandom64`), and
:func:`demonstrate_random_overflow` reproduces the original bug for tests.
"""

from __future__ import annotations

from datetime import date, timedelta

from repro.common.rng import SeedStream, TpchRandom, TpchRandom64
from repro.relational.schema import Database, TableData
from repro.tpch import text
from repro.tpch.schema import SCHEMAS, row_count, sparse_orderkey

START_DATE = "1992-01-01"
CURRENT_DATE = "1995-06-17"
END_DATE = "1998-12-01"

_BASE = date(1992, 1, 1)
_TOTAL_DAYS = (date(1998, 12, 1) - _BASE).days
# o_orderdate is drawn on [STARTDATE, ENDDATE - 151 days].
_MAX_ORDERDATE_OFFSET = _TOTAL_DAYS - 151

# Precomputed ISO strings for every day offset used anywhere in generation.
_DATES: list[str] = [
    (_BASE + timedelta(days=off)).isoformat() for off in range(_TOTAL_DAYS + 152)
]

_ALNUM = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,"


def retail_price(partkey: int) -> float:
    """The spec's deterministic p_retailprice polynomial."""
    return (90000 + ((partkey // 10) % 20001) + 100 * (partkey % 1000)) / 100.0


def partsupp_suppkey(partkey: int, slot: int, supplier_count: int) -> int:
    """Supplier for a (part, slot) pair — the spec's interleaving formula.

    Every part has 4 supplier slots; the formula spreads them so each
    supplier serves roughly ``4 * parts / suppliers`` parts.
    """
    s = supplier_count
    return (partkey + slot * (s // 4 + (partkey - 1) // s)) % s + 1


class DbGen:
    """Generates a TPC-H database at an arbitrary (fractional) scale factor."""

    def __init__(self, scale_factor: float, seed: int = 19620718):
        if scale_factor <= 0:
            raise ValueError("scale factor must be positive")
        self.scale_factor = scale_factor
        self.seeds = SeedStream(seed)
        self.customers = row_count("customer", scale_factor)
        self.orders = row_count("orders", scale_factor)
        self.parts = row_count("part", scale_factor)
        self.suppliers = max(4, row_count("supplier", scale_factor))

    # -- text helpers ---------------------------------------------------------

    def _words(self, rng: TpchRandom64, low: int, high: int) -> str:
        count = rng.random_int(low, high)
        return " ".join(rng.choice(text.COMMENT_WORDS) for _ in range(count))

    def _address(self, rng: TpchRandom64) -> str:
        length = rng.random_int(10, 40)
        return "".join(rng.choice(_ALNUM) for _ in range(length)).strip()

    def _phone(self, rng: TpchRandom64, nationkey: int) -> str:
        return (
            f"{nationkey + 10:02d}-{rng.random_int(100, 999)}"
            f"-{rng.random_int(100, 999)}-{rng.random_int(1000, 9999)}"
        )

    # -- fixed tables ----------------------------------------------------------

    def gen_region(self) -> TableData:
        rng = self.seeds.rng_for("region")
        table = TableData("region", SCHEMAS["region"])
        for key, name in enumerate(text.REGIONS):
            table.append(
                {"r_regionkey": key, "r_name": name, "r_comment": self._words(rng, 3, 8)}
            )
        return table

    def gen_nation(self) -> TableData:
        rng = self.seeds.rng_for("nation")
        table = TableData("nation", SCHEMAS["nation"])
        for key, (name, regionkey) in enumerate(text.NATIONS):
            table.append(
                {
                    "n_nationkey": key,
                    "n_name": name,
                    "n_regionkey": regionkey,
                    "n_comment": self._words(rng, 3, 8),
                }
            )
        return table

    # -- scaling tables ----------------------------------------------------------

    def gen_supplier(self) -> TableData:
        rng = self.seeds.rng_for("supplier")
        table = TableData("supplier", SCHEMAS["supplier"])
        # The spec plants 5 "Customer ... Complaints" and 5 "Customer ...
        # Recommends" comments per 10,000 suppliers; at fractional scale we
        # keep at least one of each so Q16's anti-join stays exercised.
        planted = max(1, round(self.suppliers * 5 / 10_000))
        complain = set()
        recommend = set()
        while len(complain) < planted:
            complain.add(rng.random_int(1, self.suppliers))
        while len(recommend) < planted:
            candidate = rng.random_int(1, self.suppliers)
            if candidate not in complain:
                recommend.add(candidate)
        for key in range(1, self.suppliers + 1):
            nationkey = rng.random_int(0, 24)
            comment = self._words(rng, 5, 10)
            if key in complain:
                comment = f"{comment} Customer wishes Complaints {comment[:10]}"
            elif key in recommend:
                comment = f"{comment} Customer truly Recommends {comment[:10]}"
            table.append(
                {
                    "s_suppkey": key,
                    "s_name": f"Supplier#{key:09d}",
                    "s_address": self._address(rng),
                    "s_nationkey": nationkey,
                    "s_phone": self._phone(rng, nationkey),
                    "s_acctbal": rng.random_int(-99999, 999999) / 100.0,
                    "s_comment": comment,
                }
            )
        return table

    def gen_customer(self) -> TableData:
        rng = self.seeds.rng_for("customer")
        table = TableData("customer", SCHEMAS["customer"])
        for key in range(1, self.customers + 1):
            nationkey = rng.random_int(0, 24)
            table.append(
                {
                    "c_custkey": key,
                    "c_name": f"Customer#{key:09d}",
                    "c_address": self._address(rng),
                    "c_nationkey": nationkey,
                    "c_phone": self._phone(rng, nationkey),
                    "c_acctbal": rng.random_int(-99999, 999999) / 100.0,
                    "c_mktsegment": rng.choice(text.SEGMENTS),
                    "c_comment": self._words(rng, 6, 12),
                }
            )
        return table

    def gen_part(self) -> TableData:
        rng = self.seeds.rng_for("part")
        table = TableData("part", SCHEMAS["part"])
        types = text.all_part_types()
        containers = text.all_containers()
        for key in range(1, self.parts + 1):
            words = []
            while len(words) < 5:
                word = rng.choice(text.P_NAME_WORDS)
                if word not in words:
                    words.append(word)
            mfgr = rng.random_int(1, 5)
            table.append(
                {
                    "p_partkey": key,
                    "p_name": " ".join(words),
                    "p_mfgr": f"Manufacturer#{mfgr}",
                    "p_brand": f"Brand#{mfgr}{rng.random_int(1, 5)}",
                    "p_type": rng.choice(types),
                    "p_size": rng.random_int(1, 50),
                    "p_container": rng.choice(containers),
                    "p_retailprice": retail_price(key),
                    "p_comment": self._words(rng, 2, 5),
                }
            )
        return table

    def gen_partsupp(self) -> TableData:
        rng = self.seeds.rng_for("partsupp")
        table = TableData("partsupp", SCHEMAS["partsupp"])
        for partkey in range(1, self.parts + 1):
            for slot in range(4):
                table.append(
                    {
                        "ps_partkey": partkey,
                        "ps_suppkey": partsupp_suppkey(partkey, slot, self.suppliers),
                        "ps_availqty": rng.random_int(1, 9999),
                        "ps_supplycost": rng.random_int(100, 100_000) / 100.0,
                        "ps_comment": self._words(rng, 10, 20),
                    }
                )
        return table

    def gen_orders_and_lineitem(self) -> tuple[TableData, TableData]:
        """Orders and lineitem are generated together (shared dates/status)."""
        rng = self.seeds.rng_for("orders")
        orders = TableData("orders", SCHEMAS["orders"])
        lineitem = TableData("lineitem", SCHEMAS["lineitem"])
        clerks = max(1, int(1000 * self.scale_factor))
        for index in range(1, self.orders + 1):
            orderkey = sparse_orderkey(index)
            # Only customers with custkey not divisible by 3 place orders.
            while True:
                custkey = rng.random_int(1, self.customers)
                if custkey % 3 != 0:
                    break
            date_offset = rng.random_int(0, _MAX_ORDERDATE_OFFSET)
            orderdate = _DATES[date_offset]

            total = 0.0
            statuses = []
            line_count = rng.random_int(1, 7)
            for linenumber in range(1, line_count + 1):
                partkey = rng.random_int(1, self.parts)
                suppkey = partsupp_suppkey(partkey, rng.random_int(0, 3), self.suppliers)
                quantity = float(rng.random_int(1, 50))
                extended = quantity * retail_price(partkey)
                discount = rng.random_int(0, 10) / 100.0
                tax = rng.random_int(0, 8) / 100.0
                ship_offset = date_offset + rng.random_int(1, 121)
                commit_offset = date_offset + rng.random_int(30, 90)
                receipt_offset = ship_offset + rng.random_int(1, 30)
                shipdate = _DATES[ship_offset]
                receiptdate = _DATES[receipt_offset]
                if receiptdate <= CURRENT_DATE:
                    returnflag = "R" if rng.random_int(0, 1) else "A"
                else:
                    returnflag = "N"
                linestatus = "O" if shipdate > CURRENT_DATE else "F"
                statuses.append(linestatus)
                total += extended * (1.0 + tax) * (1.0 - discount)
                comment = self._words(rng, 2, 6)
                lineitem.append(
                    {
                        "l_orderkey": orderkey,
                        "l_partkey": partkey,
                        "l_suppkey": suppkey,
                        "l_linenumber": linenumber,
                        "l_quantity": quantity,
                        "l_extendedprice": extended,
                        "l_discount": discount,
                        "l_tax": tax,
                        "l_returnflag": returnflag,
                        "l_linestatus": linestatus,
                        "l_shipdate": shipdate,
                        "l_commitdate": _DATES[commit_offset],
                        "l_receiptdate": receiptdate,
                        "l_shipinstruct": rng.choice(text.INSTRUCTIONS),
                        "l_shipmode": rng.choice(text.MODES),
                        "l_comment": comment,
                    }
                )

            if all(s == "F" for s in statuses):
                orderstatus = "F"
            elif all(s == "O" for s in statuses):
                orderstatus = "O"
            else:
                orderstatus = "P"
            comment = self._words(rng, 4, 10)
            # Plant the Q13 needle at the spec's ~5% effective rate.
            if rng.random_int(1, 100) <= 5:
                comment = f"{comment} special handling requests {comment[:8]}"
            orders.append(
                {
                    "o_orderkey": orderkey,
                    "o_custkey": custkey,
                    "o_orderstatus": orderstatus,
                    "o_totalprice": round(total, 2),
                    "o_orderdate": orderdate,
                    "o_orderpriority": rng.choice(text.PRIORITIES),
                    "o_clerk": f"Clerk#{rng.random_int(1, clerks):09d}",
                    "o_shippriority": 0,
                    "o_comment": comment,
                }
            )
        return orders, lineitem

    def generate(self) -> Database:
        """Generate the full eight-table database."""
        db = Database()
        db.add(self.gen_region())
        db.add(self.gen_nation())
        db.add(self.gen_supplier())
        db.add(self.gen_customer())
        db.add(self.gen_part())
        db.add(self.gen_partsupp())
        orders, lineitem = self.gen_orders_and_lineitem()
        db.add(orders)
        db.add(lineitem)
        return db


def demonstrate_random_overflow(scale_factor: int, samples: int = 2000) -> list[int]:
    """Reproduce the paper's dbgen bug: partkeys drawn with 32-bit RANDOM.

    Returns the sampled keys; at SF 16000 some are negative (the overflow the
    authors fixed by switching to RANDOM64).
    """
    rng = TpchRandom(seed=902)
    high = scale_factor * 200_000
    return [rng.random_int(1, high) for _ in range(samples)]

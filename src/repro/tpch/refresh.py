"""TPC-H refresh functions RF1 (insert) and RF2 (delete).

The paper skipped both: "the Hive version that we used does not support
deletes and inserts into existing tables or partitions (the newer Hive
versions 0.8.0 and 0.8.1 do support INSERT INTO statements)".  This module
implements the refresh functions for real against the kernel database, and
models engine support the way the paper describes it: Hive 0.7 refuses,
Hive 0.8+ accepts inserts (still no deletes), PDW accepts both.

Per the TPC-H spec, each refresh stream touches SF * 1500 orders (0.1% of
the orders table); RF1 draws its orderkeys from the sparse key space the
generator left unused (offsets 8..11 of each 32-key block), so refreshed
keys never collide with loaded ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError, StorageError
from repro.relational.schema import Database
from repro.tpch.dbgen import DbGen


class UnsupportedRefresh(ReproError):
    """The engine version cannot execute this refresh function."""


def refresh_order_count(scale_factor: float) -> int:
    """Orders touched per refresh stream: SF * 1500 (spec clause 2.27)."""
    return max(1, int(round(scale_factor * 1500)))


def refresh_orderkey(index: int) -> int:
    """Orderkeys for RF1: offsets 8..11 of each 32-key block (never loaded)."""
    if index < 1:
        raise ValueError("refresh index is 1-based")
    block, offset = divmod(index - 1, 4)
    return block * 32 + 8 + offset + 1


@dataclass
class RefreshResult:
    """Rows touched by one refresh function execution."""

    orders: int
    lineitems: int


class RefreshFunctions:
    """Executes RF1/RF2 against a generated database."""

    def __init__(self, db: Database, generator: DbGen):
        self.db = db
        self.generator = generator
        self._next_rf1_index = 1

    def rf1(self, stream: int = 1) -> RefreshResult:
        """Insert new orders (and their lineitems) into the database."""
        count = refresh_order_count(self.generator.scale_factor)
        rng = self.generator.seeds.rng_for("rf1", stream)
        orders = self.db.table("orders")
        lineitem = self.db.table("lineitem")
        existing = {r["o_orderkey"] for r in orders.rows}

        template_orders = orders.rows[: count]
        inserted_lines = 0
        for i in range(count):
            orderkey = refresh_orderkey(self._next_rf1_index)
            self._next_rf1_index += 1
            if orderkey in existing:
                raise StorageError(f"refresh orderkey {orderkey} collides")
            base = dict(template_orders[i % len(template_orders)])
            base["o_orderkey"] = orderkey
            base["o_comment"] = f"refresh stream {stream}"
            orders.append(base)
            for linenumber in range(1, rng.random_int(1, 7) + 1):
                partkey = rng.random_int(1, self.generator.parts)
                lineitem.append(
                    {
                        "l_orderkey": orderkey,
                        "l_partkey": partkey,
                        "l_suppkey": 1 + partkey % self.generator.suppliers,
                        "l_linenumber": linenumber,
                        "l_quantity": float(rng.random_int(1, 50)),
                        "l_extendedprice": 1000.0,
                        "l_discount": 0.05,
                        "l_tax": 0.04,
                        "l_returnflag": "N",
                        "l_linestatus": "O",
                        "l_shipdate": "1998-09-01",
                        "l_commitdate": "1998-09-15",
                        "l_receiptdate": "1998-09-20",
                        "l_shipinstruct": "NONE",
                        "l_shipmode": "MAIL",
                        "l_comment": f"refresh stream {stream}",
                    }
                )
                inserted_lines += 1
        return RefreshResult(orders=count, lineitems=inserted_lines)

    def rf2(self, stream: int = 1) -> RefreshResult:
        """Delete the oldest loaded orders (and their lineitems)."""
        count = refresh_order_count(self.generator.scale_factor)
        orders = self.db.table("orders")
        lineitem = self.db.table("lineitem")
        victims = {r["o_orderkey"] for r in orders.rows[:count]}
        before_lines = lineitem.row_count
        orders.rows[:] = [r for r in orders.rows if r["o_orderkey"] not in victims]
        lineitem.rows[:] = [
            r for r in lineitem.rows if r["l_orderkey"] not in victims
        ]
        return RefreshResult(
            orders=len(victims), lineitems=before_lines - lineitem.row_count
        )


@dataclass(frozen=True)
class EngineRefreshSupport:
    """What an engine version can do, per the paper's Section 3.3.1."""

    name: str
    supports_insert: bool
    supports_delete: bool

    def check(self, function: str) -> None:
        if function == "rf1" and not self.supports_insert:
            raise UnsupportedRefresh(
                f"{self.name} does not support INSERT INTO existing tables"
            )
        if function == "rf2" and not self.supports_delete:
            raise UnsupportedRefresh(f"{self.name} does not support DELETE")


HIVE_07 = EngineRefreshSupport("Hive 0.7.1", supports_insert=False, supports_delete=False)
HIVE_08 = EngineRefreshSupport("Hive 0.8.1", supports_insert=True, supports_delete=False)
PDW = EngineRefreshSupport("SQL Server PDW", supports_insert=True, supports_delete=True)

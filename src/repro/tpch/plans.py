"""Declarative physical-plan specs for the 22 queries, per engine.

A :class:`QuerySpec` lists the scans, the join sequence (with per-engine
overrides where the paper documents different orders — Q5), and the
aggregation steps.  Refs name either a scan (by its filtered-volume tag, or
the bare table name when unfiltered) or a prior join/agg output tag; every
tag is measured by the calibration run in :mod:`repro.tpch.volumes`.

The Hive model lowers a spec to MapReduce jobs in *as-written* order with
map-join attempts only where the Hive TPC-H scripts hint them; the PDW model
plans data movement (local / shuffle / replicate) over the same sequence,
which is where the paper locates most of the performance gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import PlanError


@dataclass(frozen=True)
class ScanSpec:
    """A base-table scan; ``out`` names the filtered/projected volume tag."""

    table: str
    out: Optional[str] = None

    @property
    def ref(self) -> str:
        return self.out if self.out is not None else self.table


@dataclass(frozen=True)
class JoinSpec:
    """One equi-join between two refs."""

    left: str
    right: str
    left_key: str
    right_key: str
    out: Optional[str] = None
    try_map_join: bool = False  # the Hive scripts hint a map-side join here
    bucket_join_ok: bool = False  # both sides bucketed on the join key


@dataclass(frozen=True)
class AggSpec:
    """A grouping/aggregation step over a ref."""

    input: str
    out: Optional[str] = None


@dataclass(frozen=True)
class QuerySpec:
    """Everything the engine models need to cost one TPC-H query."""

    number: int
    scans: tuple[ScanSpec, ...]
    joins: tuple[JoinSpec, ...] = ()
    aggs: tuple[AggSpec, ...] = ()
    hive_joins: Optional[tuple[JoinSpec, ...]] = None  # as-written order override
    has_order_by: bool = True
    hive_materialize_scans: tuple[str, ...] = ()  # sub-query splits (Q22)
    hive_extra_jobs: int = 0  # additional small MR jobs the scripts run
    hive_fs_jobs: int = 0  # filesystem consolidation jobs (50 s each)
    pdw_volume_overrides: dict = field(default_factory=dict)  # ref -> tag

    def scan_for(self, ref: str) -> Optional[ScanSpec]:
        for scan in self.scans:
            if scan.ref == ref:
                return scan
        return None

    def effective_hive_joins(self) -> tuple[JoinSpec, ...]:
        return self.hive_joins if self.hive_joins is not None else self.joins

    def all_refs(self) -> set[str]:
        refs = set()
        for join in list(self.joins) + list(self.hive_joins or ()):
            refs.add(join.left)
            refs.add(join.right)
            if join.out:
                refs.add(join.out)
        for agg in self.aggs:
            refs.add(agg.input)
            if agg.out:
                refs.add(agg.out)
        return refs


def _spec(number, scans, joins=(), aggs=(), **kwargs) -> QuerySpec:
    return QuerySpec(number=number, scans=tuple(scans), joins=tuple(joins),
                     aggs=tuple(aggs), **kwargs)


QUERY_SPECS: dict[int, QuerySpec] = {}

QUERY_SPECS[1] = _spec(
    1,
    scans=[ScanSpec("lineitem", "q1.scan")],
    aggs=[AggSpec("q1.scan", "q1.agg")],
)

QUERY_SPECS[2] = _spec(
    2,
    scans=[
        ScanSpec("nation"),
        ScanSpec("region"),
        ScanSpec("supplier"),
        ScanSpec("partsupp"),
        ScanSpec("part", "q2.parts"),
    ],
    joins=[
        JoinSpec("nation", "region", "n_regionkey", "r_regionkey", "q2.nr",
                 try_map_join=True),
        JoinSpec("supplier", "q2.nr", "s_nationkey", "n_nationkey", "q2.supp",
                 try_map_join=True),
        JoinSpec("q2.supp", "partsupp", "s_suppkey", "ps_suppkey", "q2.supp_costs"),
        JoinSpec("q2.supp_costs", "q2.parts", "ps_partkey", "p_partkey", "q2.join",
                 try_map_join=True),
        JoinSpec("q2.join", "q2.min_costs", "ps_partkey", "ps_partkey", "q2.best"),
    ],
    aggs=[AggSpec("q2.supp_costs", "q2.min_costs")],
)

QUERY_SPECS[3] = _spec(
    3,
    scans=[
        ScanSpec("orders", "q3.orders"),
        ScanSpec("customer", "q3.customer"),
        ScanSpec("lineitem", "q3.lineitem"),
    ],
    joins=[
        JoinSpec("q3.orders", "q3.customer", "o_custkey", "c_custkey", "q3.join_cust"),
        JoinSpec("q3.join_cust", "q3.lineitem", "o_orderkey", "l_orderkey",
                 "q3.join_line"),
    ],
    aggs=[AggSpec("q3.join_line")],
)

QUERY_SPECS[4] = _spec(
    4,
    scans=[
        ScanSpec("orders", "q4.orders"),
        ScanSpec("lineitem", "q4.late_lines"),
    ],
    joins=[
        JoinSpec("q4.orders", "q4.late_lines", "o_orderkey", "l_orderkey", "q4.semi",
                 bucket_join_ok=True),
    ],
    aggs=[AggSpec("q4.semi")],
)

QUERY_SPECS[5] = _spec(
    5,
    scans=[
        ScanSpec("nation"),
        ScanSpec("region"),
        ScanSpec("customer"),
        ScanSpec("supplier"),
        ScanSpec("orders", "q5.orders"),
        ScanSpec("lineitem", "q5.lineitem"),
    ],
    # Kernel/PDW order: build the customer side first, keep lineitem local.
    joins=[
        JoinSpec("nation", "region", "n_regionkey", "r_regionkey", "q5.nation_region",
                 try_map_join=True),
        JoinSpec("customer", "q5.nation_region", "c_nationkey", "n_nationkey",
                 "q5.cust", try_map_join=True),
        JoinSpec("q5.orders", "q5.cust", "o_custkey", "c_custkey", "q5.join_orders"),
        JoinSpec("q5.join_orders", "q5.lineitem", "o_orderkey", "l_orderkey",
                 "q5.join_lineitem"),
        JoinSpec("q5.join_lineitem", "supplier", "l_suppkey", "s_suppkey",
                 "q5.join_supplier"),
    ],
    # Hive's as-written order (Section 3.3.4.1): supplier side first, which
    # forces two common joins against unbucketed intermediates.
    hive_joins=[
        JoinSpec("nation", "region", "n_regionkey", "r_regionkey", "q5.nation_region",
                 try_map_join=True),
        JoinSpec("q5.nation_region", "supplier", "n_nationkey", "s_nationkey",
                 "q5.hive.supplier", try_map_join=True),
        JoinSpec("q5.hive.supplier", "q5.lineitem", "s_suppkey", "l_suppkey",
                 "q5.hive.join_lineitem"),
        JoinSpec("q5.hive.join_lineitem", "q5.orders", "l_orderkey", "o_orderkey",
                 "q5.hive.join_orders"),
        JoinSpec("q5.hive.join_orders", "customer", "o_custkey", "c_custkey",
                 "q5.hive.join_customer"),
    ],
    aggs=[AggSpec("q5.join_supplier")],
)

QUERY_SPECS[6] = _spec(
    6,
    scans=[ScanSpec("lineitem", "q6.scan")],
    aggs=[AggSpec("q6.scan")],
    has_order_by=False,
)

QUERY_SPECS[7] = _spec(
    7,
    scans=[
        ScanSpec("lineitem", "q7.lineitem"),
        ScanSpec("supplier"),
        ScanSpec("orders"),
        ScanSpec("customer"),
    ],
    joins=[
        JoinSpec("q7.lineitem", "supplier", "l_suppkey", "s_suppkey", "q7.join_supp",
                 try_map_join=True),
        JoinSpec("q7.join_supp", "orders", "l_orderkey", "o_orderkey",
                 "q7.join_orders"),
        JoinSpec("q7.join_orders", "customer", "o_custkey", "c_custkey",
                 "q7.join_cust"),
    ],
    aggs=[AggSpec("q7.pair")],
    hive_extra_jobs=2,  # the nation-side map joins for supplier and customer
)

QUERY_SPECS[8] = _spec(
    8,
    scans=[
        ScanSpec("lineitem", "q8.lineitem"),
        ScanSpec("part", "q8.parts"),
        ScanSpec("orders", "q8.orders"),
        ScanSpec("customer"),
        ScanSpec("supplier"),
    ],
    joins=[
        JoinSpec("q8.lineitem", "q8.parts", "l_partkey", "p_partkey", "q8.join_part",
                 try_map_join=True),
        JoinSpec("q8.join_part", "q8.orders", "l_orderkey", "o_orderkey",
                 "q8.join_orders"),
        JoinSpec("q8.join_orders", "customer", "o_custkey", "c_custkey",
                 "q8.join_cust"),
        JoinSpec("q8.join_cust", "supplier", "l_suppkey", "s_suppkey",
                 "q8.join_supp", try_map_join=True),
    ],
    aggs=[AggSpec("q8.join_supp")],
    hive_extra_jobs=3,  # nation/region dimension-prep map joins
)

QUERY_SPECS[9] = _spec(
    9,
    scans=[
        ScanSpec("lineitem", "q9.lineitem"),
        ScanSpec("part", "q9.parts"),
        ScanSpec("partsupp"),
        ScanSpec("supplier"),
        ScanSpec("orders"),
    ],
    joins=[
        JoinSpec("q9.lineitem", "q9.parts", "l_partkey", "p_partkey", "q9.join_part"),
        JoinSpec("q9.join_part", "partsupp", "l_partkey", "ps_partkey",
                 "q9.join_partsupp"),
        JoinSpec("q9.join_partsupp", "supplier", "l_suppkey", "s_suppkey",
                 "q9.join_supp", try_map_join=True),
        JoinSpec("q9.join_supp", "orders", "l_orderkey", "o_orderkey",
                 "q9.join_orders"),
    ],
    aggs=[AggSpec("q9.join_orders")],
    hive_extra_jobs=1,
)

QUERY_SPECS[10] = _spec(
    10,
    scans=[
        ScanSpec("orders", "q10.orders"),
        ScanSpec("lineitem", "q10.lineitem"),
        ScanSpec("customer"),
    ],
    joins=[
        JoinSpec("q10.orders", "q10.lineitem", "o_orderkey", "l_orderkey",
                 "q10.join_line", bucket_join_ok=True),
        JoinSpec("q10.join_line", "customer", "o_custkey", "c_custkey",
                 "q10.join_cust"),
    ],
    aggs=[AggSpec("q10.join_cust", "q10.agg")],
    hive_extra_jobs=1,  # nation map join
)

QUERY_SPECS[11] = _spec(
    11,
    scans=[ScanSpec("partsupp"), ScanSpec("supplier")],
    joins=[
        JoinSpec("partsupp", "supplier", "ps_suppkey", "s_suppkey", "q11.german_ps"),
    ],
    aggs=[AggSpec("q11.german_ps", "q11.total"), AggSpec("q11.german_ps", "q11.by_part")],
    hive_extra_jobs=1,
)

QUERY_SPECS[12] = _spec(
    12,
    scans=[ScanSpec("lineitem", "q12.lineitem"), ScanSpec("orders")],
    joins=[
        JoinSpec("q12.lineitem", "orders", "l_orderkey", "o_orderkey", "q12.join",
                 bucket_join_ok=True),
    ],
    aggs=[AggSpec("q12.join")],
)

QUERY_SPECS[13] = _spec(
    13,
    scans=[ScanSpec("customer"), ScanSpec("orders", "q13.orders")],
    joins=[
        JoinSpec("customer", "q13.orders", "c_custkey", "o_custkey", "q13.join"),
    ],
    aggs=[AggSpec("q13.join", "q13.per_customer"), AggSpec("q13.per_customer")],
)

QUERY_SPECS[14] = _spec(
    14,
    scans=[ScanSpec("lineitem", "q14.lineitem"), ScanSpec("part")],
    joins=[
        JoinSpec("q14.lineitem", "part", "l_partkey", "p_partkey", "q14.join"),
    ],
    aggs=[AggSpec("q14.join")],
    has_order_by=False,
)

QUERY_SPECS[15] = _spec(
    15,
    scans=[ScanSpec("lineitem", "q15.lineitem"), ScanSpec("supplier")],
    joins=[
        JoinSpec("q15.revenue", "supplier", "l_suppkey", "s_suppkey",
                 try_map_join=True),
    ],
    aggs=[AggSpec("q15.lineitem", "q15.revenue"), AggSpec("q15.revenue")],
    hive_extra_jobs=2,  # the revenue view is created, queried for MAX, dropped
)

QUERY_SPECS[16] = _spec(
    16,
    scans=[
        ScanSpec("partsupp"),
        ScanSpec("part", "q16.parts"),
        ScanSpec("supplier", "q16.complainers"),
    ],
    joins=[
        JoinSpec("partsupp", "q16.parts", "ps_partkey", "p_partkey", "q16.join",
                 try_map_join=True),
        JoinSpec("q16.join", "q16.complainers", "ps_suppkey", "s_suppkey",
                 "q16.anti", try_map_join=True),
    ],
    aggs=[AggSpec("q16.anti", "q16.agg")],
)

QUERY_SPECS[17] = _spec(
    17,
    scans=[ScanSpec("lineitem", "q17.lineitem"), ScanSpec("part", "q17.parts")],
    joins=[
        JoinSpec("q17.lineitem", "q17.parts", "l_partkey", "p_partkey", "q17.join",
                 try_map_join=True),
        JoinSpec("q17.join", "q17.avg", "l_partkey", "l_partkey"),
    ],
    aggs=[AggSpec("q17.join", "q17.avg"), AggSpec("q17.join")],
    has_order_by=False,
)

QUERY_SPECS[18] = _spec(
    18,
    scans=[
        ScanSpec("lineitem", "q18.lineitem"),
        ScanSpec("orders"),
        ScanSpec("customer"),
    ],
    joins=[
        JoinSpec("orders", "q18.big", "o_orderkey", "l_orderkey", "q18.join_big"),
        JoinSpec("q18.join_big", "customer", "o_custkey", "c_custkey",
                 "q18.join_cust"),
    ],
    aggs=[AggSpec("q18.lineitem", "q18.per_order")],
)

QUERY_SPECS[19] = _spec(
    19,
    scans=[ScanSpec("lineitem", "q19.lineitem"), ScanSpec("part", "q19.part")],
    joins=[
        # The paper: Hive redistributes both tables (common join) although a
        # map join was possible; PDW replicates the predicate-pushed part rows.
        JoinSpec("q19.lineitem", "q19.part", "l_partkey", "p_partkey", "q19.join"),
    ],
    aggs=[AggSpec("q19.filtered")],
    has_order_by=False,
    pdw_volume_overrides={"q19.part": "q19.pdw.parts"},
)

QUERY_SPECS[20] = _spec(
    20,
    scans=[
        ScanSpec("lineitem", "q20.lineitem"),
        ScanSpec("part", "q20.parts"),
        ScanSpec("partsupp"),
        ScanSpec("supplier"),
    ],
    joins=[
        JoinSpec("q20.lineitem", "q20.parts", "l_partkey", "p_partkey",
                 "q20.join_part", try_map_join=True),
        JoinSpec("partsupp", "q20.parts", "ps_partkey", "p_partkey", "q20.ps",
                 try_map_join=True),
        JoinSpec("q20.ps", "q20.shipped", "ps_partkey", "l_partkey",
                 "q20.available"),
        JoinSpec("supplier", "q20.available", "s_suppkey", "ps_suppkey",
                 "q20.semi"),
    ],
    aggs=[AggSpec("q20.join_part", "q20.shipped")],
    hive_extra_jobs=1,
)

QUERY_SPECS[21] = _spec(
    21,
    scans=[
        ScanSpec("lineitem", "q21.lineitem"),
        ScanSpec("orders", "q21.orders"),
    ],
    joins=[
        JoinSpec("q21.l1", "q21.orders", "l_orderkey", "o_orderkey", "q21.semi",
                 bucket_join_ok=True),
        JoinSpec("q21.semi", "q21.all_supps", "l_orderkey", "l_orderkey",
                 "q21.join_all"),
        JoinSpec("q21.join_all", "q21.late_supps", "l_orderkey", "l_orderkey",
                 "q21.join_late"),
        JoinSpec("q21.qualified", "supplier", "l_suppkey", "s_suppkey",
                 "q21.join_supp", try_map_join=True),
    ],
    aggs=[
        AggSpec("q21.lineitem", "q21.all_supps"),
        AggSpec("q21.l1", "q21.late_supps"),
        AggSpec("q21.join_supp"),
    ],
    hive_extra_jobs=1,
)
# Q21 also scans lineitem with the late filter (l1) and supplier; register
# the scan specs for ref resolution.
QUERY_SPECS[21] = QuerySpec(
    number=21,
    scans=QUERY_SPECS[21].scans + (
        ScanSpec("lineitem", "q21.l1"),
        ScanSpec("supplier"),
    ),
    joins=QUERY_SPECS[21].joins,
    aggs=QUERY_SPECS[21].aggs,
    hive_extra_jobs=1,
)

QUERY_SPECS[22] = _spec(
    22,
    scans=[
        ScanSpec("customer", "q22.candidates"),
        ScanSpec("orders", "q22.orders"),
    ],
    joins=[
        # Sub-query 4: Hive always attempts the map join and always fails
        # (Java heap), falling back to the common-join backup task.
        JoinSpec("q22.rich", "q22.orders_agg", "c_custkey", "o_custkey", "q22.anti",
                 try_map_join=True),
    ],
    aggs=[
        AggSpec("q22.candidates", "q22.avg"),   # sub-query 2
        AggSpec("q22.orders", "q22.orders_agg"),  # sub-query 3
        AggSpec("q22.anti"),                   # final group-by
    ],
    hive_materialize_scans=("q22.candidates",),  # sub-query 1
    hive_fs_jobs=1,
    hive_extra_jobs=2,  # second join and the order-by jobs of sub-query 4
)


def spec_for(number: int) -> QuerySpec:
    if number not in QUERY_SPECS:
        raise PlanError(f"no plan spec for query {number}")
    return QUERY_SPECS[number]

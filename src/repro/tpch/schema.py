"""TPC-H schema metadata: columns, per-SF row counts, and sparse orderkeys.

Row counts follow the TPC-H specification (all scale linearly except the
fixed 25-row nation and 5-row region tables).  ``sparse_orderkey`` implements
the spec's key sparsity — only the first 8 of every 32 orderkey values are
used — which is the root cause of the paper's "128 of 512 bucket files are
empty" observation (Section 3.3.4.2, Query 1).
"""

from __future__ import annotations

from repro.relational.schema import Column, Schema

CUSTOMER = Schema.of(
    Column.int_("c_custkey"),
    Column.str_("c_name", 18),
    Column.str_("c_address", 25),
    Column.int_("c_nationkey"),
    Column.str_("c_phone", 15),
    Column.float_("c_acctbal"),
    Column.str_("c_mktsegment", 10),
    Column.str_("c_comment", 73),
)

ORDERS = Schema.of(
    Column.int_("o_orderkey"),
    Column.int_("o_custkey"),
    Column.str_("o_orderstatus", 1),
    Column.float_("o_totalprice"),
    Column.date("o_orderdate"),
    Column.str_("o_orderpriority", 15),
    Column.str_("o_clerk", 15),
    Column.int_("o_shippriority"),
    Column.str_("o_comment", 49),
)

LINEITEM = Schema.of(
    Column.int_("l_orderkey"),
    Column.int_("l_partkey"),
    Column.int_("l_suppkey"),
    Column.int_("l_linenumber"),
    Column.float_("l_quantity"),
    Column.float_("l_extendedprice"),
    Column.float_("l_discount"),
    Column.float_("l_tax"),
    Column.str_("l_returnflag", 1),
    Column.str_("l_linestatus", 1),
    Column.date("l_shipdate"),
    Column.date("l_commitdate"),
    Column.date("l_receiptdate"),
    Column.str_("l_shipinstruct", 25),
    Column.str_("l_shipmode", 10),
    Column.str_("l_comment", 27),
)

PART = Schema.of(
    Column.int_("p_partkey"),
    Column.str_("p_name", 33),
    Column.str_("p_mfgr", 25),
    Column.str_("p_brand", 10),
    Column.str_("p_type", 25),
    Column.int_("p_size"),
    Column.str_("p_container", 10),
    Column.float_("p_retailprice"),
    Column.str_("p_comment", 14),
)

PARTSUPP = Schema.of(
    Column.int_("ps_partkey"),
    Column.int_("ps_suppkey"),
    Column.int_("ps_availqty"),
    Column.float_("ps_supplycost"),
    Column.str_("ps_comment", 124),
)

SUPPLIER = Schema.of(
    Column.int_("s_suppkey"),
    Column.str_("s_name", 18),
    Column.str_("s_address", 25),
    Column.int_("s_nationkey"),
    Column.str_("s_phone", 15),
    Column.float_("s_acctbal"),
    Column.str_("s_comment", 63),
)

NATION = Schema.of(
    Column.int_("n_nationkey"),
    Column.str_("n_name", 25),
    Column.int_("n_regionkey"),
    Column.str_("n_comment", 95),
)

REGION = Schema.of(
    Column.int_("r_regionkey"),
    Column.str_("r_name", 25),
    Column.str_("r_comment", 95),
)

SCHEMAS: dict[str, Schema] = {
    "customer": CUSTOMER,
    "orders": ORDERS,
    "lineitem": LINEITEM,
    "part": PART,
    "partsupp": PARTSUPP,
    "supplier": SUPPLIER,
    "nation": NATION,
    "region": REGION,
}

# Cardinality per unit scale factor (TPC-H specification, clause 4.2.5).
ROWS_PER_SF: dict[str, int] = {
    "customer": 150_000,
    "orders": 1_500_000,
    "lineitem": 6_001_215,  # average ~4 lines per order; exact value at SF 1
    "part": 200_000,
    "partsupp": 800_000,
    "supplier": 10_000,
}

FIXED_ROWS: dict[str, int] = {"nation": 25, "region": 5}

TABLE_NAMES = list(SCHEMAS)


def row_count(table: str, scale_factor: float) -> int:
    """Expected cardinality of a table at a given scale factor."""
    if table in FIXED_ROWS:
        return FIXED_ROWS[table]
    return int(round(ROWS_PER_SF[table] * scale_factor))


def table_bytes(table: str, scale_factor: float) -> float:
    """Uncompressed stored size of a table at a scale factor."""
    return row_count(table, scale_factor) * SCHEMAS[table].row_width


def database_bytes(scale_factor: float) -> float:
    """Total uncompressed database size (the SF nominally equals this in GB)."""
    return sum(table_bytes(t, scale_factor) for t in SCHEMAS)


def sparse_orderkey(index: int) -> int:
    """Map a dense order index (1-based) to the spec's sparse orderkey.

    Only the first 8 keys of every block of 32 are used, so keys are ≡ 1..8
    (mod 32).  Hash-bucketing these keys into 512 buckets leaves exactly 128
    buckets non-empty — the effect behind Table 4's map-phase behaviour.
    """
    if index < 1:
        raise ValueError("order index is 1-based")
    block, offset = divmod(index - 1, 8)
    return block * 32 + offset + 1


def orderkey_bucket(orderkey: int, buckets: int = 512) -> int:
    """Hive's bucket assignment: hash (identity for ints) modulo bucket count."""
    return orderkey % buckets

"""TPC-H substrate: schema metadata, the dbgen port, and the 22 queries."""

from repro.tpch.dbgen import (
    CURRENT_DATE,
    DbGen,
    demonstrate_random_overflow,
    partsupp_suppkey,
    retail_price,
)
from repro.tpch.queries import QUERIES, QUERY_NUMBERS, run_query
from repro.tpch.refresh import RefreshFunctions, UnsupportedRefresh
from repro.tpch.tbl_io import read_tbl, write_tbl
from repro.tpch.volumes import Calibration, VolumeModel, calibrate
from repro.tpch.schema import (
    FIXED_ROWS,
    ROWS_PER_SF,
    SCHEMAS,
    TABLE_NAMES,
    database_bytes,
    orderkey_bucket,
    row_count,
    sparse_orderkey,
    table_bytes,
)

__all__ = [
    "CURRENT_DATE",
    "DbGen",
    "demonstrate_random_overflow",
    "partsupp_suppkey",
    "retail_price",
    "QUERIES",
    "QUERY_NUMBERS",
    "run_query",
    "RefreshFunctions",
    "UnsupportedRefresh",
    "read_tbl",
    "write_tbl",
    "Calibration",
    "VolumeModel",
    "calibrate",
    "FIXED_ROWS",
    "ROWS_PER_SF",
    "SCHEMAS",
    "TABLE_NAMES",
    "database_bytes",
    "orderkey_bucket",
    "row_count",
    "sparse_orderkey",
    "table_bytes",
]

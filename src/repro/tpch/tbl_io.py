"""Reading and writing TPC-H ``.tbl`` files (dbgen's pipe-delimited format).

Real dbgen emits one ``<table>.tbl`` file per table with ``|``-terminated
fields; both systems in the paper loaded from exactly these files (Hive via
the HDFS copy + RCFile conversion, PDW via dwloader).  This module
round-trips the generated database through that format so the reproduction
can interoperate with external TPC-H tooling.
"""

from __future__ import annotations

from pathlib import Path

from repro.common.errors import StorageError
from repro.relational.schema import ColumnType, Database, TableData
from repro.tpch.schema import SCHEMAS


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def write_tbl(db: Database, directory: str | Path) -> dict[str, int]:
    """Write every table as ``<name>.tbl``; returns per-table row counts."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    for name in SCHEMAS:
        if name not in db:
            continue
        table = db.table(name)
        path = directory / f"{name}.tbl"
        with open(path, "w", encoding="utf-8") as f:
            for row in table.rows:
                fields = [_format_value(row[c]) for c in table.schema.names]
                f.write("|".join(fields) + "|\n")
        written[name] = table.row_count
    return written


def _parse_value(text: str, ctype: ColumnType):
    if ctype is ColumnType.INT:
        return int(text)
    if ctype is ColumnType.FLOAT:
        return float(text)
    return text  # STR and DATE stay strings


def read_tbl(directory: str | Path, tables: list[str] | None = None) -> Database:
    """Load ``.tbl`` files back into a database (schema-validated)."""
    directory = Path(directory)
    db = Database()
    for name in tables if tables is not None else list(SCHEMAS):
        path = directory / f"{name}.tbl"
        if not path.exists():
            raise StorageError(f"missing {path}")
        schema = SCHEMAS[name]
        table = TableData(name, schema)
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                line = line.rstrip("\n")
                if not line:
                    continue
                parts = line.split("|")
                if parts[-1] == "":
                    parts = parts[:-1]  # trailing delimiter
                if len(parts) != len(schema.columns):
                    raise StorageError(
                        f"{path}:{lineno}: {len(parts)} fields, "
                        f"expected {len(schema.columns)}"
                    )
                row = {
                    col.name: _parse_value(text, col.ctype)
                    for col, text in zip(schema.columns, parts)
                }
                table.append(row)
        db.add(table)
    return db

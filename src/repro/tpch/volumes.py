"""Calibrated data volumes: real cardinalities, scaled to paper-size SFs.

The reproduction executes every TPC-H query for real at a small scale factor
(the kernel records each tagged intermediate's rows and bytes), then scales
those volumes linearly to the paper's scale factors {250, 1000, 4000, 16000}.
TPC-H cardinalities are linear in SF by construction, so the scaled volumes
are faithful; the engine cost models consume volumes, never wall-clock.

A few tags are *constant* across scale factors (outputs bounded by the fixed
nation/region tables or single-row aggregates); they are listed explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.common.errors import PlanError
from repro.relational import (
    Agg,
    Aggregate,
    ExecutionContext,
    Filter,
    HashJoin,
    Scan,
    col,
    lit,
)
from repro.relational.operators import StageStat
from repro.tpch.dbgen import DbGen
from repro.tpch.queries import QUERY_NUMBERS, run_query
from repro.tpch.schema import FIXED_ROWS, SCHEMAS, row_count, table_bytes

# Tags whose cardinality does not grow with scale factor.
CONSTANT_TAGS = frozenset(
    {"q1.agg", "q5.nation_region", "q11.total", "q14.total", "q22.avg"}
)


@dataclass(frozen=True)
class Volume:
    """Rows and raw bytes of one dataset at one scale factor."""

    rows: float
    bytes: float

    @property
    def avg_width(self) -> float:
        return self.bytes / self.rows if self.rows else 0.0


class VolumeModel:
    """Answers "how big is X at scale factor SF?" for tables and tags."""

    def __init__(self, calibration_sf: float, stats: dict[str, StageStat]):
        if calibration_sf <= 0:
            raise PlanError("calibration scale factor must be positive")
        self.calibration_sf = calibration_sf
        self._stats = dict(stats)

    def is_base_table(self, ref: str) -> bool:
        return ref in SCHEMAS

    def volume(self, ref: str, scale_factor: float) -> Volume:
        """Volume of a base table or a tagged intermediate at ``scale_factor``."""
        if self.is_base_table(ref):
            return Volume(
                rows=row_count(ref, scale_factor),
                bytes=table_bytes(ref, scale_factor),
            )
        if ref not in self._stats:
            raise PlanError(f"no calibrated stat for {ref!r}")
        stat = self._stats[ref]
        if ref in CONSTANT_TAGS or (
            self.is_base_table(_driving_table(ref)) and _driving_table(ref) in FIXED_ROWS
        ):
            factor = 1.0
        else:
            factor = scale_factor / self.calibration_sf
        # Guarantee at least one row so downstream models never divide by zero.
        rows = max(1.0, stat.rows * factor)
        width = stat.avg_width if stat.rows else 64.0
        return Volume(rows=rows, bytes=rows * width)

    def rows(self, ref: str, scale_factor: float) -> float:
        return self.volume(ref, scale_factor).rows

    def bytes(self, ref: str, scale_factor: float) -> float:
        return self.volume(ref, scale_factor).bytes

    def selectivity(self, tag: str, table: str) -> float:
        """Fraction of ``table`` rows surviving into ``tag`` (at calibration)."""
        base = row_count(table, self.calibration_sf)
        return self._stats[tag].rows / base if base else 0.0

    @property
    def tags(self) -> list[str]:
        return sorted(self._stats)


def _driving_table(_: str) -> str:
    return ""  # reserved for future per-tag driving-table metadata


def _extra_calibration_plans(db, ctx: ExecutionContext) -> None:
    """Measure intermediates for plan shapes the main queries don't tag.

    * Hive executes Q5 in as-written order (supplier side first, §3.3.4.1);
      those intermediates differ from the kernel plan's order.
    * PDW's Q19 plan pushes the part-only half of the OR predicate below the
      replicate step, so the replicated volume is a small part subset.
    """
    asia_nations = HashJoin(
        Scan("nation"),
        Scan("region", predicate=col("r_name") == lit("ASIA")),
        ["n_regionkey"],
        ["r_regionkey"],
    )
    asia_suppliers = HashJoin(
        Scan("supplier"), asia_nations, ["s_nationkey"], ["n_nationkey"],
        tag="q5.hive.supplier",
    )
    lineitem_supp = HashJoin(
        Scan("lineitem"), asia_suppliers, ["l_suppkey"], ["s_suppkey"],
        tag="q5.hive.join_lineitem",
    )
    with_orders = HashJoin(
        lineitem_supp,
        Scan(
            "orders",
            predicate=(col("o_orderdate") >= lit("1994-01-01"))
            & (col("o_orderdate") < lit("1995-01-01")),
        ),
        ["l_orderkey"],
        ["o_orderkey"],
        tag="q5.hive.join_orders",
    )
    with_customer = Filter(
        HashJoin(with_orders, Scan("customer"), ["o_custkey"], ["c_custkey"]),
        col("c_nationkey") == col("s_nationkey"),
        tag="q5.hive.join_customer",
    )
    with_customer.execute(ctx)

    # Q22 sub-query 3 output: orders aggregated per customer key.
    Aggregate(
        Scan("orders", columns=["o_custkey"]),
        keys=["o_custkey"],
        aggs={"n": Agg("count")},
        tag="q22.orders_agg",
    ).execute(ctx)

    part_pushdown = (
        ((col("p_brand") == lit("Brand#12"))
         & col("p_container").in_(["SM CASE", "SM BOX", "SM PACK", "SM PKG"])
         & col("p_size").between(1, 5))
        | ((col("p_brand") == lit("Brand#23"))
           & col("p_container").in_(["MED BAG", "MED BOX", "MED PKG", "MED PACK"])
           & col("p_size").between(1, 10))
        | ((col("p_brand") == lit("Brand#34"))
           & col("p_container").in_(["LG CASE", "LG BOX", "LG PACK", "LG PKG"])
           & col("p_size").between(1, 15))
    )
    Scan("part", predicate=part_pushdown, tag="q19.pdw.parts").execute(ctx)


@dataclass(frozen=True)
class Calibration:
    """Everything the engine models need: volumes + storage ratios."""

    volumes: VolumeModel
    rcfile_ratios: dict[str, float]


def _measure_rcfile_ratios(db) -> dict[str, float]:
    from repro.hive.rcfile import measure_compression_ratio

    ratios = {}
    for name, schema in SCHEMAS.items():
        rows = db.table(name).rows[:1500]
        ratios[name] = measure_compression_ratio(rows, schema.names, schema.row_width)
    return ratios


@lru_cache(maxsize=4)
def calibrate(scale_factor: float = 0.01, seed: int = 42) -> Calibration:
    """Generate data, execute all 22 queries, and return calibrated models.

    Cached per process: the DSS benches share one calibration run.
    """
    db = DbGen(scale_factor, seed).generate()
    ctx = ExecutionContext(db)
    for number in QUERY_NUMBERS:
        run_query(number, db, ctx)
    _extra_calibration_plans(db, ctx)
    return Calibration(
        volumes=VolumeModel(scale_factor, ctx.stats),
        rcfile_ratios=_measure_rcfile_ratios(db),
    )

"""Fixed text pools from the TPC-H specification (clause 4.2.2.13 and appendix).

These drive both value generation and, more importantly, the selectivity of
the benchmark's LIKE predicates: Q9 scans for ``%green%`` part names, Q13 for
``%special%requests%`` order comments, Q16 for ``%Customer%Complaints%``
supplier comments, Q20 for ``forest%`` parts.
"""

from __future__ import annotations

# 92 part-name words (the spec's colour list).
P_NAME_WORDS = (
    "almond antique aquamarine azure beige bisque black blanched blue blush "
    "brown burlywood burnished chartreuse chiffon chocolate coral cornflower "
    "cornsilk cream cyan dark deep dim dodger drab firebrick floral forest "
    "frosted gainsboro ghost goldenrod green grey honeydew hot indian ivory "
    "khaki lace lavender lawn lemon light lime linen magenta maroon medium "
    "metallic midnight mint misty moccasin navajo navy olive orange orchid "
    "pale papaya peach peru pink plum powder puff purple red rose rosy royal "
    "saddle salmon sandy seashell sienna sky slate smoke snow spring steel "
    "tan thistle tomato turquoise violet wheat white yellow"
).split()

TYPE_SYLLABLE_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
TYPE_SYLLABLE_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
TYPE_SYLLABLE_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")

CONTAINER_SYLLABLE_1 = ("SM", "LG", "MED", "JUMBO", "WRAP")
CONTAINER_SYLLABLE_2 = ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")

SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")

PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")

INSTRUCTIONS = ("DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN")

MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")

# A condensed version of the spec's text grammar vocabulary.  It deliberately
# contains the words the benchmark queries grep for.
COMMENT_WORDS = (
    "special requests pending deposits accounts packages express unusual "
    "regular final ironic even bold silent slow quick careful furious daring "
    "blithe close dogged fluffy ruthless thin busy foxes pinto beans theodolites "
    "dependencies instructions excuses platelets asymptotes courts dolphins "
    "multipliers sauternes warhorses frets dinos attainments somas sheaves "
    "ideas tithes waters orbits patterns sentiments realms pearls wake sleep "
    "haggle nag cajole boost detect solve engage wake integrate use doze run "
    "above after along among around at before behind beside besides between"
).split()

NATIONS: tuple[tuple[str, int], ...] = (
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
)

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")


def all_part_types() -> list[str]:
    """Every 3-syllable part type (150 combinations)."""
    return [
        f"{a} {b} {c}"
        for a in TYPE_SYLLABLE_1
        for b in TYPE_SYLLABLE_2
        for c in TYPE_SYLLABLE_3
    ]


def all_containers() -> list[str]:
    """Every 2-syllable container (40 combinations)."""
    return [f"{a} {b}" for a in CONTAINER_SYLLABLE_1 for b in CONTAINER_SYLLABLE_2]
